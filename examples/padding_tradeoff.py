"""Query padding: fixed versus adaptive.

Section 5.2 shows 20% padding roughly doubles the completely-answered
queries but *hurts* a minority; the paper leaves "dynamically adjusting
padding" to future work.  This example runs no padding, fixed 20% padding,
and the adaptive controller over one workload and prints the trade-off.

Run:  python examples/padding_tradeoff.py
"""

from repro import (
    AdaptivePaddingController,
    IntRange,
    RangeSelectionSystem,
    SystemConfig,
    UniformRangeWorkload,
)
from repro.metrics import QueryLog, fraction_fully_answered


def run_fixed(padding: float, trace: list[IntRange]) -> list[float]:
    system = RangeSelectionSystem(
        SystemConfig(n_peers=200, matcher="containment", padding=padding, seed=3)
    )
    log = QueryLog()
    for query in trace:
        log.add(system.query(query))
    return log.recall_values()


def run_adaptive(trace: list[IntRange]) -> tuple[list[float], float]:
    system = RangeSelectionSystem(
        SystemConfig(n_peers=200, matcher="containment", seed=3)
    )
    controller = AdaptivePaddingController(target_recall=0.9)
    log = QueryLog()
    for query in trace:
        result = system.query(query, padding=controller.padding)
        controller.observe(result.recall)
        log.add(result)
    return log.recall_values(), controller.padding


def main() -> None:
    workload = UniformRangeWorkload(
        SystemConfig().domain, count=3000, seed=21
    )
    trace = workload.ranges()

    for padding in (0.0, 0.2):
        recalls = run_fixed(padding, trace)
        print(
            f"fixed padding {padding:>4.0%}: "
            f"{fraction_fully_answered(recalls):5.1f}% fully answered, "
            f"mean recall {sum(recalls) / len(recalls):.3f}"
        )

    recalls, final = run_adaptive(trace)
    print(
        f"adaptive        : {fraction_fully_answered(recalls):5.1f}% fully "
        f"answered, mean recall {sum(recalls) / len(recalls):.3f} "
        f"(padding settled at {final:.2f})"
    )


if __name__ == "__main__":
    main()
