"""How the scheme behaves under different query distributions.

The paper evaluates a uniform workload, where every query is essentially
new.  Real P2P query streams are skewed: popular ranges repeat (Zipf) or
cluster around hot topics with jittered endpoints.  This example compares
hit quality across the three generators — clustered workloads are where
approximate matching shines, and under Zipf repetition even the weak
linear permutations look good (as Section 5.1 predicts).

Run:  python examples/workload_comparison.py
"""

from repro import (
    ClusteredRangeWorkload,
    RangeSelectionSystem,
    SystemConfig,
    UniformRangeWorkload,
    ZipfRangeWorkload,
)
from repro.metrics import QueryLog, fraction_fully_answered


def run(workload, family: str) -> dict[str, float]:
    system = RangeSelectionSystem(
        SystemConfig(n_peers=200, family=family, matcher="containment", seed=17)
    )
    log = QueryLog()
    for query in workload:
        log.add(system.query(query))
    recalls = log.recall_values()
    return {
        "full": fraction_fully_answered(recalls),
        "mean": sum(recalls) / len(recalls),
        "exact": 100.0 * log.exact_fraction(),
    }


def main() -> None:
    domain = SystemConfig().domain
    n = 3000
    workloads = {
        "uniform": UniformRangeWorkload(domain, n, seed=31),
        "zipf": ZipfRangeWorkload(domain, n, seed=31, pool_size=500),
        "clustered": ClusteredRangeWorkload(domain, n, seed=31, n_clusters=8),
    }
    print(f"{'workload':<10} {'family':<16} {'full%':>6} {'mean':>6} {'exact%':>7}")
    for wl_name, workload in workloads.items():
        trace = workload.ranges()
        for family in ("approx-min-wise", "linear"):
            stats = run(trace, family)
            print(
                f"{wl_name:<10} {family:<16} {stats['full']:>5.1f}% "
                f"{stats['mean']:>6.3f} {stats['exact']:>6.1f}%"
            )


if __name__ == "__main__":
    main()
