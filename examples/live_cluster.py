"""A live cluster over real sockets: join, query, leave, kill.

Spawns five peer processes on localhost (``python -m repro serve`` under
the hood), each owning its partitions and answering lookup/store RPCs
over the length-prefixed JSON wire protocol. A client then walks the
whole node lifecycle:

- a sixth peer **joins** and receives data via rebalancing;
- queries run over real TCP connections, l lookup chains concurrently;
- one peer **leaves gracefully**, handing its entries off first;
- another is **killed abruptly** (SIGKILL) — recall survives through
  replica-chain failover, and anti-entropy repair restores r copies.

Run:  python examples/live_cluster.py
"""

from repro import IntRange, SystemConfig
from repro.rpc.cluster import LocalCluster

QUERIES = [IntRange(100, 200), IntRange(400, 550), IntRange(700, 820)]


def mean_recall(client) -> float:
    results = [client.query(query) for query in QUERIES]
    return sum(result.recall for result in results) / len(results)


def main() -> None:
    config = SystemConfig(n_peers=5, replicas=3, seed=7)
    with LocalCluster(5, config) as cluster:
        print(f"cluster: {len(cluster.endpoints)} peers up")
        with cluster.client() as client:
            # Cold pass stores each query's partition at its replica set;
            # the warm pass must then answer everything from cache.
            for query in QUERIES:
                client.query(query)
            print(f"warm queries: mean recall {mean_recall(client):.2f}")

            # A new peer joins; rebalancing hands it the entries it now
            # replicates, without interrupting the workload.
            cluster.spawn("peer-5")
            client.refresh()
            print(
                f"peer-5 joined: {len(client.members)} members, "
                f"mean recall {mean_recall(client):.2f}"
            )

            # Graceful leave: peer-1 pushes its entries to their
            # post-leave replica sets before exiting, so nothing is lost.
            moved = client.leave("peer-1")
            print(
                f"peer-1 left gracefully, handed off {moved} copies, "
                f"mean recall {mean_recall(client):.2f}"
            )

            # Abrupt kill: no goodbye, no hand-off. Lookups fail over
            # down the successor list; repair re-creates the lost copies.
            cluster.kill("peer-2")
            recall = mean_recall(client)
            failovers = client.system.counters.failovers
            print(
                f"peer-2 SIGKILLed: mean recall {recall:.2f} "
                f"({failovers} failovers)"
            )
            copies = client.repair()
            print(f"anti-entropy repair re-created {copies} copies")


if __name__ == "__main__":
    main()
