"""Quickstart: approximate range selection in a P2P system.

Builds a small system, runs a cold query (which caches its partition),
then shows similar — but not identical — queries being answered from that
cached partition, the behaviour exact-match DHTs cannot provide.

Run:  python examples/quickstart.py
"""

from repro import IntRange, RangeSelectionSystem, SystemConfig


def main() -> None:
    config = SystemConfig(n_peers=200, seed=7)
    system = RangeSelectionSystem(config)
    print(f"system: {config.describe()}")
    print(f"LSH: {system.scheme.describe()}\n")

    # A cold query: nothing is cached yet, so there is no match and the
    # partition for [30, 50] gets stored at the l identifier owners.
    cold = system.query(IntRange(30, 50))
    print(f"query {cold.query}: matched={cold.matched}, stored={cold.stored}")

    # The paper's motivating example: [30, 49] is nearly the same range.
    # An exact-match DHT would miss; locality sensitive hashing sends us to
    # the same peers, where the cached [30, 50] partition answers fully.
    similar = system.query(IntRange(30, 49))
    print(
        f"query {similar.query}: matched={similar.matched} "
        f"(jaccard {similar.similarity:.3f}, recall {similar.recall:.2f}, "
        f"{similar.overlay_hops} hops)"
    )

    # A slightly broader query gets a *partial* answer from that partition:
    # 21 of its 22 values are covered.
    broader = system.query(IntRange(30, 51))
    print(
        f"query {broader.query}: matched={broader.matched} "
        f"(jaccard {broader.similarity:.3f}, recall {broader.recall:.2f})"
    )

    # A dissimilar query misses (and caches its own partition).
    far = system.query(IntRange(700, 900))
    print(f"query {far.query}: matched={far.matched}, stored={far.stored}")

    stats = system.network.stats
    print(
        f"\ntraffic: {stats.messages} messages "
        f"({stats.by_kind.get('match-request', 0)} match requests, "
        f"{stats.by_kind.get('store-request', 0)} stores)"
    )
    print(f"placements in the system: {system.total_placements()}")


if __name__ == "__main__":
    main()
