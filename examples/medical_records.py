"""The paper's Section 2 scenario, end to end.

The global schema is Patient / Diagnosis / Physician / Prescription; a
peer asks "what prescriptions have been provided to patients diagnosed
with Glaucoma, aged 30-50, between Jan 2000 and Dec 2002".  The query is
parsed, selections are pushed to the leaves (Figure 1), each leaf
partition is located through the DHT (Figure 2), and the joins run locally
at the querying peer.  A second, similar query is answered from cache
without touching the sources.

Run:  python examples/medical_records.py
"""

from repro import (
    Domain,
    P2PDatabase,
    RangeSelectionSystem,
    SystemConfig,
    medical_catalog,
)

GLAUCOMA_QUERY = """
Select Prescription.prescription
from Patient, Diagnosis, Prescription
where 30 <= age and age <= 50
and diagnosis = 'Glaucoma'
and Patient.patient_id = Diagnosis.patient_id
and date between DATE '2000-01-01' and DATE '2002-12-31'
and Diagnosis.prescription_id = Prescription.prescription_id
"""

SIMILAR_QUERY = GLAUCOMA_QUERY.replace("30 <= age and age <= 50",
                                       "30 <= age and age <= 49")


def main() -> None:
    catalog = medical_catalog(n_patients=2000)
    system = RangeSelectionSystem(
        SystemConfig(
            n_peers=150,
            seed=11,
            accelerate=False,  # the SQL front end hashes many attribute domains
            domain=Domain("value", 0, 10**6),
        )
    )
    db = P2PDatabase(catalog, system)

    print("plan:")
    print(db.explain(GLAUCOMA_QUERY))
    print()

    first = db.execute(GLAUCOMA_QUERY)
    print(f"first execution : {first.summary()}")
    print(f"  source accesses so far: {catalog.source_accesses}")
    for row in first.result.decoded_rows(catalog.schema)[:5]:
        print(f"  prescription: {row[0]}")

    second = db.execute(GLAUCOMA_QUERY)
    print(f"repeat execution: {second.summary()}")
    print(f"  source accesses so far: {catalog.source_accesses} (unchanged)")

    similar = db.execute(SIMILAR_QUERY)
    print(f"similar (age<=49): {similar.summary()}")
    print(
        f"  source accesses so far: {catalog.source_accesses} "
        "(similar range answered from the cached partition)"
    )
    assert len(first.rows) == len(second.rows)

    # Local post-processing at the querying peer: newest prescriptions first.
    newest = db.execute(
        "SELECT prescription, date FROM Prescription "
        "WHERE date BETWEEN DATE '2000-01-01' AND DATE '2002-12-31' "
        "ORDER BY date DESC LIMIT 3"
    )
    print("\nthree newest prescriptions in the window:")
    for prescription, date in newest.result.decoded_rows(catalog.schema):
        print(f"  {date}  {prescription}")


if __name__ == "__main__":
    main()
