"""A tour of the overlay substrate: ring structure, routing, load, churn.

Shows the Chord machinery the system runs on: finger tables and O(log N)
lookups, the load distribution of cached partitions, and nodes joining and
leaving with stabilization — the dynamics behind Figures 11 and 12.

Run:  python examples/scalability_tour.py
"""

import math

from repro import ChordRing, IntRange, RangeSelectionSystem, SystemConfig
from repro.util.rng import derive_rng
from repro.util.stats import summarize
from repro.workloads import UniformRangeWorkload


def routing_demo() -> None:
    ring = ChordRing(m=32)
    ring.add_nodes(1000)
    ring.build()
    rng = derive_rng(0, "example/lookups")
    node_ids = ring.node_ids
    hops = []
    for _ in range(3000):
        key = int(rng.integers(0, 2**32))
        origin = node_ids[int(rng.integers(len(node_ids)))]
        hops.append(ring.lookup(key, start_id=origin).hops)
    stats = summarize(hops)
    print(
        f"1000-node ring: mean lookup {stats.mean:.2f} hops "
        f"(p1 {stats.p01:.0f}, p99 {stats.p99:.0f}); "
        f"(1/2)log2(N) = {0.5 * math.log2(1000):.2f}"
    )


def load_demo() -> None:
    system = RangeSelectionSystem(SystemConfig(n_peers=500, seed=13))
    workload = UniformRangeWorkload(system.config.domain, count=4000, seed=5)
    for query in workload:
        system.query(query)
    loads = system.load_distribution()
    stats = summarize(loads)
    print(
        f"500 peers, {system.total_placements()} placements: "
        f"mean {stats.mean:.1f} partitions/peer "
        f"(p1 {stats.p01:.0f}, p99 {stats.p99:.0f})"
    )


def churn_demo() -> None:
    ring = ChordRing(m=16)
    boot = ring.bootstrap("seed-node")
    for i in range(30):
        ring.join(f"joiner-{i}", via=boot.node_id)
        ring.stabilize()
    ring.check_invariants()
    print(f"dynamic ring grew to {len(ring)} nodes; invariants hold")

    for node_id in ring.node_ids[:10]:
        if node_id != boot.node_id:
            ring.leave(node_id)
    ring.stabilize()
    ring.check_invariants()
    print(f"after departures: {len(ring)} nodes; invariants still hold")


def main() -> None:
    routing_demo()
    load_demo()
    churn_demo()

    # End-to-end: an identical repeat query must find its cached partition
    # exactly (equal ranges hash to equal identifiers under every family).
    system = RangeSelectionSystem(SystemConfig(n_peers=100, seed=1))
    system.query(IntRange(100, 200))
    result = system.query(IntRange(100, 200))
    print(
        f"sanity repeat of [100,200]: exact={result.exact}, "
        f"recall {result.recall:.2f}"
    )


if __name__ == "__main__":
    main()
