"""Legacy setup shim: this environment has no `wheel` package and no network,
so PEP 517 editable installs are unavailable; `setup.py develop` still works."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Approximate range selection queries in peer-to-peer systems "
        "(CIDR 2003 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
