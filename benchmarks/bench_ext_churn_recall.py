"""Extension — recall under churn: what replication and repair buy.

Asserts the robustness shapes the successor-list replication layer exists
to show: without replication, crashing peers visibly costs recall (the
jittered-tile workload reaches each stored partition through only one or
two of its ``l`` identifiers, so a dead owner loses answers); with
``r = 3`` plus anti-entropy repair, recall stays within five points of the
fault-free baseline and failover lookups do the serving.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ext_churn_recall import ChurnRecallExperiment


def _make(scale: str) -> ChurnRecallExperiment:
    return (
        ChurnRecallExperiment.paper()
        if scale == "paper"
        else ChurnRecallExperiment.quick()
    )


def test_ext_churn_recall(benchmark, scale, emit):
    experiment = _make(scale)
    outcome = run_once(benchmark, lambda: experiment.run())
    emit("ext_churn_recall", outcome.report())

    worst = max(experiment.crash_fractions)
    unreplicated_drop = outcome.recall_drop("r=1", worst)
    replicated_drop = outcome.recall_drop("r=3+repair", worst)
    benchmark.extra_info["unreplicated_drop"] = unreplicated_drop
    benchmark.extra_info["replicated_drop"] = replicated_drop

    # Fault-free, replication changes nothing about what is found.
    assert (
        outcome.cell("r=3+repair", 0.0).mean_recall
        == outcome.cell("r=1", 0.0).mean_recall
    )
    # Unreplicated: crashes visibly cost recall, via timed-out chains.
    assert unreplicated_drop > 0.015
    assert outcome.cell("r=1", worst).chain_timeouts > 0
    assert outcome.cell("r=1", worst).failovers == 0
    # Replicated + repaired: within five points of fault-free (the
    # acceptance bar), served by failover lookups and actual repairs.
    assert replicated_drop < 0.05
    assert replicated_drop < unreplicated_drop
    crashed_cell = outcome.cell("r=3+repair", worst)
    assert crashed_cell.failovers > 0
    assert crashed_cell.repairs > 0
    assert crashed_cell.chain_timeouts == 0
