"""Extension — overload protection: graceful degradation under load.

Asserts the graceful-degradation shape the overload-protection layer
exists to show: at twice the saturating load with 10% grey-slow peers,
the full protection stack (adaptive timeouts, circuit breakers, hedged
lookups, partial quorum) holds p99 latency within 3x of the uncontended
baseline and recall within five points of it, while the unprotected
configuration visibly collapses into timeout-schedule latency.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ext_overload import OverloadExperiment


def _make(scale: str) -> OverloadExperiment:
    return (
        OverloadExperiment.paper()
        if scale == "paper"
        else OverloadExperiment.quick()
    )


def test_ext_overload(benchmark, scale, emit):
    experiment = _make(scale)
    outcome = run_once(benchmark, lambda: experiment.run())
    emit("ext_overload", outcome.report())

    base = outcome.baseline()
    heavy = max(experiment.load_factors)
    slow = max(experiment.slow_fractions)
    protected = outcome.cell(True, heavy, slow)
    unprotected = outcome.cell(False, heavy, slow)
    benchmark.extra_info["baseline_p99_ms"] = base.p99_ms
    benchmark.extra_info["protected_p99_ms"] = protected.p99_ms
    benchmark.extra_info["unprotected_p99_ms"] = unprotected.p99_ms

    # The protections actually engaged under stress...
    assert protected.hedges > 0
    assert protected.hedge_wins > 0
    assert protected.partial_queries > 0
    # ...and the unprotected run is the same system minus the responses.
    assert unprotected.hedges == 0
    assert unprotected.breaker_opens == 0
    assert unprotected.partial_queries == 0

    # Protections-on degrades gracefully: latency and recall hold.  (A
    # one-point recall tolerance against the unprotected run: partial
    # quorum deliberately trades the last straggler chain for latency.)
    assert protected.p99_ms <= 3.0 * base.p99_ms
    assert protected.mean_recall >= base.mean_recall - 0.05
    assert protected.mean_recall >= unprotected.mean_recall - 0.01
    # Protections-off visibly collapses versus both the baseline and the
    # protected run under the identical load.
    assert unprotected.p99_ms > 3.0 * base.p99_ms
    assert unprotected.p99_ms > 1.25 * protected.p99_ms
    assert unprotected.busy_shed > protected.busy_shed
