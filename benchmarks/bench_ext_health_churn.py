"""Extension — ring health under churn: sampler, auditor and skew cost.

Asserts the health-telemetry shapes: the unreplicated system ends churn
with critical audit findings (lost identifiers), ``r = 3`` without repair
carries a persistent replica deficit visible in the sampled time series,
and ``r = 3`` with anti-entropy repair converges back to a deficit-free,
violation-free state.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ext_health_churn import HealthChurnExperiment


def _make(scale: str) -> HealthChurnExperiment:
    return (
        HealthChurnExperiment.paper()
        if scale == "paper"
        else HealthChurnExperiment.quick()
    )


def test_ext_health_churn(benchmark, scale, emit):
    experiment = _make(scale)
    outcome = run_once(benchmark, lambda: experiment.run())
    emit("ext_health_churn", outcome.report())

    unreplicated = outcome.cell("r=1")
    replicated = outcome.cell("r=3")
    repaired = outcome.cell("r=3+repair")
    benchmark.extra_info["unreplicated_critical"] = unreplicated.critical_findings
    benchmark.extra_info["replicated_final_deficit"] = replicated.final_deficit
    benchmark.extra_info["repaired_final_deficit"] = repaired.final_deficit

    # Every mode's sampler saw the whole run.
    for cell in outcome.cells:
        assert cell.samples > 2
        assert cell.queries > 0
    # Unreplicated: crashed owners take the only copy with them.
    assert unreplicated.critical_findings > 0
    # Replicated, no repair: the deficit persists to the end of the run.
    assert replicated.final_deficit > 0
    assert replicated.peak_deficit >= replicated.final_deficit
    # Replicated + repaired: the deficit spiked during churn and healed.
    assert repaired.peak_deficit > 0
    assert repaired.final_deficit == 0
    assert repaired.critical_findings == 0
    assert repaired.warning_findings == 0
