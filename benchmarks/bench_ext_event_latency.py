"""Extension — event-driven query latency under loss and peer failure.

Asserts the shapes the simulation kernel exists to show: with no faults,
no chain ever times out and a query's completion time is the *max* (not
the sum) of its ``l`` parallel lookup chains; message loss pushes the
tail latency up against the retry schedule; crashed peers cost timed-out
chains and degraded (yet still answered) queries.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.experiments.ext_event_latency import EventLatencyExperiment
from repro.net.latency import SeededLatency
from repro.ranges.interval import IntRange
from repro.sim import AsyncQueryEngine


def _make(scale: str) -> EventLatencyExperiment:
    return (
        EventLatencyExperiment.paper()
        if scale == "paper"
        else EventLatencyExperiment.quick()
    )


def test_ext_event_latency(benchmark, scale, emit):
    experiment = _make(scale)
    outcome = run_once(benchmark, lambda: experiment.run())
    emit("ext_event_latency", outcome.report())

    baseline = outcome.cell(0.0, 0.0)
    lossy = outcome.cell(max(experiment.drop_rates), 0.0)
    crashed = outcome.cell(0.0, max(experiment.fail_fractions))
    benchmark.extra_info["baseline_p99_ms"] = baseline.p99_ms
    benchmark.extra_info["lossy_p95_ms"] = lossy.p95_ms
    benchmark.extra_info["crashed_recall"] = crashed.mean_recall

    # Fault-free: the retry machinery never engages.
    assert baseline.chain_timeouts == 0
    assert baseline.degraded_queries == 0
    # Loss inflates the tail (retries wait out at least one timeout).
    assert lossy.p95_ms >= baseline.p95_ms
    # Crashes cost timed-out chains, but the surviving replies still answer.
    assert crashed.chain_timeouts > 0
    assert crashed.degraded_queries > 0
    assert crashed.mean_recall > 0.0


def test_parallel_chains_complete_at_max(benchmark, scale):
    """Completion time of one query == slowest chain, far below the sum."""
    n_peers = 1000 if scale == "paper" else 150
    system = RangeSelectionSystem(SystemConfig(n_peers=n_peers, seed=7))
    engine = AsyncQueryEngine(system, latency=SeededLatency(10.0, 100.0, seed=7))

    def exercise():
        engine.run(IntRange(100, 200))  # cold miss populates the buckets
        return engine.run(IntRange(100, 199))

    timed = run_once(benchmark, exercise)
    chain_times = [chain.completed_ms for chain in timed.chains]
    assert timed.locate_ms == max(chain_times)
    assert timed.locate_ms < sum(chain_times)
    benchmark.extra_info["locate_ms"] = timed.locate_ms
    benchmark.extra_info["chain_sum_ms"] = sum(chain_times)
