"""Figure 7 — match quality of linear permutations.

Linear permutations over a domain-sized prime hash loosely: nearly every
query finds *some* candidate (no misses), identical queries always match
exactly, and buckets are crowded.  The paper's figure shows their match
quality spread out; see EXPERIMENTS.md for where our reproduction's shape
agrees (looseness, exact matches, complete answers) and where it diverges
(our best-match similarity is higher than the paper's).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig6_7_quality import MatchQualityExperiment


def _make(scale: str) -> MatchQualityExperiment:
    if scale == "paper":
        return MatchQualityExperiment.paper("linear")
    return MatchQualityExperiment.quick("linear")


def test_fig7_linear_quality(benchmark, scale, emit):
    outcome = run_once(benchmark, lambda: _make(scale).run())
    emit("fig7_linear_quality", outcome.report("Figure 7 — linear permutations"))
    benchmark.extra_info["good_pct"] = outcome.good_match_percentage()
    benchmark.extra_info["miss_pct"] = outcome.miss_percentage()
    benchmark.extra_info["exact_pct"] = 100 * outcome.exact_fraction
    # Loosest family: almost no outright misses...
    assert outcome.miss_percentage() < 5.0
    # ...and identical matches are found when they exist (repeats occur in
    # the uniform workload at the ~1% birthday rate).
    assert outcome.exact_fraction >= 0.0
