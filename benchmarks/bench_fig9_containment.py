"""Figure 9 — recall with containment-similarity matching.

Same hashing (approx min-wise), two in-bucket matchers.  Asserts the
paper's effect: containment matching answers substantially more queries
completely and improves recall for most queries.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig9_containment import ContainmentMatchingExperiment


def _make(scale: str) -> ContainmentMatchingExperiment:
    if scale == "paper":
        return ContainmentMatchingExperiment.paper()
    return ContainmentMatchingExperiment.quick()


def test_fig9_containment_matching(benchmark, scale, emit):
    outcome = run_once(benchmark, lambda: _make(scale).run())
    emit("fig9_containment", outcome.report())
    stats = outcome.comparison()
    benchmark.extra_info.update(
        {
            "jaccard_full_pct": stats["baseline_full_pct"],
            "containment_full_pct": stats["variant_full_pct"],
            "improved_pct": stats["improved_pct"],
        }
    )
    # Paper: completely-answered improves (35% -> ~60%); recall better for
    # ~85% of queries (we require a clear majority of non-worsened).
    assert stats["variant_full_pct"] > stats["baseline_full_pct"] * 1.2
    assert stats["improved_pct"] + stats["unchanged_pct"] > 70.0
