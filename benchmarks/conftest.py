"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's figures: it runs the
experiment once under ``pytest-benchmark`` (rounds=1 — these are
experiment harnesses, not microbenchmarks), prints the figure's
rows/series, and writes them to ``results/<name>.txt`` so the numbers
survive the run.

Scale control: set ``REPRO_BENCH_SCALE=quick`` for CI-sized runs; the
default is the paper's parameters.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def bench_scale() -> str:
    """'paper' (default) or 'quick' from the environment."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "paper")
    if scale not in ("paper", "quick"):
        raise ValueError(f"REPRO_BENCH_SCALE must be paper|quick, got {scale!r}")
    return scale


@pytest.fixture(scope="session")
def scale() -> str:
    """The run scale for this session."""
    return bench_scale()


@pytest.fixture(scope="session")
def emit():
    """Writer: print a figure's text report and persist it to results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")

    return _emit


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
