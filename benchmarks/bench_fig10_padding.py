"""Figure 10 — recall with 20% query padding.

Containment matching with approx min-wise hashing; the padded system
expands every selection range 20% per edge before hashing/storing.
Asserts the paper's trade-off: many more complete answers, but a minority
of queries do worse than without padding.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig10_padding import PaddingExperiment


def _make(scale: str) -> PaddingExperiment:
    return PaddingExperiment.paper() if scale == "paper" else PaddingExperiment.quick()


def test_fig10_query_padding(benchmark, scale, emit):
    outcome = run_once(benchmark, lambda: _make(scale).run())
    emit("fig10_padding", outcome.report())
    stats = outcome.comparison()
    benchmark.extra_info.update(
        {
            "unpadded_full_pct": stats["baseline_full_pct"],
            "padded_full_pct": stats["variant_full_pct"],
            "hurt_pct": stats["worsened_pct"],
        }
    )
    # More complete answers with padding...
    assert stats["variant_full_pct"] > stats["baseline_full_pct"]
    # ...but the paper's cost is real: some queries lose recall.
    assert stats["worsened_pct"] > 0.0
    # And the benefit is broad (paper: ~78% of queries benefit).
    assert stats["improved_pct"] > stats["worsened_pct"]
