"""Ablation — the paper's Figure 3 construction vs ideal permutations.

Table permutations are exactly min-wise independent over the experiment
domain; the bit-shuffle families are cheap approximations.  The ablation
quantifies what the approximation costs (or gains — the bit-shuffle's bias
toward low-popcount minima makes it *looser* than ideal).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ext_ideal_family import IdealFamilyAblation
from repro.metrics.recall import fraction_fully_answered


def _make(scale: str) -> IdealFamilyAblation:
    return (
        IdealFamilyAblation.paper() if scale == "paper" else IdealFamilyAblation.quick()
    )


def test_ext_ideal_family_ablation(benchmark, scale, emit):
    outcome = run_once(benchmark, lambda: _make(scale).run())
    emit("ext_ideal_family", outcome.report())
    for family, data in outcome.outcomes.items():
        benchmark.extra_info[f"{family}_good_pct"] = data.good_match_percentage()
        benchmark.extra_info[f"{family}_full_pct"] = fraction_fully_answered(
            data.recalls
        )
    # Every family must find exact matches for repeated queries and produce
    # a non-degenerate distribution.
    for family, data in outcome.outcomes.items():
        assert data.n_queries > 0, family
        assert 0.0 <= data.good_match_percentage() <= 100.0
