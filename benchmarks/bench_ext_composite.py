"""Extension (Section 5.2) — composite answers from all located partitions.

Measures how much recall composing every reply adds over the paper's
best-single policy, over the standard 10k uniform workload.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ext_composite import CompositeAnswerExperiment
from repro.metrics.recall import fraction_fully_answered


def _make(scale: str) -> CompositeAnswerExperiment:
    return (
        CompositeAnswerExperiment.paper()
        if scale == "paper"
        else CompositeAnswerExperiment.quick()
    )


def test_ext_composite_answers(benchmark, scale, emit):
    outcome = run_once(benchmark, lambda: _make(scale).run())
    emit("ext_composite", outcome.report())
    single_full = fraction_fully_answered(outcome.single_recalls)
    composite_full = fraction_fully_answered(outcome.composite_recalls)
    benchmark.extra_info["single_full_pct"] = single_full
    benchmark.extra_info["composite_full_pct"] = composite_full
    benchmark.extra_info["mean_gain"] = outcome.mean_gain
    # Composition can only add coverage.
    assert composite_full >= single_full
    assert outcome.mean_gain >= 0.0
    # And it does add some: multiple owners answer with different ranges.
    assert outcome.gained_query_pct > 0.0
