"""Figure 5 — execution times for the hash function families.

Regenerates the paper's timing series (range size vs milliseconds for the
full l x k = 100 hash evaluation) and asserts the orderings the figure
establishes: linear ≪ approx min-wise ≪ min-wise, all growing with range
size.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig5_timing import HashTimingExperiment


def _experiment(scale: str) -> HashTimingExperiment:
    return (
        HashTimingExperiment.paper()
        if scale == "paper"
        else HashTimingExperiment.quick()
    )


def test_fig5_hash_timing(benchmark, scale, emit):
    outcome = run_once(benchmark, lambda: _experiment(scale).run())
    emit("fig5_hash_timing", outcome.report())
    benchmark.extra_info["linear_vs_minwise_speedup"] = outcome.speedup(
        "linear", "min-wise"
    )
    benchmark.extra_info["approx_vs_minwise_speedup"] = outcome.speedup(
        "approx-min-wise", "min-wise"
    )
    # Shape assertions (who wins, and by orders of magnitude).
    assert outcome.mean_ms("linear") < outcome.mean_ms("approx-min-wise")
    assert outcome.mean_ms("approx-min-wise") < outcome.mean_ms("min-wise")
    assert outcome.speedup("linear", "min-wise") > 20
    for points in outcome.series.values():
        assert points[0][1] < points[-1][1]
