"""Extension (Section 6) — statistics-based query routing.

Asserts the planning story: probing wins under clustered reuse, going
direct wins (or ties) under scattered one-off queries, and the adaptive
planner stays within a modest factor of the better fixed policy in *both*
regimes — the property neither fixed policy has.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ext_stats_planning import StatsPlanningExperiment


def _make(scale: str) -> StatsPlanningExperiment:
    return (
        StatsPlanningExperiment.paper()
        if scale == "paper"
        else StatsPlanningExperiment.quick()
    )


def test_ext_stats_planning(benchmark, scale, emit):
    outcome = run_once(benchmark, lambda: _make(scale).run())
    emit("ext_stats_planning", outcome.report())
    probe_clustered = outcome.total("clustered", "always-probe")
    direct_clustered = outcome.total("clustered", "always-direct")
    benchmark.extra_info["clustered_probe_cost"] = probe_clustered
    benchmark.extra_info["clustered_direct_cost"] = direct_clustered
    # Caching pays off under reuse...
    assert probe_clustered < direct_clustered
    # ...and the adaptive planner is never far from the better policy.
    for regime in outcome.costs:
        best_fixed = min(
            outcome.total(regime, "always-probe"),
            outcome.total(regime, "always-direct"),
        )
        assert outcome.total(regime, "adaptive") <= best_fixed * 1.35
