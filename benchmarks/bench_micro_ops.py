"""Microbenchmarks for the core operations (true pytest-benchmark timing).

These are the per-operation costs behind the figure experiments: hashing
one range to its l identifiers (naive vs RMQ-accelerated), one Chord
lookup, and one end-to-end system query.
"""

from __future__ import annotations

import pytest

from repro.chord.ring import ChordRing
from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.lsh import (
    ApproxMinWiseFamily,
    DomainMinHashIndex,
    LSHIdentifierScheme,
)
from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange
from repro.util.rng import derive_rng

DOMAIN = Domain("value", 0, 1000)
QUERY = IntRange(200, 600)


@pytest.fixture(scope="module")
def scheme():
    return LSHIdentifierScheme.from_family(ApproxMinWiseFamily(), seed=1)


@pytest.fixture(scope="module")
def accel_index(scheme):
    return DomainMinHashIndex(scheme, DOMAIN)


@pytest.fixture(scope="module")
def ring():
    ring = ChordRing(m=32)
    ring.add_nodes(1000)
    ring.build()
    return ring


def test_hash_identifiers_naive(benchmark, scheme):
    result = benchmark(scheme.identifiers, QUERY)
    assert len(result) == 5


def test_hash_identifiers_accelerated(benchmark, accel_index):
    result = benchmark(accel_index.identifiers, QUERY)
    assert result == accel_index.scheme.identifiers(QUERY)


def test_chord_lookup(benchmark, ring):
    rng = derive_rng(0, "micro/lookup")
    keys = [int(rng.integers(0, 2**32)) for _ in range(512)]
    origins = [
        ring.node_ids[int(rng.integers(len(ring.node_ids)))] for _ in range(512)
    ]
    state = {"i": 0}

    def one_lookup():
        i = state["i"] = (state["i"] + 1) % 512
        return ring.lookup(keys[i], start_id=origins[i])

    result = benchmark(one_lookup)
    assert result.owner_id == ring.successor_of(result.key)


def test_system_query(benchmark):
    system = RangeSelectionSystem(SystemConfig(n_peers=200, seed=2))
    rng = derive_rng(1, "micro/query")

    def one_query():
        a = int(rng.integers(0, 1001))
        b = int(rng.integers(0, 1001))
        return system.query(IntRange(min(a, b), max(a, b)))

    result = benchmark(one_query)
    assert result.peers_contacted >= 1
