"""Microbenchmarks for the core operations (true pytest-benchmark timing).

These are the per-operation costs behind the figure experiments: hashing
one range to its l identifiers (naive vs RMQ-accelerated), one Chord
lookup, and one end-to-end system query — at the default size and at the
paper's 1000-peer scale.

Every run writes ``BENCH_micro_ops.json`` at the repo root (CI uploads
it as an artifact), so the per-operation cost trajectory is persisted
PR over PR instead of vanishing with the run.
"""

from __future__ import annotations

import json
import platform
import sys
from pathlib import Path

import pytest

from conftest import bench_scale

from repro.chord.ring import ChordRing
from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.lsh import (
    ApproxMinWiseFamily,
    DomainMinHashIndex,
    LSHIdentifierScheme,
)
from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange
from repro.util.rng import derive_rng

DOMAIN = Domain("value", 0, 1000)
QUERY = IntRange(200, 600)

REPORT_PATH = Path(__file__).resolve().parent.parent / "BENCH_micro_ops.json"

#: op name -> timing row, flushed to ``BENCH_micro_ops.json`` at teardown.
_RECORDED: dict[str, dict] = {}


def record(name: str, benchmark) -> None:
    """Keep one op's timings for the JSON report (no-op when disabled)."""
    metadata = getattr(benchmark, "stats", None)
    if metadata is None:  # --benchmark-disable
        return
    stats = metadata.stats
    _RECORDED[name] = {
        "mean_s": stats.mean,
        "median_s": stats.median,
        "min_s": stats.min,
        "stddev_s": stats.stddev,
        "rounds": stats.rounds,
        "ops_per_s": stats.ops,
    }


@pytest.fixture(scope="module", autouse=True)
def bench_report():
    """Write the per-operation trajectory file once the module is done."""
    _RECORDED.clear()
    yield
    if not _RECORDED:
        return
    payload = {
        "suite": "micro_ops",
        "scale": bench_scale(),
        "python": platform.python_version(),
        "platform": sys.platform,
        "ops": _RECORDED,
    }
    REPORT_PATH.write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


@pytest.fixture(scope="module")
def scheme():
    return LSHIdentifierScheme.from_family(ApproxMinWiseFamily(), seed=1)


@pytest.fixture(scope="module")
def accel_index(scheme):
    return DomainMinHashIndex(scheme, DOMAIN)


@pytest.fixture(scope="module")
def ring():
    ring = ChordRing(m=32)
    ring.add_nodes(1000)
    ring.build()
    return ring


def test_hash_identifiers_naive(benchmark, scheme):
    result = benchmark(scheme.identifiers, QUERY)
    assert len(result) == 5
    record("hash_identifiers_naive", benchmark)


def test_hash_identifiers_accelerated(benchmark, accel_index):
    result = benchmark(accel_index.identifiers, QUERY)
    assert result == accel_index.scheme.identifiers(QUERY)
    record("hash_identifiers_accelerated", benchmark)


def test_chord_lookup(benchmark, ring):
    rng = derive_rng(0, "micro/lookup")
    keys = [int(rng.integers(0, 2**32)) for _ in range(512)]
    origins = [
        ring.node_ids[int(rng.integers(len(ring.node_ids)))] for _ in range(512)
    ]
    state = {"i": 0}

    def one_lookup():
        i = state["i"] = (state["i"] + 1) % 512
        return ring.lookup(keys[i], start_id=origins[i])

    result = benchmark(one_lookup)
    assert result.owner_id == ring.successor_of(result.key)
    record("chord_lookup_1000_peers", benchmark)


def _bench_system_query(benchmark, n_peers: int, name: str) -> None:
    system = RangeSelectionSystem(SystemConfig(n_peers=n_peers, seed=2))
    rng = derive_rng(1, "micro/query")

    def one_query():
        a = int(rng.integers(0, 1001))
        b = int(rng.integers(0, 1001))
        return system.query(IntRange(min(a, b), max(a, b)))

    result = benchmark(one_query)
    assert result.peers_contacted >= 1
    record(name, benchmark)


def test_wal_append(benchmark, tmp_path):
    # One journaled store mutation: encode with the wire codec tags,
    # length-prefix, write, flush.  fsync is off so the number tracks
    # the encode/framing cost, not the disk (which CI machines vary on).
    from repro.db.partition import PartitionDescriptor
    from repro.storage.wal import WalWriter, encode_wal_record

    descriptor = PartitionDescriptor("R", "value", QUERY)
    op = {
        "op": "store", "via": "store", "identifier": 123456,
        "descriptor": descriptor, "partition": None,
        "primary": True, "access_clock": 42, "clock": 42,
    }
    writer = WalWriter(tmp_path / "wal.log", fsync=False)

    def one_append():
        return writer.append(encode_wal_record(op))

    result = benchmark(one_append)
    assert result > 0
    writer.close()
    record("wal_append_no_fsync", benchmark)


def test_system_query(benchmark):
    _bench_system_query(benchmark, 200, "system_query_200_peers")


def test_system_query_at_scale(benchmark, scale):
    # The paper's n=1000 operating point; CI's quick scale keeps it small.
    n_peers = 1000 if scale == "paper" else 400
    _bench_system_query(benchmark, n_peers, f"system_query_{n_peers}_peers")
