"""Gate: fail CI when the micro-op benchmarks regress past a threshold.

Compares a freshly generated ``BENCH_micro_ops.json`` against the
baseline committed at the repo root::

    git show HEAD:BENCH_micro_ops.json > /tmp/baseline.json
    python benchmarks/check_bench_regression.py /tmp/baseline.json \
        BENCH_micro_ops.json --threshold 0.30

An op regresses when its best-case time (``min_s`` — the least noisy
statistic a shared CI runner produces) grows by more than ``threshold``
relative to the baseline.  Ops present on only one side are reported but
never fail the gate (new benchmarks must be able to land, and retired
ones to leave).  Exit code 1 lists every regressed op; improvements are
printed for the log.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Timing statistic compared; min_s is the most reproducible on shared
#: runners (mean/median absorb scheduler noise spikes).
STAT = "min_s"


def load_ops(path: Path) -> dict[str, dict]:
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}") from exc
    ops = document.get("ops")
    if not isinstance(ops, dict):
        raise SystemExit(f"error: {path} has no 'ops' table")
    return ops


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="committed baseline JSON")
    parser.add_argument("current", type=Path, help="freshly generated JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed fractional slowdown before failing (default 0.30)",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        raise SystemExit("error: --threshold must be positive")
    baseline = load_ops(args.baseline)
    current = load_ops(args.current)
    regressed: list[str] = []
    for name in sorted(set(baseline) | set(current)):
        old = baseline.get(name, {}).get(STAT)
        new = current.get(name, {}).get(STAT)
        if old is None or new is None:
            side = "baseline" if old is None else "current run"
            print(f"  ~ {name}: missing from {side}, skipped")
            continue
        if old <= 0:
            print(f"  ~ {name}: degenerate baseline ({old}), skipped")
            continue
        change = (new - old) / old
        marker = " "
        if change > args.threshold:
            marker = "!"
            regressed.append(name)
        elif change < -args.threshold:
            marker = "+"
        print(
            f"  {marker} {name}: {STAT} {old * 1e6:.1f}us -> "
            f"{new * 1e6:.1f}us ({change:+.1%})"
        )
    if regressed:
        print(
            f"error: {len(regressed)} op(s) regressed more than "
            f"{args.threshold:.0%}: {', '.join(regressed)}",
            file=sys.stderr,
        )
        return 1
    print(f"ok: no op regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
