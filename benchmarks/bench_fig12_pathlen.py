"""Figure 12 — lookup path lengths.

Regenerates panel (a), mean/1st/99th-percentile hops for 100..5000 peers,
and panel (b), the hop-count PDF in a 1000-node system, and asserts the
paper's summary: mean path length of the order (1/2) log2 N, growing with
system size.
"""

from __future__ import annotations

import math

from conftest import run_once

from repro.experiments.fig12_pathlen import PathLengthExperiment


def _make(scale: str) -> PathLengthExperiment:
    return (
        PathLengthExperiment.paper()
        if scale == "paper"
        else PathLengthExperiment.quick()
    )


def test_fig12_path_lengths(benchmark, scale, emit):
    outcome = run_once(benchmark, lambda: _make(scale).run())
    emit("fig12_path_lengths", outcome.report())
    for n, stats in outcome.by_peers:
        benchmark.extra_info[f"mean_hops_{n}"] = stats.mean
        # Of the order (1/2) log2 N: within an additive band.
        expected = 0.5 * math.log2(n)
        assert expected - 1.0 <= stats.mean <= expected + 2.5
    means = [stats.mean for _, stats in outcome.by_peers]
    assert means[0] < means[-1]  # grows with N
    # PDF: normalized, peaked at a small hop count.
    probs = outcome.pdf.probabilities()
    assert abs(sum(probs.values()) - 1.0) < 1e-9
    mode = max(probs, key=probs.get)
    assert 1 <= mode <= math.log2(outcome.pdf_peers) + 2
