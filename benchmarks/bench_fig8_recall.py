"""Figure 8 — recall for the three hash function families.

Regenerates the recall CDF ("part of query answered" vs percentage of
queries) over one shared trace and asserts the orderings the paper
reports: linear answers the most queries completely, min-wise the fewest;
min-wise and approx answer at least 0.8 of the vast majority of queries.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig8_recall import RecallExperiment


def _make(scale: str) -> RecallExperiment:
    return RecallExperiment.paper() if scale == "paper" else RecallExperiment.quick()


def test_fig8_recall_cdfs(benchmark, scale, emit):
    outcome = run_once(benchmark, lambda: _make(scale).run())
    emit("fig8_recall", outcome.report())
    for family in outcome.outcomes:
        benchmark.extra_info[f"{family}_full_pct"] = outcome.fully_answered(family)

    linear = outcome.fully_answered("linear")
    approx = outcome.fully_answered("approx-min-wise")
    minwise = outcome.fully_answered("min-wise")
    # Complete-answer ordering (paper: 50% / 35% / 30%).
    assert linear > minwise
    assert approx > minwise
    # Paper: "[min-wise and approx] answer at least 0.8 of 90% of the
    # queries" at paper scale; allow headroom at quick scale.
    threshold = 80.0 if scale == "paper" else 40.0
    assert outcome.at_least("min-wise", 0.8) > threshold
    assert outcome.at_least("approx-min-wise", 0.8) > threshold
