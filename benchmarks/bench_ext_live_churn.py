"""Extension — live churn: the cluster heals itself, recall survives.

Spawns a real ``repro serve`` cluster (one OS process per peer, SWIM
failure detection and server-side repair on), plays the kill / pause /
partition waves of :class:`~repro.experiments.ext_live_churn.
LiveChurnExperiment`, and asserts the self-healing contract end to end:

- the SIGKILL'd peer is detected and evicted by the ring itself, its
  entries are re-replicated to ``r`` live copies, and recall holds —
  with the client idle throughout the detection/repair window;
- the SIGSTOP'd peer is suspected but never evicted, rejoins on SIGCONT
  with every entry it held, and recall holds;
- after the two-sided partition heals, membership reconverges to the
  full surviving ring and recall holds.

This benchmark drives real processes and real clocks; it is excluded
from ``repro experiments`` and runs in its own CI job under a hard
timeout.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ext_live_churn import LiveChurnExperiment


def _make(scale: str) -> LiveChurnExperiment:
    return (
        LiveChurnExperiment.paper()
        if scale == "paper"
        else LiveChurnExperiment.quick()
    )


def test_ext_live_churn(benchmark, scale, emit):
    experiment = _make(scale)
    outcome = run_once(benchmark, lambda: experiment.run())
    emit("ext_live_churn", outcome.report())

    warm = outcome.wave("warm")
    kill = outcome.wave("kill")
    pause = outcome.wave("pause")
    partition = outcome.wave("partition")
    benchmark.extra_info["kill_detect_ms"] = kill.detect_ms
    benchmark.extra_info["kill_repair_ms"] = kill.repair_ms
    benchmark.extra_info["partition_repair_ms"] = partition.repair_ms

    # Warm baseline: every tile stored and found.
    assert warm.recall == 1.0
    assert warm.members == experiment.n_peers

    # Kill wave: the ring detected and repaired the death on its own.
    assert kill.members == experiment.n_peers - 1
    assert kill.detect_ms is not None and kill.detect_ms > 0
    assert kill.repair_ms is not None and kill.repair_ms >= kill.detect_ms
    assert kill.evicted > 0  # some peer confirmed the death
    assert kill.repair_copies > 0  # server-driven re-replication ran
    assert kill.recall >= warm.recall - 1e-9

    # Pause wave: suspected, refuted, nothing lost, nobody evicted.
    assert pause.members == experiment.n_peers - 1
    assert pause.recall >= warm.recall - 1e-9

    # Partition wave: both sides split and re-merged.
    assert partition.members == experiment.n_peers - 1
    assert partition.recall >= warm.recall - 1e-9

    # The cluster's own telemetry recorded the detection latency.
    detect_count, detect_mean, _ = outcome.swim_detect_stats
    assert detect_count > 0
    assert detect_mean > 0
