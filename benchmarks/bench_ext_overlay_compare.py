"""Extension (Section 3.1) — Chord vs CAN routing cost and quality parity.

Asserts the asymptotic shapes: Chord hops grow logarithmically, CAN hops
grow polynomially (N^(1/d)), so CAN's curve rises faster; and the match
quality of the range-selection system does not depend on the overlay.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ext_overlay_compare import OverlayComparisonExperiment


def _make(scale: str) -> OverlayComparisonExperiment:
    return (
        OverlayComparisonExperiment.paper()
        if scale == "paper"
        else OverlayComparisonExperiment.quick()
    )


def test_ext_overlay_comparison(benchmark, scale, emit):
    outcome = run_once(benchmark, lambda: _make(scale).run())
    emit("ext_overlay_compare", outcome.report())
    chord = {n: stats.mean for n, stats in outcome.hops["chord"]}
    can = {n: stats.mean for n, stats in outcome.hops["can"]}
    sizes = sorted(chord)
    benchmark.extra_info["chord_hops_max_n"] = chord[sizes[-1]]
    benchmark.extra_info["can_hops_max_n"] = can[sizes[-1]]
    # CAN's routing cost grows strictly faster than Chord's with N.
    chord_growth = chord[sizes[-1]] / chord[sizes[0]]
    can_growth = can[sizes[-1]] / can[sizes[0]]
    assert can_growth > chord_growth
    # Both overlays produce comparable match quality (+-5 points): the
    # overlay routes messages; it does not decide bucket contents.
    quality = outcome.quality
    assert abs(quality["chord"] - quality["can"]) < 5.0
