"""Extension (Section 5.3) — matching against a local peer index.

The paper predicts: recall is best with one peer (the local index sees
every partition, like a centralized index) and degrades toward the
bucket-only behaviour as peers multiply — while never doing worse than
bucket-only matching.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ext_local_index import LocalIndexExperiment


def _make(scale: str) -> LocalIndexExperiment:
    return (
        LocalIndexExperiment.paper()
        if scale == "paper"
        else LocalIndexExperiment.quick()
    )


def test_ext_local_index(benchmark, scale, emit):
    outcome = run_once(benchmark, lambda: _make(scale).run())
    emit("ext_local_index", outcome.report())
    by_peers = {n: (bucket, local) for n, bucket, local in outcome.rows}
    for n, (bucket, local) in by_peers.items():
        benchmark.extra_info[f"local_full_pct_{n}"] = local
        assert local >= bucket - 1.0  # the index never hurts
    # Best at one peer (centralized-index limit).
    single_peer = by_peers[min(by_peers)]
    assert single_peer[1] >= max(local for _, local in by_peers.values()) - 1.0
