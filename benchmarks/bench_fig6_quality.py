"""Figures 6a / 6b — match quality of min-wise and approximate min-wise.

Regenerates the similarity histograms of the best matched partition over
the paper's 10,000 uniform ranges (20% warmup dropped), and asserts the
shapes: mass concentrated at similarity >= 0.9, with min-wise stricter
(more outright misses) than the approximate family.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig6_7_quality import MatchQualityExperiment


def _make(scale: str, family: str) -> MatchQualityExperiment:
    if scale == "paper":
        return MatchQualityExperiment.paper(family)
    return MatchQualityExperiment.quick(family)


def test_fig6a_minwise_quality(benchmark, scale, emit):
    outcome = run_once(benchmark, lambda: _make(scale, "min-wise").run())
    emit("fig6a_minwise_quality", outcome.report("Figure 6a — min-wise"))
    benchmark.extra_info["good_pct"] = outcome.good_match_percentage()
    benchmark.extra_info["miss_pct"] = outcome.miss_percentage()
    # Top-heavy histogram: the [0.9, 1.0] bin dominates every other bin.
    percentages = outcome.histogram.percentages()
    assert percentages[-1] == max(percentages)
    assert outcome.miss_percentage() > 3.0  # strict family: real misses


def test_fig6b_approx_quality(benchmark, scale, emit):
    outcome = run_once(benchmark, lambda: _make(scale, "approx-min-wise").run())
    emit("fig6b_approx_quality", outcome.report("Figure 6b — approx min-wise"))
    benchmark.extra_info["good_pct"] = outcome.good_match_percentage()
    benchmark.extra_info["miss_pct"] = outcome.miss_percentage()
    percentages = outcome.histogram.percentages()
    assert percentages[-1] == max(percentages)
    # Looser than full min-wise: it finds matches for more queries.
    strict = _make(scale, "min-wise").run()
    assert outcome.miss_percentage() < strict.miss_percentage()
