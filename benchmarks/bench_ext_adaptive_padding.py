"""Extension (Section 5.2 future work) — dynamically adjusted padding.

Compares the adaptive controller against fixed paddings over one trace;
the controller should at least match the no-padding baseline on complete
answers while keeping padding bounded.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ext_adaptive_padding import AdaptivePaddingExperiment


def _make(scale: str) -> AdaptivePaddingExperiment:
    return (
        AdaptivePaddingExperiment.paper()
        if scale == "paper"
        else AdaptivePaddingExperiment.quick()
    )


def test_ext_adaptive_padding(benchmark, scale, emit):
    outcome = run_once(benchmark, lambda: _make(scale).run())
    emit("ext_adaptive_padding", outcome.report())
    rows = {name: (full, mean) for name, full, mean in outcome.rows}
    benchmark.extra_info["adaptive_full_pct"] = rows["adaptive"][0]
    benchmark.extra_info["final_padding"] = outcome.final_padding
    assert rows["adaptive"][0] >= rows["fixed 0%"][0] - 1.0
    assert 0.0 <= outcome.final_padding <= 0.5
