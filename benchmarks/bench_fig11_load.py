"""Figure 11 — load balance (partitions per node).

Regenerates both panels: (a) 50,000 placements over 100..5000 peers, and
(b) 35k..180k placements over 1000 peers, reporting mean and 1st/99th
percentiles.  A second benchmark runs the *placement ablation*: raw LSH
identifiers used directly as ring positions (what the paper's text
literally says) versus SHA-1 rehashed placement (standard DHT practice,
matching the balance the paper's figure reports).
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.experiments.fig11_load import LoadBalanceExperiment
from repro.metrics.report import format_table


def _make(scale: str, placement: str = "rehash") -> LoadBalanceExperiment:
    experiment = (
        LoadBalanceExperiment.paper()
        if scale == "paper"
        else LoadBalanceExperiment.quick()
    )
    experiment.placement = placement
    return experiment


def test_fig11_load_balance(benchmark, scale, emit):
    outcome = run_once(benchmark, lambda: _make(scale).run())
    emit("fig11_load_balance", outcome.report())
    means = {n: stats.mean for n, stats in outcome.by_peers}
    ns = sorted(means)
    benchmark.extra_info["mean_at_smallest"] = means[ns[0]]
    # Panel (a): mean load is exactly placements / N.
    for a, b in zip(ns, ns[1:]):
        assert means[a] / means[b] == pytest.approx(b / a, rel=0.01)
    # Spread narrows as peers grow (relative to the mean).
    first = outcome.by_peers[0][1]
    last = outcome.by_peers[-1][1]
    assert last.p99 / max(last.mean, 1) <= first.p99 / first.mean * 3
    # Panel (b): mean grows linearly with stored partitions.
    totals = [t for t, _ in outcome.by_partitions]
    bmeans = [s.mean for _, s in outcome.by_partitions]
    assert bmeans[-1] / bmeans[0] == pytest.approx(totals[-1] / totals[0], rel=0.01)


def test_fig11_placement_ablation(benchmark, scale, emit):
    """Direct placement concentrates load; rehash spreads it."""

    def run_both():
        direct = _make(scale, placement="direct").run()
        rehash = _make(scale, placement="rehash").run()
        return direct, rehash

    direct, rehash = run_once(benchmark, run_both)
    rows = []
    for (n, d_stats), (_, r_stats) in zip(direct.by_peers, rehash.by_peers):
        rows.append(
            [
                n,
                f"{d_stats.mean:.1f}",
                f"{d_stats.maximum:.0f}",
                f"{r_stats.maximum:.0f}",
                f"{d_stats.p50:.0f}",
                f"{r_stats.p50:.0f}",
            ]
        )
    text = format_table(
        ["peers", "mean", "max direct", "max rehash", "median direct", "median rehash"],
        rows,
        title=(
            "Placement ablation — raw LSH identifiers vs SHA-1 rehash\n"
            "(min-hash identifiers are small, so direct placement piles "
            "them onto the low arc: one peer's max load explodes while the "
            "median peer holds nothing)"
        ),
    )
    emit("fig11_placement_ablation", text)
    # The hot spot under direct placement dwarfs the rehash spread.
    for (n, d_stats), (_, r_stats) in zip(direct.by_peers, rehash.by_peers):
        assert d_stats.maximum >= r_stats.maximum
