"""Tests for the Chord ring: construction, routing, churn."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chord.lookup import LookupResult
from repro.chord.ring import ChordRing
from repro.errors import (
    ChordError,
    DuplicateNodeError,
    EmptyRingError,
    NodeNotFoundError,
)
from repro.util.rng import derive_rng


def built_ring(n: int, m: int = 16) -> ChordRing:
    ring = ChordRing(m=m)
    ring.add_nodes(n)
    ring.build()
    return ring


class TestMembership:
    def test_add_and_lookup_node(self):
        ring = ChordRing()
        node = ring.add_node("peer-0")
        assert node.node_id in ring
        assert ring.node(node.node_id) is node

    def test_add_nodes_exact_count_despite_collisions(self):
        ring = ChordRing(m=8)  # tiny space: collisions certain
        added = ring.add_nodes(100)
        assert len(added) == 100
        assert len(ring) == 100

    def test_duplicate_id_rejected(self):
        ring = ChordRing()
        ring.add_node(node_id=5)
        with pytest.raises(DuplicateNodeError):
            ring.add_node(node_id=5)

    def test_node_without_identity_rejected(self):
        with pytest.raises(ChordError):
            ChordRing().add_node()

    def test_unknown_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            ChordRing().node(7)

    def test_remove_node(self):
        ring = ChordRing()
        node = ring.add_node(node_id=9)
        ring.remove_node(node.node_id)
        assert node.node_id not in ring


class TestOwnership:
    def test_successor_of_simple(self):
        ring = ChordRing(m=8)
        for nid in (10, 100, 200):
            ring.add_node(node_id=nid)
        assert ring.successor_of(5) == 10
        assert ring.successor_of(10) == 10  # least id >= key
        assert ring.successor_of(150) == 200
        assert ring.successor_of(201) == 10  # wraps

    def test_predecessor_of(self):
        ring = ChordRing(m=8)
        for nid in (10, 100, 200):
            ring.add_node(node_id=nid)
        assert ring.predecessor_of(10) == 200
        assert ring.predecessor_of(100) == 10

    def test_owned_interval(self):
        ring = ChordRing(m=8)
        for nid in (10, 100, 200):
            ring.add_node(node_id=nid)
        assert ring.owned_interval(100) == (10, 100)
        assert ring.owned_interval(10) == (200, 10)

    def test_empty_ring_raises(self):
        with pytest.raises(EmptyRingError):
            ChordRing().successor_of(1)


class TestStaticBuild:
    def test_invariants_hold_after_build(self):
        ring = built_ring(200)
        ring.check_invariants()

    def test_build_empty_raises(self):
        with pytest.raises(EmptyRingError):
            ChordRing().build()

    def test_single_node_ring(self):
        ring = built_ring(1)
        node = ring.node(ring.node_ids[0])
        assert node.successor_id == node.node_id
        assert node.predecessor_id == node.node_id
        result = ring.lookup(123, start_id=node.node_id)
        assert result.owner_id == node.node_id
        assert result.hops == 0

    def test_two_node_ring_routing(self):
        ring = ChordRing(m=8)
        ring.add_node(node_id=10)
        ring.add_node(node_id=200)
        ring.build()
        result = ring.lookup(150, start_id=10)
        assert result.owner_id == 200
        assert result.hops == 1


class TestLookup:
    def test_owner_matches_successor_for_random_keys(self, rng):
        ring = built_ring(150)
        ids = ring.node_ids
        for _ in range(300):
            key = int(rng.integers(0, ring.space.size))
            start = ids[int(rng.integers(len(ids)))]
            result = ring.lookup(key, start_id=start)
            assert result.owner_id == ring.successor_of(key)

    def test_path_starts_at_origin_and_ends_at_owner(self, rng):
        ring = built_ring(80)
        start = ring.node_ids[0]
        result = ring.lookup(12345, start_id=start)
        assert result.path[0] == start
        assert result.path[-1] == result.owner_id
        assert result.hops == len(result.path) - 1

    def test_mean_hops_scale_logarithmically(self):
        """Paper Fig 12a: mean path length ~ (1/2) log2 N."""
        rng = derive_rng(17, "hops")
        ring = ChordRing(m=32)
        ring.add_nodes(1000)
        ring.build()
        ids = ring.node_ids
        hops = []
        for _ in range(1500):
            key = int(rng.integers(0, 2**32))
            start = ids[int(rng.integers(len(ids)))]
            hops.append(ring.lookup(key, start_id=start).hops)
        mean = sum(hops) / len(hops)
        expected = 0.5 * math.log2(1000)
        assert expected - 1.0 < mean < expected + 2.0

    def test_lookup_without_build_raises(self):
        ring = ChordRing()
        ring.add_node(node_id=1)
        with pytest.raises(ChordError):
            ring.lookup(5, start_id=1)

    def test_lookup_empty_raises(self):
        with pytest.raises(EmptyRingError):
            ChordRing().lookup(5)

    @given(st.integers(0, (1 << 16) - 1))
    @settings(max_examples=40, deadline=None)
    def test_lookup_correct_for_any_key(self, key):
        ring = _PROPERTY_RING
        result = ring.lookup(key, start_id=ring.node_ids[3])
        assert result.owner_id == ring.successor_of(key)


class TestLookupResult:
    def test_validates_hop_count(self):
        with pytest.raises(ValueError):
            LookupResult(key=1, owner_id=2, hops=5, path=(1, 2))

    def test_validates_terminal_node(self):
        with pytest.raises(ValueError):
            LookupResult(key=1, owner_id=9, hops=1, path=(1, 2))


class TestChurn:
    def test_join_then_stabilize_converges_to_static_build(self):
        ring = ChordRing(m=16)
        boot = ring.bootstrap("n-0")
        for i in range(1, 40):
            ring.join(f"n-{i}", via=boot.node_id)
            ring.stabilize()
        ring.check_invariants()

    def test_joined_ring_routes_correctly(self, rng):
        ring = ChordRing(m=16)
        boot = ring.bootstrap("n-0")
        for i in range(1, 25):
            ring.join(f"n-{i}", via=boot.node_id)
            ring.stabilize()
        for _ in range(100):
            key = int(rng.integers(0, ring.space.size))
            assert ring.lookup(key, start_id=boot.node_id).owner_id == (
                ring.successor_of(key)
            )

    def test_bootstrap_only_on_empty_ring(self):
        ring = ChordRing()
        ring.bootstrap("first")
        with pytest.raises(ChordError):
            ring.bootstrap("second")

    def test_leave_splices_ring(self):
        ring = ChordRing(m=16)
        boot = ring.bootstrap("n-0")
        for i in range(1, 10):
            ring.join(f"n-{i}", via=boot.node_id)
            ring.stabilize()
        victim = next(nid for nid in ring.node_ids if nid != boot.node_id)
        ring.leave(victim)
        ring.stabilize()
        ring.check_invariants()
        assert victim not in ring

    def test_stabilize_reports_rounds(self):
        ring = ChordRing(m=16)
        boot = ring.bootstrap("n-0")
        ring.join("n-1", via=boot.node_id)
        rounds = ring.stabilize()
        assert rounds >= 1


# A moderately sized ring shared by property-based lookup tests.
_PROPERTY_RING = built_ring(60)
