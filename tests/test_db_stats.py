"""Tests for table statistics and statistics-driven join ordering."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.catalog import medical_catalog
from repro.db.plan.executor import SourceProvider, execute_plan
from repro.db.plan.nodes import JoinNode, LeafSelection
from repro.db.plan.planner import plan_select
from repro.db.predicates import EqualityPredicate, RangePredicate, TruePredicate
from repro.db.sql.parser import parse_select
from repro.db.stats import EquiWidthHistogram, TableStatistics
from repro.errors import SchemaError
from repro.ranges.interval import IntRange


class TestEquiWidthHistogram:
    def test_build_and_total(self):
        histogram = EquiWidthHistogram.build(
            list(range(0, 100)), low=0, high=99, n_buckets=10
        )
        assert histogram.total == 100
        assert histogram.counts == (10,) * 10

    def test_estimate_exact_for_uniform_data(self):
        histogram = EquiWidthHistogram.build(
            list(range(0, 100)), low=0, high=99, n_buckets=10
        )
        assert histogram.estimate_range(IntRange(0, 49)) == pytest.approx(50.0)
        assert histogram.estimate_range(IntRange(25, 34)) == pytest.approx(10.0)

    def test_estimate_outside_data(self):
        histogram = EquiWidthHistogram.build([5, 6, 7], low=0, high=99)
        assert histogram.estimate_range(IntRange(90, 99)) == 0.0

    def test_point_estimate(self):
        histogram = EquiWidthHistogram.build(
            [10] * 50, low=0, high=99, n_buckets=10
        )
        assert histogram.estimate_point(10) == pytest.approx(5.0)  # 50/10 wide
        assert histogram.estimate_point(500) == 0.0

    def test_validation(self):
        with pytest.raises(SchemaError):
            EquiWidthHistogram(low=5, high=4, counts=(1,))
        with pytest.raises(SchemaError):
            EquiWidthHistogram.build([], low=0, high=9, n_buckets=0)
        with pytest.raises(SchemaError):
            EquiWidthHistogram.build([100], low=0, high=9)

    @given(
        st.lists(st.integers(0, 200), min_size=1, max_size=200),
        st.tuples(st.integers(0, 200), st.integers(0, 200)),
    )
    @settings(max_examples=50, deadline=None)
    def test_estimates_conserve_mass(self, values, endpoints):
        histogram = EquiWidthHistogram.build(values, low=0, high=200, n_buckets=16)
        full = histogram.estimate_range(IntRange(0, 200))
        assert full == pytest.approx(len(values), rel=1e-9)
        query = IntRange(min(endpoints), max(endpoints))
        partial = histogram.estimate_range(query)
        assert -1e-9 <= partial <= len(values) + 1e-9


class TestAnalyze:
    @pytest.fixture(scope="class")
    def catalog(self):
        return medical_catalog(n_patients=400, n_physicians=10)

    def test_row_counts(self, catalog):
        stats = catalog.analyze()
        assert stats["Patient"].row_count == 400
        assert stats["Physician"].row_count == 10

    def test_histogram_estimate_close_to_truth(self, catalog):
        stats = catalog.analyze(n_buckets=16)
        predicate = RangePredicate("Patient", "age", IntRange(30, 50))
        truth = len(catalog.relation("Patient").select(predicate))
        estimate = stats["Patient"].estimate_predicate(predicate)
        assert truth * 0.5 - 8 <= estimate <= truth * 2.0 + 8

    def test_string_counts_exact(self, catalog):
        stats = catalog.analyze()
        predicate = EqualityPredicate("Diagnosis", "diagnosis", "Glaucoma")
        truth = len(catalog.relation("Diagnosis").select(predicate))
        assert stats["Diagnosis"].estimate_predicate(predicate) == truth

    def test_true_predicate(self, catalog):
        stats = catalog.analyze()
        assert stats["Patient"].estimate_predicate(
            TruePredicate("Patient")
        ) == 400

    def test_conjunction_independence(self, catalog):
        stats = catalog.analyze()
        both = stats["Patient"].estimate_leaf(
            [
                RangePredicate("Patient", "age", IntRange(0, 120)),
                RangePredicate("Patient", "age", IntRange(30, 50)),
            ]
        )
        one = stats["Patient"].estimate_leaf(
            [RangePredicate("Patient", "age", IntRange(30, 50))]
        )
        assert both <= one + 1e-9

    def test_empty_relation_estimates_zero(self):
        stats = TableStatistics(row_count=0)
        assert stats.estimate_leaf([TruePredicate("R")]) == 0.0


class TestStatisticsDrivenJoinOrder:
    SQL = (
        "SELECT Prescription.prescription FROM Prescription, Patient, Diagnosis "
        "WHERE age BETWEEN 30 AND 50 AND diagnosis = 'Glaucoma' "
        "AND Patient.patient_id = Diagnosis.patient_id "
        "AND Diagnosis.prescription_id = Prescription.prescription_id"
    )

    def test_smallest_leaf_becomes_build_base(self):
        catalog = medical_catalog(n_patients=400)
        statistics = catalog.analyze()
        plan = plan_select(parse_select(self.SQL), catalog.schema, statistics)
        # Deepest leaf (the starting relation) must be the most selective
        # one — Diagnosis (equality on one disease) or Patient (age range),
        # never the unselected Prescription that FROM lists first.
        node = plan.child
        while isinstance(node, JoinNode):
            node = node.left
        assert isinstance(node, LeafSelection)
        assert node.relation != "Prescription"

    def test_results_identical_with_and_without_statistics(self):
        catalog = medical_catalog(n_patients=300)
        statistics = catalog.analyze()
        with_stats = execute_plan(
            plan_select(parse_select(self.SQL), catalog.schema, statistics),
            catalog.schema,
            SourceProvider(catalog),
        )
        without = execute_plan(
            plan_select(parse_select(self.SQL), catalog.schema),
            catalog.schema,
            SourceProvider(catalog),
        )
        assert sorted(with_stats.rows) == sorted(without.rows)

    def test_from_order_preserved_without_statistics(self):
        catalog = medical_catalog(n_patients=100)
        plan = plan_select(parse_select(self.SQL), catalog.schema)
        node = plan.child
        while isinstance(node, JoinNode):
            node = node.left
        assert isinstance(node, LeafSelection)
        assert node.relation == "Prescription"  # first in FROM
