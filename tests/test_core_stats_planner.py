"""Tests for statistics-based routing (Section 6 future work)."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.stats_planner import (
    AdaptiveRoutingProvider,
    CostModel,
    LeafStatistics,
    StatisticsRegistry,
)
from repro.core.system import RangeSelectionSystem
from repro.db.plan.nodes import LeafSelection
from repro.db.predicates import RangePredicate
from repro.errors import ConfigError
from repro.experiments.ext_stats_planning import (
    VALUE_DOMAIN,
    StatsPlanningExperiment,
    synthetic_catalog,
)
from repro.ranges.interval import IntRange


class TestLeafStatistics:
    def test_cold_prior_is_half(self):
        assert LeafStatistics().hit_rate == 0.5

    def test_records_accumulate(self):
        stats = LeafStatistics()
        stats.record_probe(True, hops=10)
        stats.record_probe(False, hops=20)
        assert stats.probes == 2
        assert stats.cache_answers == 1
        assert stats.mean_probe_hops == 15.0

    def test_ewma_moves_toward_observations(self):
        stats = LeafStatistics()
        for _ in range(30):
            stats.record_probe(True, hops=1)
        assert stats.hit_rate > 0.95
        for _ in range(30):
            stats.record_probe(False, hops=1)
        assert stats.hit_rate < 0.05


class TestStatisticsRegistry:
    def test_streams_are_separate(self):
        registry = StatisticsRegistry()
        registry.for_leaf("R", "a").record_probe(True, 1)
        assert registry.for_leaf("R", "b").probes == 0
        assert registry.for_leaf("R", "a").probes == 1

    def test_snapshot(self):
        registry = StatisticsRegistry()
        registry.for_leaf("R", "a")
        assert ("R", "a") in registry.snapshot()


class TestCostModel:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CostModel(hop_cost=-1)

    def test_probe_cost_uses_prior_when_cold(self):
        model = CostModel(hop_cost=1, source_cost=50)
        cold = LeafStatistics()
        assert model.expected_probe_cost(cold, fallback_hops=20.0) == pytest.approx(
            20.0 + 0.5 * 50
        )

    def test_probe_cost_drops_with_hit_rate(self):
        model = CostModel(hop_cost=1, source_cost=50)
        hot = LeafStatistics()
        for _ in range(50):
            hot.record_probe(True, hops=10)
        cold = LeafStatistics()
        for _ in range(50):
            cold.record_probe(False, hops=10)
        assert model.expected_probe_cost(hot, 20.0) < model.expected_probe_cost(
            cold, 20.0
        )


class TestAdaptiveRoutingProvider:
    def _provider(self) -> AdaptiveRoutingProvider:
        catalog = synthetic_catalog()
        system = RangeSelectionSystem(
            SystemConfig(
                n_peers=40, matcher="containment", domain=VALUE_DOMAIN, seed=3
            )
        )
        return AdaptiveRoutingProvider(catalog, system)

    def _leaf(self, start: int, end: int) -> LeafSelection:
        return LeafSelection(
            relation="R", primary=RangePredicate("R", "value", IntRange(start, end))
        )

    def test_rows_always_correct(self):
        provider = self._provider()
        for _ in range(3):
            result = provider.fetch(self._leaf(100, 150))
            values = sorted(row[0] for row in result.rows)
            assert values == list(range(100, 151))

    def test_repeated_identical_leaves_become_cache_hits(self):
        provider = self._provider()
        origins = [provider.fetch(self._leaf(100, 150)).origin for _ in range(6)]
        assert "cache" in origins[1:]

    def test_decision_counts_tracked(self):
        provider = self._provider()
        for i in range(12):
            provider.fetch(self._leaf(i * 10, i * 10 + 5))
        total = sum(provider.decision_counts.values())
        assert total == 12

    def test_explore_every_validation(self):
        catalog = synthetic_catalog()
        system = RangeSelectionSystem(
            SystemConfig(n_peers=10, domain=VALUE_DOMAIN, seed=4)
        )
        with pytest.raises(ConfigError):
            AdaptiveRoutingProvider(catalog, system, explore_every=1)

    def test_bare_scan_goes_to_source(self):
        provider = self._provider()
        result = provider.fetch(LeafSelection(relation="R", primary=None))
        assert result.origin == "source"
        assert len(result.rows) == VALUE_DOMAIN.size


class TestExperiment:
    @pytest.fixture(scope="class")
    def outcome(self):
        return StatsPlanningExperiment.quick().run()

    def test_probe_wins_on_clustered(self, outcome):
        assert outcome.total("clustered", "always-probe") < outcome.total(
            "clustered", "always-direct"
        )

    def test_adaptive_tracks_best_fixed_policy(self, outcome):
        for regime in outcome.costs:
            best_fixed = min(
                outcome.total(regime, "always-probe"),
                outcome.total(regime, "always-direct"),
            )
            assert outcome.total(regime, "adaptive") <= best_fixed * 1.35

    def test_report_renders(self, outcome):
        text = outcome.report()
        assert "statistics-based routing" in text
        assert "adaptive" in text
