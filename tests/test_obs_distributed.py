"""Distributed tracing and telemetry primitives (no sockets needed).

The cross-process pieces — context on the wire, fragments over the
telemetry RPC, SIGKILL'd traced queries — are drilled in
``test_rpc_wire.py`` and ``test_rpc_cluster.py``; this module pins the
pure logic: the tolerant context codec, the flight recorder's bounds and
dumps, the torn-line JSONL reader, wall-to-trace-clock stitching (with
orphans and clock skew), and the snapshot-merge arithmetic behind the
cluster dashboard.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.distributed import (
    SKEW_TOLERANCE_MS,
    FlightRecorder,
    SpanFragment,
    TraceContext,
    bucket_quantile,
    cluster_histogram,
    counter_series,
    counter_total,
    format_trace,
    histogram_quantiles,
    load_skew,
    merge_histogram_series,
    new_trace_id,
    read_jsonl_tolerant,
    stitch_trace,
    wall_ms,
)
from repro.obs.trace import NULL_TRACE, QueryTrace


# -- trace context codec -----------------------------------------------------


def test_trace_context_round_trips_through_wire_form():
    ctx = TraceContext("abc123", "span-9", sampled=True)
    back = TraceContext.from_wire(ctx.to_wire())
    assert back is not None
    assert back.trace_id == "abc123"
    assert back.parent_span_id == "span-9"
    assert back.sampled is True


def test_trace_context_child_reparents_same_identity():
    ctx = TraceContext("abc123", "root", sampled=False)
    child = ctx.child("leaf")
    assert child.trace_id == "abc123"
    assert child.parent_span_id == "leaf"
    assert child.sampled is False


@pytest.mark.parametrize(
    "garbage",
    [
        None,
        "not-a-dict",
        42,
        [],
        {},
        {"id": None},
        {"id": ""},
        {"id": 7},
        {"span": "orphaned-span-without-id"},
    ],
)
def test_garbled_trace_envelope_reads_as_untraced(garbage):
    # The wire-compat rule: a bad envelope degrades, it never raises.
    assert TraceContext.from_wire(garbage) is None


def test_non_string_span_id_is_dropped_not_fatal():
    ctx = TraceContext.from_wire({"id": "abc", "span": 123})
    assert ctx is not None
    assert ctx.trace_id == "abc"
    assert ctx.parent_span_id is None


def test_null_trace_has_no_trace_identity():
    # The engine short-circuits on this: untraced queries put zero trace
    # bytes on the wire.
    assert NULL_TRACE.trace_id is None
    assert NULL_TRACE.span_id is None


def test_new_trace_ids_are_distinct():
    assert new_trace_id() != new_trace_id()


# -- span fragments and the flight recorder ----------------------------------


def test_span_fragment_round_trips_through_dict():
    fragment = SpanFragment(
        "serve:match-request",
        "peer-3",
        trace_id="t1",
        parent_span_id="p1",
        attrs={"kind": "match-request"},
    )
    fragment.event("dequeued", depth=2)
    fragment.end(outcome="ok")
    back = SpanFragment.from_dict(
        json.loads(json.dumps(fragment.to_dict()))
    )
    assert back.name == fragment.name
    assert back.node == "peer-3"
    assert back.trace_id == "t1"
    assert back.parent_span_id == "p1"
    assert back.span_id == fragment.span_id
    assert back.attrs["outcome"] == "ok"
    assert [event["name"] for event in back.events] == ["dequeued"]
    assert back.duration_ms == pytest.approx(fragment.duration_ms)


def test_fragment_end_is_idempotent():
    fragment = SpanFragment("s", "n")
    first = fragment.end().end_wall_ms
    assert fragment.end().end_wall_ms == first


def test_flight_recorder_is_bounded_and_filters_by_trace():
    recorder = FlightRecorder("peer-0", capacity=4)
    for index in range(10):
        recorder.record_span(
            SpanFragment(f"s{index}", "peer-0", trace_id="keep").end()
        )
    recorder.record_event("breaker", peer=7)
    assert len(recorder) == 4
    assert recorder.recorded == 11
    spans = recorder.spans_for("keep")
    assert [entry["name"] for entry in spans] == ["s7", "s8", "s9"]
    assert recorder.spans_for("other-trace") == []
    assert len(recorder.recent(limit=2)) == 2


def test_flight_recorder_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        FlightRecorder("peer-0", capacity=0)


def test_flight_dump_appends_jsonl_with_marker(tmp_path):
    recorder = FlightRecorder("peer-0", capacity=8)
    recorder.record_span(SpanFragment("s", "peer-0", trace_id="t").end())
    recorder.record_event("swim-suspect", target="peer-1")
    path = str(tmp_path / "flight.jsonl")
    written = recorder.dump(path, reason="breaker-open")
    written += recorder.dump(path, reason="confirmed-dead:peer-1")
    assert recorder.dumps == 2
    records, skipped = read_jsonl_tolerant(path)
    assert skipped == 0
    assert len(records) == written
    markers = [r for r in records if r["type"] == "flight-dump"]
    assert [m["reason"] for m in markers] == [
        "breaker-open",
        "confirmed-dead:peer-1",
    ]
    assert any(r["type"] == "span" for r in records)
    assert any(r["type"] == "event" for r in records)


def test_tolerant_reader_skips_torn_and_garbage_lines(tmp_path):
    path = tmp_path / "torn.jsonl"
    path.write_text(
        json.dumps({"type": "span", "name": "ok"})
        + "\n"
        + "[1, 2, 3]\n"  # valid JSON, wrong shape
        + "not json at all\n"
        + "\n"  # blank lines are not records, not errors
        + json.dumps({"type": "event", "name": "also-ok"})
        + "\n"
        + '{"type": "span", "name": "torn-by-sigk',  # no newline: torn
        encoding="utf-8",
    )
    records, skipped = read_jsonl_tolerant(str(path))
    assert [r["name"] for r in records] == ["ok", "also-ok"]
    assert skipped == 3


# -- stitching ---------------------------------------------------------------


def make_traced_query():
    """A client trace with a fake clock and one chain span, wall-anchored
    at 1_000_000.0 wall-ms == 0.0 trace-ms."""
    clock = {"now": 0.0}
    trace = QueryTrace(
        "query", clock=lambda: clock["now"], trace_id="trace-1"
    )
    trace.root.attrs["wall_start_ms"] = 1_000_000.0
    chain = trace.span("chain", identifier=42)
    clock["now"] = 50.0
    chain.end()
    clock["now"] = 60.0
    trace.end()
    return trace, chain


def test_stitch_attaches_fragment_under_issuing_span():
    trace, chain = make_traced_query()
    fragment = SpanFragment(
        "serve:match-request",
        "peer-2",
        trace_id="trace-1",
        parent_span_id=chain.span_id,
        start_wall_ms=1_000_010.0,
        end_wall_ms=1_000_030.0,
    )
    fragment.events.append(
        {"name": "scored", "at_wall_ms": 1_000_020.0, "attrs": {"hits": 3}}
    )
    report = stitch_trace(trace, [fragment])
    assert report.attached == 1
    assert report.orphans == 0
    assert report.nodes == {"peer-2"}
    assert report.skew_suspects == []
    (remote,) = chain.children
    assert remote.name == "serve:match-request"
    assert remote.attrs["remote"] is True
    assert remote.attrs["node"] == "peer-2"
    # Wall times mapped onto the client's trace clock via the anchor.
    assert remote.start_ms == pytest.approx(10.0)
    assert remote.end_ms == pytest.approx(30.0)
    assert remote.events[0].at_ms == pytest.approx(20.0)


def test_stitch_accepts_dict_fragments_as_shipped_by_telemetry():
    trace, chain = make_traced_query()
    doc = SpanFragment(
        "serve:store-request",
        "peer-1",
        trace_id="trace-1",
        parent_span_id=chain.span_id,
        start_wall_ms=1_000_001.0,
        end_wall_ms=1_000_002.0,
    ).to_dict()
    report = stitch_trace(trace, [doc])
    assert report.attached == 1
    assert chain.children[0].attrs["node"] == "peer-1"


def test_stitch_orphans_unknown_parents_under_root():
    trace, _chain = make_traced_query()
    orphan = SpanFragment(
        "serve:match-request",
        "peer-9",
        trace_id="trace-1",
        parent_span_id="no-such-span",
        start_wall_ms=1_000_005.0,
        end_wall_ms=1_000_006.0,
    )
    report = stitch_trace(trace, [orphan])
    assert report.attached == 1
    assert report.orphans == 1
    attached = trace.root.children[-1]
    assert attached.attrs["orphan"] is True


def test_stitch_flags_clock_skew_beyond_tolerance():
    trace, chain = make_traced_query()
    ahead = 100.0 + SKEW_TOLERANCE_MS  # chain window is [0, 50] trace-ms
    fragment = SpanFragment(
        "serve:match-request",
        "peer-5",
        trace_id="trace-1",
        parent_span_id=chain.span_id,
        start_wall_ms=1_000_000.0 + ahead,
        end_wall_ms=1_000_000.0 + ahead + 1.0,
    )
    report = stitch_trace(trace, [fragment])
    assert len(report.skew_suspects) == 1
    node, overshoot = report.skew_suspects[0]
    assert node == "peer-5"
    assert overshoot > SKEW_TOLERANCE_MS
    assert chain.children[0].attrs["clock_skew_ms"] == pytest.approx(
        overshoot
    )
    assert report.to_dict()["skew_suspects"][0]["node"] == "peer-5"


def test_format_trace_shows_remote_nodes_and_orphans():
    trace, chain = make_traced_query()
    stitch_trace(
        trace,
        [
            SpanFragment(
                "serve:match-request",
                "peer-2",
                trace_id="trace-1",
                parent_span_id=chain.span_id,
                start_wall_ms=1_000_010.0,
                end_wall_ms=1_000_030.0,
            ),
            SpanFragment(
                "serve:store-request",
                "peer-4",
                trace_id="trace-1",
                parent_span_id="gone",
                start_wall_ms=1_000_010.0,
                end_wall_ms=1_000_011.0,
            ),
        ],
    )
    text = format_trace(trace)
    assert "trace trace-1" in text
    assert "@peer-2" in text
    assert "orphan" in text
    assert "serve:match-request" in text


# -- telemetry snapshot merging ----------------------------------------------


def snapshot(requests: float, counts: list[int]) -> dict:
    return {
        "metrics": [
            {
                "name": "server.requests",
                "kind": "counter",
                "series": [
                    {"labels": {"kind": "match-request"}, "value": requests},
                    {"labels": {"kind": "hello"}, "value": 1.0},
                ],
            },
            {
                "name": "server.service_ms",
                "kind": "histogram",
                "edges": [1.0, 10.0, 100.0],
                "series": [
                    {
                        "labels": {"kind": "match-request"},
                        "count": sum(counts),
                        "sum": float(sum(counts)),
                        "max": 9.0,
                        "counts": counts,
                    }
                ],
            },
        ]
    }


def test_counter_total_and_series():
    snap = snapshot(5.0, [0, 0, 0, 0])
    assert counter_total(snap, "server.requests") == pytest.approx(6.0)
    series = counter_series(snap, "server.requests")
    assert series["kind=match-request"] == pytest.approx(5.0)
    assert series["kind=hello"] == pytest.approx(1.0)
    assert counter_total(snap, "no.such.metric") == 0.0


def test_merge_histograms_bucketwise_across_nodes():
    merged = merge_histogram_series(
        [snapshot(1.0, [1, 2, 0, 0]), snapshot(1.0, [0, 2, 4, 1])],
        "server.service_ms",
    )
    assert merged is not None
    assert merged["edges"] == [1.0, 10.0, 100.0]
    assert merged["counts"] == [1, 4, 4, 1]
    assert merged["count"] == 10
    assert merged["max"] == pytest.approx(9.0)


def test_merge_skips_nodes_with_mismatched_edges():
    odd = snapshot(1.0, [5, 0, 0, 0])
    odd["metrics"][1]["edges"] = [2.0, 20.0, 200.0]
    merged = merge_histogram_series(
        [snapshot(1.0, [1, 1, 1, 0]), odd], "server.service_ms"
    )
    assert merged is not None
    assert merged["counts"] == [1, 1, 1, 0]


def test_merge_returns_none_when_no_node_has_the_family():
    assert merge_histogram_series([{"metrics": []}], "x") is None
    assert histogram_quantiles(None) == {"p50": 0.0, "p95": 0.0, "p99": 0.0}


def test_bucket_quantile_reads_bucket_upper_edges():
    edges = [1.0, 10.0, 100.0]
    counts = [50, 40, 9, 1]  # overflow bucket holds the last 1%
    assert bucket_quantile(edges, counts, 0.5) == 1.0
    assert bucket_quantile(edges, counts, 0.9) == 10.0
    assert bucket_quantile(edges, counts, 0.95) == 100.0
    # Overflow reads as the last finite edge, not infinity.
    assert bucket_quantile(edges, counts, 1.0) == 100.0
    assert bucket_quantile(edges, [0, 0, 0, 0], 0.5) == 0.0


def test_cluster_histogram_summary_shape():
    summary = cluster_histogram(
        [snapshot(1.0, [8, 1, 1, 0])], "server.service_ms"
    )
    assert summary["p50"] == 1.0
    assert summary["count"] == 10
    assert summary["mean"] == pytest.approx(1.0)
    empty = cluster_histogram([], "server.service_ms")
    assert empty["count"] == 0 and empty["mean"] == 0.0


def test_load_skew_matches_health_gini_scale():
    assert load_skew({"a": 5.0, "b": 5.0, "c": 5.0}) == pytest.approx(0.0)
    assert load_skew({"a": 0.0, "b": 0.0, "c": 30.0}) > 0.5


def test_wall_ms_is_monotone_enough_to_order_fragments():
    a = wall_ms()
    b = wall_ms()
    assert b >= a
