"""End-to-end integration tests across subsystems."""

from __future__ import annotations

from repro import (
    AdaptivePaddingController,
    ClusteredRangeWorkload,
    Domain,
    IntRange,
    P2PDatabase,
    RangeSelectionSystem,
    SystemConfig,
    UniformRangeWorkload,
    medical_catalog,
)
from repro.metrics import QueryLog, fraction_fully_answered


class TestWarmupDynamics:
    """As the cache fills, hit quality improves — the system's raison d'être."""

    def test_recall_improves_over_time(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=100, seed=42))
        workload = UniformRangeWorkload(system.config.domain, 2000, seed=9)
        log = QueryLog()
        for query in workload:
            log.add(system.query(query))
        records = log.records
        early = [r.recall for r in records[100:400]]
        late = [r.recall for r in records[-300:]]
        assert sum(late) / len(late) > sum(early) / len(early)

    def test_clustered_workload_gets_near_perfect_recall(self):
        system = RangeSelectionSystem(
            SystemConfig(n_peers=100, seed=42, matcher="containment")
        )
        workload = ClusteredRangeWorkload(
            system.config.domain, 800, seed=3, n_clusters=4, jitter=5
        )
        log = QueryLog()
        for query in workload:
            log.add(system.query(query))
        recalls = log.recall_values()
        assert sum(recalls) / len(recalls) > 0.9

    def test_every_miss_is_cached_exactly_once(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=50, seed=8))
        queries = [IntRange(i * 10, i * 10 + 50) for i in range(20)]
        for query in queries:
            system.query(query)
        assert system.unique_partitions() == len(set(queries))
        # Re-running the same queries adds nothing new.
        for query in queries:
            system.query(query)
        assert system.unique_partitions() == len(set(queries))


class TestMessageEconomy:
    """The architecture's point: bounded messages instead of flooding."""

    def test_messages_per_query_bounded_by_l(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=200, seed=5))
        system.network.stats.reset()
        system.query(IntRange(100, 300))  # miss: l match requests + l stores
        assert system.network.stats.by_kind["match-request"] == 5
        assert system.network.stats.by_kind["store-request"] == 5
        system.network.stats.reset()
        system.query(IntRange(100, 300))  # exact hit: no stores
        assert system.network.stats.by_kind["match-request"] == 5
        assert "store-request" not in system.network.stats.by_kind

    def test_overlay_hops_logarithmic_not_linear(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=500, seed=5))
        result = system.query(IntRange(100, 300))
        # 5 lookups, each O(log 500) ~ 4.5: far below peer count.
        assert result.overlay_hops < 100


class TestDatabaseRoundTrip:
    def test_workload_of_sql_queries_reduces_source_load(self):
        catalog = medical_catalog(n_patients=500)
        system = RangeSelectionSystem(
            SystemConfig(
                n_peers=60,
                seed=12,
                accelerate=False,
                matcher="containment",
                domain=Domain("value", 0, 10**6),
            )
        )
        db = P2PDatabase(catalog, system)
        # Ten queries over overlapping age ranges around [30, 50].  Only
        # ranges with Jaccard similarity near 0.9+ are *expected* to reuse
        # the cache (the k=20, l=5 curve steps at 0.9); narrow subsets like
        # [35, 45] (similarity 0.52) correctly go to the source.
        cache_served = 0
        queries = [(30, 50), (30, 50), (31, 50), (30, 49), (32, 48),
                   (35, 45), (30, 50), (33, 47), (31, 49), (34, 46)]
        for low, high in queries:
            report = db.execute(
                f"SELECT name FROM Patient WHERE age BETWEEN {low} AND {high}"
            )
            assert report.coverage == 1.0
            if report.result.stats.leaf_origins["Patient"] == "cache":
                cache_served += 1
        # The cache must have absorbed a real share of the load: identical
        # repeats always hit, and at least one merely-similar range did too.
        assert catalog.source_accesses <= len(queries) - 3
        assert cache_served >= 3

    def test_results_always_respect_predicates(self):
        catalog = medical_catalog(n_patients=300)
        system = RangeSelectionSystem(
            SystemConfig(
                n_peers=30,
                seed=13,
                accelerate=False,
                domain=Domain("value", 0, 10**6),
            )
        )
        db = P2PDatabase(catalog, system)
        db.execute("SELECT age FROM Patient WHERE age BETWEEN 10 AND 90")
        result = db.execute("SELECT age FROM Patient WHERE age BETWEEN 40 AND 50")
        assert all(40 <= row[0] <= 50 for row in result.rows)


class TestAdaptiveLoop:
    def test_controller_converges_with_real_system(self):
        system = RangeSelectionSystem(
            SystemConfig(n_peers=100, seed=21, matcher="containment")
        )
        controller = AdaptivePaddingController(target_recall=0.8)
        workload = UniformRangeWorkload(system.config.domain, 1500, seed=33)
        log = QueryLog()
        for query in workload:
            result = system.query(query, padding=controller.padding)
            controller.observe(result.recall)
            log.add(result)
        assert 0.0 <= controller.padding <= 0.5
        late = log.recall_values(warmup_fraction=0.5)
        assert fraction_fully_answered(late) > 30.0


class TestChurnWithStorage:
    def test_ownership_consistent_after_static_membership_change(self):
        """After adding peers and rebuilding, lookups still resolve and the
        ring invariants hold (data migration is the application's job; the
        overlay must stay consistent)."""
        system = RangeSelectionSystem(SystemConfig(n_peers=50, seed=30))
        system.query(IntRange(100, 200))
        ring = system.ring
        for i in range(10):
            node = ring.add_node(f"late-joiner-{i}")
            system.stores[node.node_id] = type(
                next(iter(system.stores.values()))
            )(node.node_id)
            system.network.register(node.node_id, system._make_handler(node.node_id))
        ring.build()
        ring.check_invariants()
        result = system.query(IntRange(500, 600))
        assert result.peers_contacted >= 1


class TestDeterminism:
    def test_identical_configs_identical_outcomes(self):
        def run() -> list[float]:
            system = RangeSelectionSystem(SystemConfig(n_peers=60, seed=77))
            workload = UniformRangeWorkload(system.config.domain, 300, seed=7)
            return [system.query(q).recall for q in workload]

        assert run() == run()

    def test_seed_changes_outcomes(self):
        def run(seed: int) -> list[float]:
            system = RangeSelectionSystem(SystemConfig(n_peers=60, seed=seed))
            workload = UniformRangeWorkload(system.config.domain, 300, seed=7)
            return [system.query(q).recall for q in workload]

        assert run(1) != run(2)
