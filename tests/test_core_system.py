"""Tests for the range-selection system (the paper's query procedure)."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.errors import ConfigError
from repro.ranges.interval import IntRange


def make_system(**overrides) -> RangeSelectionSystem:
    defaults = dict(n_peers=30, seed=123)
    defaults.update(overrides)
    return RangeSelectionSystem(SystemConfig(**defaults))


class TestConfig:
    def test_defaults_match_paper(self):
        config = SystemConfig()
        assert (config.l, config.k) == (5, 20)
        assert config.id_bits == 32
        assert config.domain.low == 0 and config.domain.high == 1000

    def test_validation(self):
        with pytest.raises(ConfigError):
            SystemConfig(n_peers=0)
        with pytest.raises(ConfigError):
            SystemConfig(l=0)
        with pytest.raises(ConfigError):
            SystemConfig(padding=-0.1)
        with pytest.raises(ConfigError):
            SystemConfig(id_bits=0)
        with pytest.raises(ConfigError):
            SystemConfig(placement="middle")
        with pytest.raises(ConfigError):
            SystemConfig(max_partitions_per_peer=0)

    def test_describe(self):
        text = SystemConfig(padding=0.2).describe()
        assert "pad=20%" in text


class TestColdAndWarmQueries:
    def test_cold_query_misses_and_stores(self):
        system = make_system()
        result = system.query(IntRange(30, 50))
        assert result.matched is None
        assert result.stored
        assert result.similarity == 0.0 and result.recall == 0.0
        assert system.total_placements() == 5  # one per group

    def test_identical_repeat_is_exact(self):
        system = make_system()
        system.query(IntRange(30, 50))
        repeat = system.query(IntRange(30, 50))
        assert repeat.exact
        assert repeat.similarity == 1.0 and repeat.recall == 1.0
        assert not repeat.stored  # exact matches are not re-stored
        assert system.unique_partitions() == 1

    def test_similar_query_finds_partition(self):
        system = make_system()
        system.query(IntRange(30, 50))
        similar = system.query(IntRange(30, 49))
        assert similar.matched is not None
        assert similar.matched.range == IntRange(30, 50)
        assert similar.recall == 1.0
        assert not similar.exact

    def test_near_miss_still_stores_its_own_partition(self):
        system = make_system()
        system.query(IntRange(30, 50))
        system.query(IntRange(30, 49))
        # Both ranges are now stored (the second was inexact).
        assert system.unique_partitions() == 2

    def test_store_on_miss_disabled(self):
        system = make_system(store_on_miss=False)
        result = system.query(IntRange(30, 50))
        assert result.stored is False
        assert system.total_placements() == 0


class TestPadding:
    def test_config_padding_expands_hashed_query(self):
        system = make_system(padding=0.2)
        result = system.query(IntRange(100, 200))
        assert result.hashed_query == IntRange(100, 200).pad(
            0.2, lower_bound=0, upper_bound=1000
        )
        # The *padded* range is what gets stored.
        stored = {e.descriptor.range for s in system.stores.values()
                  for _, e in s.entries()}
        assert result.hashed_query in stored

    def test_per_query_padding_override(self):
        system = make_system()
        result = system.query(IntRange(100, 200), padding=0.5)
        assert result.hashed_query == IntRange(100, 200).pad(
            0.5, lower_bound=0, upper_bound=1000
        )

    def test_padded_partition_fully_answers_original(self):
        system = make_system(padding=0.2, matcher="containment")
        system.query(IntRange(100, 200))
        # Identical original range: padded cache entry contains it fully.
        again = system.query(IntRange(100, 200))
        assert again.recall == 1.0

    def test_padding_clamped_at_domain_edges(self):
        system = make_system(padding=0.5)
        result = system.query(IntRange(0, 100))
        assert result.hashed_query.start == 0
        assert result.hashed_query.end <= 1000


class TestRouting:
    def test_hops_counted(self):
        system = make_system(n_peers=100)
        result = system.query(IntRange(30, 50))
        assert result.overlay_hops > 0
        assert 1 <= result.peers_contacted <= 5

    def test_all_owners_agree_with_ring(self):
        system = make_system(n_peers=100)
        located = system.locate(IntRange(10, 40))
        for identifier, owner in zip(located.identifiers, located.owners):
            assert owner == system.ring.successor_of(system._place(identifier))

    def test_direct_placement_mode(self):
        system = make_system(placement="direct")
        located = system.locate(IntRange(10, 40))
        for identifier, owner in zip(located.identifiers, located.owners):
            assert owner == system.ring.successor_of(identifier)

    def test_placement_modes_share_bucket_semantics(self):
        """Under both placements, a repeat query is an exact hit."""
        for placement in ("rehash", "direct"):
            system = make_system(placement=placement)
            system.query(IntRange(200, 300))
            assert system.query(IntRange(200, 300)).exact


class TestMatchers:
    def test_containment_matcher_prefers_containing_partition(self):
        system = make_system(matcher="containment")
        # Store a broad partition and a close-but-clipping partition by
        # querying them (both will be cached).
        system.query(IntRange(95, 210))
        system.query(IntRange(100, 190))
        result = system.query(IntRange(100, 200))
        if result.matched is not None and result.matched.range == IntRange(95, 210):
            assert result.recall == 1.0

    def test_local_index_finds_matches_in_single_peer_system(self):
        system = make_system(n_peers=1, local_index=True, matcher="containment")
        system.query(IntRange(100, 200))
        hit = system.query(IntRange(120, 180))
        # One peer holds everything; the local index must see the stored
        # partition even though the identifiers differ.
        assert hit.matched is not None
        assert hit.recall == 1.0


class TestCountersAndIntrospection:
    def test_counters_track_queries(self):
        system = make_system()
        system.query(IntRange(1, 10))
        system.query(IntRange(1, 10))
        counters = system.counters
        assert counters.queries == 2
        assert counters.exact_hits == 1
        assert counters.misses == 1
        assert counters.stores == 1

    def test_load_distribution_sums_to_placements(self):
        system = make_system()
        for start in range(0, 500, 50):
            system.query(IntRange(start, start + 30))
        assert sum(system.load_distribution()) == system.total_placements()

    def test_exact_store_and_lookup(self):
        from repro.db.partition import Partition, PartitionDescriptor

        system = make_system()
        descriptor = PartitionDescriptor("D", "diagnosis='Glaucoma'", IntRange(0, 0))
        partition = Partition(descriptor=descriptor, rows=((1, "Glaucoma"),))
        assert system.exact_store(123456, descriptor, partition)
        fetched, hops = system.exact_lookup(123456)
        assert fetched is not None and fetched.rows == ((1, "Glaucoma"),)
        assert hops >= 0

    def test_exact_lookup_miss(self):
        system = make_system()
        fetched, _hops = system.exact_lookup(999)
        assert fetched is None
