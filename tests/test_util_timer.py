"""Tests for wall-clock timing helpers."""

from __future__ import annotations

import time

import pytest

from repro.util.timer import Timer, time_call


def test_timer_measures_elapsed_time():
    with Timer() as t:
        time.sleep(0.01)
    assert t.elapsed_ms >= 5.0


def test_timer_reusable():
    t = Timer()
    with t:
        pass
    first = t.elapsed_ms
    with t:
        time.sleep(0.005)
    assert t.elapsed_ms >= first


def test_time_call_averages():
    calls = []
    ms = time_call(lambda: calls.append(1), repeats=5)
    assert len(calls) == 5
    assert ms >= 0.0


def test_time_call_rejects_bad_repeats():
    with pytest.raises(ValueError):
        time_call(lambda: None, repeats=0)
