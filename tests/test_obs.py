"""Tests for the observability layer: metrics registry + query tracing."""

from __future__ import annotations

import json

import pytest

from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem, SystemCounters
from repro.metrics.latency import LatencyCollector, phase_percentiles
from repro.net.transport import TrafficStats
from repro.obs import (
    NULL_TRACE,
    Counter,
    HistogramMetric,
    LabeledCounterDict,
    MetricsRegistry,
    QueryTrace,
    Span,
)
from repro.ranges.interval import IntRange
from repro.sim.query import AsyncQueryEngine


class TestMetricsRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        first = registry.counter("queries")
        second = registry.counter("queries")
        assert first is second
        first.inc()
        assert second.total() == 1

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_labeled_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("messages")
        counter.inc(2, kind="match")
        counter.inc(3, kind="store")
        counter.inc(kind="match")
        assert counter.get(kind="match") == 3
        assert counter.get(kind="store") == 3
        assert counter.total() == 6

    def test_histogram_observe(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_ms")
        for value in (1.0, 5.0, 50.0):
            hist.observe(value, phase="route")
        assert hist.count(phase="route") == 3
        assert hist.mean(phase="route") == pytest.approx(56.0 / 3)

    def test_snapshot_and_json_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(4)
        registry.counter("b").inc(1, peer=9)
        registry.histogram("h").observe(3.0)
        parsed = json.loads(registry.to_json())
        names = {m["name"] for m in parsed["metrics"]}
        assert names == {"a", "b", "h"}
        lines = registry.to_jsonl().strip().splitlines()
        assert len(lines) == 3
        assert all(json.loads(line)["name"] for line in lines)

    def test_report_renders_all_sections(self):
        registry = MetricsRegistry()
        registry.counter("scalar").inc(2)
        registry.counter("labeled").inc(kind="x")
        registry.histogram("hist").observe(1.0)
        report = registry.report("Title")
        assert "Title" in report
        assert "scalar" in report
        assert "labeled{kind=x}" in report
        assert "hist" in report

    def test_reset_clears_values_keeps_metrics(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.reset()
        assert "c" in registry
        assert registry.counter("c").total() == 0


class TestLabeledCounterDict:
    def test_behaves_like_defaultdict_int(self):
        registry = MetricsRegistry()
        backing = registry.counter("by_kind")
        mapping = LabeledCounterDict(backing, "kind")
        assert mapping == {}
        mapping["match"] += 1
        mapping["match"] += 2
        assert mapping["match"] == 3
        assert mapping == {"match": 3}
        assert backing.get(kind="match") == 3


class TestRegistryBackedFacades:
    def test_traffic_stats_publishes_to_registry(self):
        registry = MetricsRegistry()
        stats = TrafficStats(registry=registry)
        stats.messages += 2
        stats.by_kind["match-request"] += 1
        assert registry.counter("net.messages").total() == 2
        assert registry.counter("net.messages_by_kind").get(
            kind="match-request"
        ) == 1

    def test_system_counters_share_system_registry(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=16, seed=3))
        system.query(IntRange(10, 30))
        assert system.metrics.counter("system.queries").total() == 1
        assert (
            system.metrics.counter("net.messages").total()
            == system.network.stats.messages
        )

    def test_standalone_counters_get_private_registry(self):
        a = SystemCounters()
        b = SystemCounters()
        a.queries += 1
        assert a.queries == 1
        assert b.queries == 0


class TestSpanAndTrace:
    def test_span_tree_and_events(self):
        trace = QueryTrace(query="[1, 2]")
        with trace.span("hash") as hash_span:
            hash_span.event("group", group=0, identifier=42)
        chain = trace.span("locate").span("chain", identifier=42)
        chain.event("route-hop", source=1, target=2, via="finger[3]")
        chain.end(owner=2)
        trace.end(matched=None)
        assert trace.ended
        assert len(trace.find("chain")) == 1
        assert chain.events_named("route-hop")[0].attrs["via"] == "finger[3]"
        assert chain.attrs["owner"] == 2

    def test_default_clock_is_monotonic_steps(self):
        trace = QueryTrace()
        first = trace.event("a")
        second = trace.event("b")
        assert second.at_ms > first.at_ms

    def test_end_is_idempotent(self):
        span = Span("s", clock=lambda: 5.0)
        span.end(x=1)
        end_ms = span.end_ms
        span.end(y=2)
        assert span.end_ms == end_ms
        assert span.attrs == {"x": 1, "y": 2}

    def test_null_trace_is_inert(self):
        assert not NULL_TRACE
        assert NULL_TRACE.span("anything") is NULL_TRACE
        assert NULL_TRACE.event("anything") is None
        with NULL_TRACE.span("ctx") as span:
            span.event("inside")

    def test_to_json_serializes(self):
        trace = QueryTrace()
        trace.span("hash").end()
        trace.end()
        parsed = json.loads(trace.to_json())
        assert parsed["name"] == "query"
        assert parsed["spans"][0]["name"] == "hash"


class TestSyncPathTracing:
    def test_full_lifecycle_recorded(self):
        system = RangeSelectionSystem(
            SystemConfig(n_peers=32, seed=7, l=4, k=4)
        )
        system.query(IntRange(10, 40))  # seed one partition
        trace = system.start_trace(IntRange(12, 38))
        result = system.query(IntRange(12, 38), trace=trace)
        assert trace.ended
        chains = trace.find("chain")
        assert len(chains) == system.config.l
        # Every chain records its route hop by hop with the routing edge.
        hops = sum(len(c.events_named("route-hop")) for c in chains)
        assert hops == result.overlay_hops
        for chain in chains:
            for event in chain.events_named("route-hop"):
                assert event.attrs["via"].startswith(("finger[", "successor"))
        # Every chain was answered and scored.
        assert all(len(c.events_named("match-reply")) == 1 for c in chains)
        # Hash span carries one group event per identifier.
        hash_span = trace.find("hash")[0]
        assert len(hash_span.events_named("group")) == system.config.l
        # Store-on-miss fan-out was traced.
        if result.stored:
            store = trace.find("store")[0]
            assert len(store.events_named("placement")) >= system.config.l
        assert trace.root.attrs["exact"] == result.exact
        json.loads(trace.to_json())

    def test_failover_recorded(self):
        system = RangeSelectionSystem(
            SystemConfig(n_peers=24, seed=5, replicas=2)
        )
        system.query(IntRange(10, 30))
        locate = system.locate(IntRange(10, 30))
        # Crash every answering owner, forcing failover on the next query.
        for owner in set(locate.owners):
            system.crash_peer(owner)
        trace = system.start_trace(IntRange(10, 30))
        system.query(IntRange(10, 30), trace=trace)
        events = [
            event
            for chain in trace.find("chain")
            for event in chain.events_named("failover")
        ]
        assert events, "expected at least one traced failover step"

    def test_untraced_query_unchanged(self):
        seed_cfg = SystemConfig(n_peers=24, seed=9)
        plain = RangeSelectionSystem(seed_cfg)
        traced = RangeSelectionSystem(seed_cfg)
        first = plain.query(IntRange(5, 25))
        trace = traced.start_trace(IntRange(5, 25))
        second = traced.query(IntRange(5, 25), trace=trace)
        assert first == second
        assert plain.network.stats.messages == traced.network.stats.messages
        assert plain.network.stats.latency_ms == pytest.approx(
            traced.network.stats.latency_ms
        )


class TestEventDrivenTracing:
    def test_full_lifecycle_recorded(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=32, seed=7))
        system.query(IntRange(10, 40))
        engine = AsyncQueryEngine(system, fetch_rows=True)
        trace = engine.start_trace(IntRange(12, 38))
        result = engine.run(IntRange(12, 38), trace=trace)
        assert trace.ended
        chains = trace.find("chain")
        assert len(chains) == system.config.l
        hops = sum(len(c.events_named("route-hop")) for c in chains)
        assert hops == sum(c.hops for c in result.chains)
        # The async transport's lifecycle shows up as net-* events.
        sends = [
            event
            for chain in chains
            for event in chain.events
            if event.name == "net-send"
        ]
        assert len(sends) >= len(chains)
        replies = [
            event
            for chain in chains
            for event in chain.events
            if event.name == "net-reply"
        ]
        assert replies and all(e.attrs["ms"] >= 0 for e in replies)
        if result.found:
            assert len(trace.find("fetch")) == 1
        if result.stored:
            store = trace.find("store")[0]
            assert len(store.events_named("placement")) >= system.config.l
        # Trace timestamps ride the virtual clock.
        assert trace.root.end_ms == pytest.approx(engine.sim.now)
        json.loads(trace.to_json())

    def test_timeout_and_retry_events(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=16, seed=11))
        system.query(IntRange(10, 30))
        engine = AsyncQueryEngine(system)
        locate = system.locate(IntRange(10, 30))
        for owner in set(locate.owners):
            engine.crash_peer(owner)
        trace = engine.start_trace(IntRange(10, 30))
        result = engine.run(IntRange(10, 30), trace=trace)
        assert result.timeouts > 0
        timeouts = [
            event
            for chain in trace.find("chain")
            for event in chain.events
            if event.name == "net-timeout"
        ]
        assert timeouts and all(e.attrs["waited_ms"] > 0 for e in timeouts)

    def test_engine_stats_reach_system_registry(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=16, seed=2))
        engine = AsyncQueryEngine(system)
        engine.run(IntRange(5, 15))
        assert (
            system.metrics.counter("sim.net.messages").total()
            == engine.net.stats.messages
        )


class TestLatencyCollectorRegistry:
    def test_phase_percentiles_empty_is_zero_row(self):
        summary = phase_percentiles([])
        assert summary.count == 0
        assert summary.p99 == 0.0

    def test_empty_collector_report_renders(self):
        collector = LatencyCollector()
        summary = collector.phase_summary()
        assert summary["total"].count == 0
        assert "total" in collector.report()

    def test_collector_feeds_histogram(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=16, seed=4))
        system.query(IntRange(5, 25))
        engine = AsyncQueryEngine(system)
        collector = LatencyCollector(registry=system.metrics)
        collector.add(engine.run(IntRange(5, 25)))
        hist = system.metrics.get("latency.phase_ms")
        assert hist.count(phase="total") == 1


class TestTimeSeriesMetric:
    def test_append_points_last_values(self):
        registry = MetricsRegistry()
        series = registry.timeseries("ts")
        series.append(0.0, 1.0, node=3)
        series.append(500.0, 2.0, node=3)
        series.append(0.0, 9.0, node=4)
        assert series.points(node=3) == [(0.0, 1.0), (500.0, 2.0)]
        assert series.last(node=3) == (500.0, 2.0)
        assert series.values(node=3) == [1.0, 2.0]
        assert series.points(node=99) == []
        assert series.last(node=99) is None
        assert len(series) == 2

    def test_capacity_evicts_oldest(self):
        registry = MetricsRegistry()
        series = registry.timeseries("ts", capacity=3)
        for t in range(5):
            series.append(float(t), float(t * 10))
        assert series.points() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]

    def test_invalid_capacity_raises(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.timeseries("ts", capacity=0)

    def test_get_or_create_and_kind_mismatch(self):
        registry = MetricsRegistry()
        first = registry.timeseries("ts")
        assert registry.timeseries("ts") is first
        with pytest.raises(ValueError):
            registry.counter("ts")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        series = registry.timeseries("ts", capacity=8)
        series.append(1.0, 2.0, node=1)
        doc = series.snapshot()
        assert doc["kind"] == "timeseries"
        assert doc["capacity"] == 8
        assert doc["series"] == [{"labels": {"node": 1}, "points": [[1.0, 2.0]]}]


class TestRegistryJsonRoundTrip:
    """snapshot() -> to_json() -> parse must reproduce snapshot() exactly."""

    def test_mixed_label_orders_address_one_series(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(1, a=1, b=2)
        counter.inc(2, b=2, a=1)  # same series, different kwarg order
        assert counter.get(a=1, b=2) == 3
        parsed = json.loads(registry.to_json())
        series = parsed["metrics"][0]["series"]
        assert len(series) == 1
        assert series[0]["value"] == 3

    def test_full_roundtrip_equals_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(4, peer=7)
        registry.counter("c").inc(1, peer=9)
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(3.0, phase="route")
        registry.timeseries("ts").append(0.0, 1.0, node=1)
        assert json.loads(registry.to_json()) == registry.snapshot()
        lines = registry.to_jsonl().strip().splitlines()
        assert [json.loads(line) for line in lines] == registry.snapshot()[
            "metrics"
        ]

    def test_empty_registry_roundtrip(self):
        registry = MetricsRegistry()
        assert json.loads(registry.to_json()) == {"metrics": []}
        assert registry.to_jsonl() == ""

    def test_cleared_metric_keeps_name_drops_series(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5, peer=1)
        registry.counter("c").clear()
        parsed = json.loads(registry.to_json())
        assert parsed["metrics"] == [
            {"name": "c", "kind": "counter", "help": "", "series": []}
        ]
