"""Tests for the simulated network transport."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import UnknownPeerError
from repro.net import (
    ConstantLatency,
    Message,
    SeededLatency,
    SimulatedNetwork,
    UniformLatency,
)


class TestMessage:
    def test_sequence_numbers_increase(self):
        a = Message(1, 2, "x")
        b = Message(1, 2, "x")
        assert b.seq > a.seq

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(1, 2, "x", size_bytes=-1)


class TestLatencyModels:
    def test_constant(self):
        assert ConstantLatency(5.0).sample_ms(1, 2) == 5.0
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)

    def test_uniform_within_bounds(self):
        model = UniformLatency(10, 20, np.random.default_rng(0))
        for _ in range(50):
            assert 10 <= model.sample_ms(1, 2) <= 20

    def test_uniform_validates_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(20, 10, np.random.default_rng(0))

    def test_seeded_is_pairwise_deterministic(self):
        a = SeededLatency(10, 100, seed=4)
        b = SeededLatency(10, 100, seed=4)
        # Same pair, same delay — regardless of how many samples were
        # drawn in between (no generator state).
        first = a.sample_ms(1, 2)
        for _ in range(5):
            a.sample_ms(3, 4)
        assert a.sample_ms(1, 2) == first
        assert b.sample_ms(1, 2) == first

    def test_seeded_stays_in_bounds_and_varies(self):
        model = SeededLatency(10, 100, seed=0)
        samples = {model.sample_ms(i, i + 1) for i in range(30)}
        assert all(10 <= s <= 100 for s in samples)
        assert len(samples) > 1

    def test_seeded_links_are_asymmetric(self):
        model = SeededLatency(10, 100, seed=0)
        assert model.sample_ms(1, 2) != model.sample_ms(2, 1)

    def test_seeded_validates_bounds(self):
        with pytest.raises(ValueError):
            SeededLatency(20, 10)


class TestSimulatedNetwork:
    def test_delivery_and_reply(self):
        net = SimulatedNetwork()
        net.register(7, lambda msg: ("echo", msg.payload))
        assert net.send(1, 7, "ping", payload=42) == ("echo", 42)

    def test_unknown_recipient_raises(self):
        with pytest.raises(UnknownPeerError):
            SimulatedNetwork().send(1, 99, "ping")

    def test_unregister(self):
        net = SimulatedNetwork()
        net.register(7, lambda msg: None)
        assert net.is_registered(7)
        net.unregister(7)
        assert not net.is_registered(7)
        with pytest.raises(UnknownPeerError):
            net.send(1, 7, "ping")

    def test_traffic_accounting(self):
        net = SimulatedNetwork(latency=ConstantLatency(2.0))
        net.register(7, lambda msg: None)
        net.register(8, lambda msg: None)
        net.send(1, 7, "a", size_bytes=100)
        net.send(1, 8, "a", size_bytes=50)
        net.send(7, 8, "b", size_bytes=10)
        stats = net.stats
        assert stats.messages == 3
        assert stats.bytes == 160
        assert stats.latency_ms == pytest.approx(6.0)
        assert stats.by_kind == {"a": 2, "b": 1}
        assert stats.sent_by_peer[1] == 2
        assert stats.received_by_peer[8] == 2

    def test_stats_reset(self):
        net = SimulatedNetwork()
        net.register(7, lambda msg: None)
        net.send(1, 7, "a")
        net.stats.reset()
        assert net.stats.messages == 0
        assert net.stats.by_kind == {}

    def test_peer_count(self):
        net = SimulatedNetwork()
        net.register(1, lambda m: None)
        net.register(2, lambda m: None)
        assert net.peer_count == 2

    def test_routing_hops_accrue_latency(self):
        stats = SimulatedNetwork().stats
        stats.record_routing_hops(3, latency_ms=12.0)
        assert stats.messages == 3
        assert stats.latency_ms == pytest.approx(12.0)
        with pytest.raises(ValueError):
            stats.record_routing_hops(1, latency_ms=-1.0)

    def test_charge_route_samples_every_edge(self):
        net = SimulatedNetwork(latency=ConstantLatency(4.0))
        total = net.charge_route((1, 5, 9, 2))
        assert total == pytest.approx(12.0)  # three edges
        assert net.stats.messages == 3
        assert net.stats.latency_ms == pytest.approx(12.0)
        assert net.stats.by_kind == {"route-hop": 3}

    def test_charge_route_of_trivial_path(self):
        net = SimulatedNetwork(latency=ConstantLatency(4.0))
        assert net.charge_route((7,)) == 0.0
        assert net.stats.messages == 0
