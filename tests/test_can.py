"""Tests for the CAN overlay: zones, joins, departures, routing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.network import CanOverlay
from repro.can.space import RESOLUTION, Zone, point_for_key, torus_distance
from repro.errors import ChordError, DuplicateNodeError, EmptyRingError
from repro.util.rng import derive_rng


def built_overlay(n: int, dimensions: int = 2, seed: int = 1) -> CanOverlay:
    overlay = CanOverlay(dimensions=dimensions)
    overlay.build(n, seed=seed)
    return overlay


class TestZone:
    def test_whole_space(self):
        zone = Zone.whole_space(2)
        assert zone.volume() == RESOLUTION**2
        assert zone.contains((0, 0))
        assert zone.contains((RESOLUTION - 1, RESOLUTION - 1))

    def test_invalid_extent(self):
        with pytest.raises(ChordError):
            Zone((10,), (10,))
        with pytest.raises(ChordError):
            Zone((0, 0), (RESOLUTION,))

    def test_split_halves_volume(self):
        zone = Zone.whole_space(2)
        lower, upper = zone.split()
        assert lower.volume() + upper.volume() == zone.volume()
        assert lower.volume() == upper.volume()

    def test_split_along_widest_axis(self):
        zone = Zone((0, 0), (RESOLUTION, RESOLUTION // 2))
        lower, upper = zone.split()
        assert lower.side(0) == RESOLUTION // 2  # axis 0 was widest
        assert lower.side(1) == RESOLUTION // 2

    def test_merge_roundtrip(self):
        zone = Zone.whole_space(2)
        lower, upper = zone.split()
        assert lower.is_mergeable_with(upper)
        assert lower.merge(upper) == zone

    def test_merge_rejects_non_rectangular_union(self):
        a = Zone((0, 0), (10, 10))
        b = Zone((10, 0), (20, 5))
        assert not a.is_mergeable_with(b)
        with pytest.raises(ChordError):
            a.merge(b)

    def test_abuts_side_sharing(self):
        a = Zone((0, 0), (10, 10))
        b = Zone((10, 0), (20, 10))
        corner = Zone((10, 10), (20, 20))
        assert a.abuts(b)
        assert not a.abuts(corner)  # corner contact is not neighbourhood

    def test_abuts_across_wrap(self):
        a = Zone((0, 0), (10, RESOLUTION))
        b = Zone((RESOLUTION - 10, 0), (RESOLUTION, RESOLUTION))
        assert a.abuts(b)

    def test_distance_zero_inside(self):
        zone = Zone((0, 0), (10, 10))
        assert zone.distance_to_point((5, 5)) == 0.0
        assert zone.distance_to_point((15, 5)) > 0.0

    def test_torus_distance(self):
        assert torus_distance(1, RESOLUTION - 1) == 2
        assert torus_distance(5, 5) == 0


class TestPointForKey:
    def test_deterministic(self):
        assert point_for_key(42, 2) == point_for_key(42, 2)

    def test_dimensionality(self):
        assert len(point_for_key(42, 3)) == 3

    def test_axes_independent(self):
        point = point_for_key(42, 2)
        assert point[0] != point[1]  # hashing includes the axis

    def test_invalid_dimensions(self):
        with pytest.raises(ChordError):
            point_for_key(42, 0)


class TestMembership:
    def test_bootstrap_owns_everything(self):
        overlay = CanOverlay(dimensions=2)
        node = overlay.bootstrap("first")
        assert node.total_volume() == RESOLUTION**2
        overlay.check_invariants()

    def test_join_splits_space(self):
        overlay = CanOverlay(dimensions=2)
        overlay.bootstrap("first")
        overlay.join("second")
        overlay.check_invariants()
        volumes = [n.total_volume() for n in overlay._nodes.values()]
        assert sum(volumes) == RESOLUTION**2

    def test_duplicate_address_rejected(self):
        overlay = CanOverlay(dimensions=2)
        overlay.bootstrap("first")
        with pytest.raises(DuplicateNodeError):
            overlay.join("first")

    def test_build_reaches_target_size(self):
        overlay = built_overlay(50)
        assert len(overlay) == 50
        overlay.check_invariants()

    def test_neighbors_symmetric_after_build(self):
        overlay = built_overlay(40)
        for nid in overlay.node_ids:
            for other in overlay.node(nid).neighbor_ids:
                assert nid in overlay.node(other).neighbor_ids


class TestRouting:
    def test_lookup_reaches_owner(self, rng):
        overlay = built_overlay(100)
        ids = overlay.node_ids
        for _ in range(200):
            key = int(rng.integers(0, 2**32))
            start = ids[int(rng.integers(len(ids)))]
            owner, hops = overlay.lookup(key, start_id=start)
            assert owner == overlay.owner_of(key)
            assert hops >= 0

    def test_owner_lookup_from_owner_is_free(self):
        overlay = built_overlay(30)
        key = 12345
        owner = overlay.owner_of(key)
        _, hops = overlay.lookup(key, start_id=owner)
        assert hops == 0

    def test_hops_scale_as_sqrt_for_2d(self):
        """CAN routing is O(d/4 * N^(1/d)); for d=2 that's ~sqrt(N)/2."""
        rng = derive_rng(5, "can-hops")
        means = {}
        for n in (25, 400):
            overlay = built_overlay(n, seed=3)
            ids = overlay.node_ids
            hops = []
            for _ in range(300):
                key = int(rng.integers(0, 2**32))
                start = ids[int(rng.integers(len(ids)))]
                hops.append(overlay.lookup(key, start_id=start)[1])
            means[n] = sum(hops) / len(hops)
        # 16x more nodes => ~4x more hops (allow generous slack).
        assert 2.0 < means[400] / means[25] < 8.0

    def test_empty_overlay_raises(self):
        with pytest.raises(EmptyRingError):
            CanOverlay().lookup(5)


class TestLeave:
    def test_leave_preserves_tiling(self):
        overlay = built_overlay(30)
        for victim in overlay.node_ids[:10]:
            overlay.leave(victim)
            overlay.check_invariants()
        assert len(overlay) == 20

    def test_leave_then_routing_still_works(self, rng):
        overlay = built_overlay(40)
        for victim in overlay.node_ids[:15]:
            overlay.leave(victim)
        ids = overlay.node_ids
        for _ in range(100):
            key = int(rng.integers(0, 2**32))
            start = ids[int(rng.integers(len(ids)))]
            owner, _hops = overlay.lookup(key, start_id=start)
            assert owner == overlay.owner_of(key)

    def test_cannot_remove_last_node(self):
        overlay = CanOverlay()
        overlay.bootstrap("only")
        with pytest.raises(ChordError):
            overlay.leave(overlay.node_ids[0])


class TestHigherDimensions:
    @given(st.integers(1, 4))
    @settings(max_examples=4, deadline=None)
    def test_any_dimension_tiles(self, dimensions):
        overlay = CanOverlay(dimensions=dimensions)
        overlay.build(12, seed=2)
        overlay.check_invariants()

    def test_3d_routing(self, rng):
        overlay = CanOverlay(dimensions=3)
        overlay.build(60, seed=4)
        ids = overlay.node_ids
        for _ in range(60):
            key = int(rng.integers(0, 2**32))
            start = ids[int(rng.integers(len(ids)))]
            owner, _ = overlay.lookup(key, start_id=start)
            assert owner == overlay.owner_of(key)
