"""Live-cluster drill: real processes, real sockets, real SIGKILL.

One five-peer cluster (r=3) is spawned once for the module and taken
through the full lifecycle the paper's fault model cares about: warm the
ring with store-on-miss queries, SIGKILL a non-owner replica mid-workload
(recall must survive via replica-chain failover), run anti-entropy repair
(the lost copies must be re-created), then gracefully remove another peer
(its entries must be handed off before it exits).
"""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.ranges.interval import IntRange
from repro.rpc.cluster import LocalCluster

PEERS = 5
QUERIES = [
    IntRange(100, 200),
    IntRange(250, 420),
    IntRange(500, 640),
    IntRange(700, 910),
]


def make_config() -> SystemConfig:
    return SystemConfig(n_peers=PEERS, replicas=3, seed=7)


def mean_recall(client) -> float:
    results = [client.query(query) for query in QUERIES]
    return sum(result.recall for result in results) / len(results)


def pick_kill_victim(client) -> str:
    """A peer that replicates — but does not own — the first query's
    first identifier, and is not the client's bootstrap peer."""
    system = client.system
    ring = system.router.ring
    bootstrap_node = next(
        node_id
        for node_id in ring.node_ids
        if system.endpoints[node_id] == client.bootstrap
    )
    for identifier in system.identifiers_for(QUERIES[0]):
        for replica in system.replica_owners(identifier)[1:]:
            if replica != bootstrap_node:
                return ring.node(replica).address
    raise AssertionError("no non-owner replica to kill")


@pytest.fixture(scope="module")
def drill():
    """Run the whole lifecycle once; tests assert on the observations."""
    observed = {}
    with LocalCluster(PEERS, make_config()) as cluster:
        with cluster.client() as client:
            # Warm: first pass stores (cold misses), second pass must hit.
            for query in QUERIES:
                client.query(query)
            observed["warm_recall"] = mean_recall(client)

            # Abrupt kill of a non-owner replica, mid-workload.
            victim = pick_kill_victim(client)
            cluster.kill(victim)
            observed["kill_victim"] = victim
            observed["kill_recall"] = mean_recall(client)
            observed["failovers"] = client.system.counters.failovers
            observed["failed_lookups"] = client.system.counters.failed_lookups

            # Anti-entropy repair restores the replication factor.
            observed["repair_copies"] = client.repair()

            # Graceful leave of another peer: hand-off, then exit.
            leaver = next(
                address
                for address in cluster.endpoints
                if cluster.alive(address)
                and cluster.endpoints[address] != client.bootstrap
            )
            observed["leave_moved"] = client.leave(leaver)
            cluster.processes[leaver].wait(timeout=10)
            observed["leaver"] = leaver
            observed["leaver_alive"] = cluster.alive(leaver)
            observed["members_after_leave"] = len(client.members)
            observed["leave_recall"] = mean_recall(client)
    return observed


def test_warm_queries_all_hit(drill):
    assert drill["warm_recall"] == pytest.approx(1.0)


def test_recall_survives_abrupt_kill(drill):
    assert drill["kill_recall"] >= drill["warm_recall"] - 1e-9
    assert drill["failovers"] > 0, "the kill was never failed over"
    assert drill["failed_lookups"] == 0


def test_repair_recreates_lost_copies(drill):
    assert drill["repair_copies"] > 0


def test_graceful_leave_hands_off_and_exits(drill):
    assert drill["leave_moved"] > 0
    assert not drill["leaver_alive"]
    # Only a graceful leave removes itself from the member map; the
    # SIGKILLed peer stays as a stale entry that lookups route around.
    assert drill["members_after_leave"] == PEERS - 1
    assert drill["leave_recall"] == pytest.approx(1.0)
