"""Live-cluster drills: real processes, real sockets, real SIGKILL.

Two module-scoped clusters:

- the **client-driven drill** (five peers, SWIM and server repair off)
  preserves the original contract — failures are survived by lookup
  failover and repaired only when a client asks;
- the **self-healing drill** (eight peers, SWIM and server repair on)
  exercises the ring's own immune system: a SIGKILL'd replica holder is
  detected, evicted from every member map, and re-replicated with the
  client idle; a SIGSTOP'd peer is suspected, refutes on SIGCONT, and
  rejoins without losing a single entry.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.config import SystemConfig
from repro.errors import ReproError
from repro.ranges.interval import IntRange
from repro.rpc import wire
from repro.rpc.cluster import LocalCluster

PEERS = 5
QUERIES = [
    IntRange(100, 200),
    IntRange(250, 420),
    IntRange(500, 640),
    IntRange(700, 910),
]


def make_config() -> SystemConfig:
    return SystemConfig(n_peers=PEERS, replicas=3, seed=7)


def mean_recall(client) -> float:
    results = [client.query(query) for query in QUERIES]
    return sum(result.recall for result in results) / len(results)


def pick_kill_victim(client) -> str:
    """A peer that replicates — but does not own — the first query's
    first identifier, and is not the client's bootstrap peer."""
    system = client.system
    ring = system.router.ring
    bootstrap_node = next(
        node_id
        for node_id in ring.node_ids
        if system.endpoints[node_id] == client.bootstrap
    )
    for identifier in system.identifiers_for(QUERIES[0]):
        for replica in system.replica_owners(identifier)[1:]:
            if replica != bootstrap_node:
                return ring.node(replica).address
    raise AssertionError("no non-owner replica to kill")


@pytest.fixture(scope="module")
def drill():
    """Run the whole lifecycle once; tests assert on the observations."""
    observed = {}
    # SWIM and server-side repair stay OFF here: this drill asserts the
    # client-driven behaviour (stale members survive a kill, repair only
    # happens when the client asks), which the self-healing loops would
    # otherwise race.
    with LocalCluster(
        PEERS, make_config(), swim_interval_ms=0.0, repair_interval_ms=0.0
    ) as cluster:
        with cluster.client() as client:
            # Warm: first pass stores (cold misses), second pass must hit.
            for query in QUERIES:
                client.query(query)
            observed["warm_recall"] = mean_recall(client)

            # Abrupt kill of a non-owner replica, mid-workload.
            victim = pick_kill_victim(client)
            cluster.kill(victim)
            observed["kill_victim"] = victim
            observed["kill_recall"] = mean_recall(client)
            observed["failovers"] = client.system.counters.failovers
            observed["failed_lookups"] = client.system.counters.failed_lookups

            # Anti-entropy repair restores the replication factor.
            observed["repair_copies"] = client.repair()

            # Graceful leave of another peer: hand-off, then exit.
            leaver = next(
                address
                for address in cluster.endpoints
                if cluster.alive(address)
                and cluster.endpoints[address] != client.bootstrap
            )
            observed["leave_moved"] = client.leave(leaver)
            cluster.processes[leaver].wait(timeout=10)
            observed["leaver"] = leaver
            observed["leaver_alive"] = cluster.alive(leaver)
            observed["members_after_leave"] = len(client.members)
            observed["leave_recall"] = mean_recall(client)
    return observed


def test_warm_queries_all_hit(drill):
    assert drill["warm_recall"] == pytest.approx(1.0)


def test_recall_survives_abrupt_kill(drill):
    assert drill["kill_recall"] >= drill["warm_recall"] - 1e-9
    assert drill["failovers"] > 0, "the kill was never failed over"
    assert drill["failed_lookups"] == 0


def test_repair_recreates_lost_copies(drill):
    assert drill["repair_copies"] > 0


def test_graceful_leave_hands_off_and_exits(drill):
    assert drill["leave_moved"] > 0
    assert not drill["leaver_alive"]
    # Only a graceful leave removes itself from the member map; with SWIM
    # off the SIGKILLed peer stays as a stale entry that lookups route
    # around.
    assert drill["members_after_leave"] == PEERS - 1
    assert drill["leave_recall"] == pytest.approx(1.0)


# -- distributed tracing drill: SIGKILL the owner mid-trace ------------------


def walk_span_docs(doc: dict):
    yield doc
    for child in doc.get("spans") or []:
        yield from walk_span_docs(child)


def event_names(span_doc: dict) -> set[str]:
    return {event.get("name") for event in span_doc.get("events") or []}


@pytest.fixture(scope="module")
def traced():
    """Distributed traces around an abrupt owner kill, client-driven.

    SWIM stays off so the membership mirror goes stale: the traced query
    after the kill *must* walk into the dead owner, eat the unreachable
    attempt, fail over down the successor list, and get its answer (and
    its server-side span) from a replica — all of which has to show up
    in one stitched tree.
    """
    observed = {}
    with LocalCluster(
        PEERS, make_config(), swim_interval_ms=0.0, repair_interval_ms=0.0
    ) as cluster:
        with cluster.client() as client:
            for query in QUERIES:
                client.query(query)

            # Healthy baseline: every server span stitches, no orphans.
            result, trace, report = client.query_traced(QUERIES[0])
            observed["healthy_recall"] = result.recall
            observed["healthy_doc"] = trace.to_dict()
            observed["healthy_attached"] = report.attached
            observed["healthy_nodes"] = set(report.nodes)
            observed["healthy_orphans"] = report.orphans

            # Kill the *owner* (rank 0) of one of the traced query's
            # identifiers — not the bootstrap, which the client needs.
            system = client.system
            ring = system.router.ring
            bootstrap_node = next(
                node_id
                for node_id in ring.node_ids
                if system.endpoints[node_id] == client.bootstrap
            )
            victim = next(
                ring.node(owner).address
                for identifier in system.identifiers_for(QUERIES[0])
                for owner in [system.replica_owners(identifier)[0]]
                if owner != bootstrap_node
            )
            cluster.kill(victim)
            observed["victim"] = victim

            result, trace, report = client.query_traced(QUERIES[0])
            observed["kill_recall"] = result.recall
            observed["kill_doc"] = trace.to_dict()
            observed["kill_attached"] = report.attached
            observed["kill_nodes"] = set(report.nodes)
    return observed


def test_healthy_traced_query_stitches_cleanly(traced):
    assert traced["healthy_recall"] == pytest.approx(1.0)
    assert traced["healthy_attached"] > 0
    assert traced["healthy_orphans"] == 0
    # A multi-process trace: client chain spans with remote children.
    chains = [
        span
        for span in walk_span_docs(traced["healthy_doc"])
        if span.get("name") == "chain"
    ]
    assert chains, "no client-side chain spans in the trace"
    remote_children = [
        child
        for chain in chains
        for child in chain.get("spans") or []
        if (child.get("attrs") or {}).get("remote")
    ]
    assert remote_children, "no server span stitched under a chain"


def test_traced_kill_shows_timeout_failover_and_replica_span(traced):
    # The answer still arrived (replica chain absorbed the kill)...
    assert traced["kill_recall"] >= traced["healthy_recall"] - 1e-9
    # ...and the stitched tree tells the whole story across processes:
    # server-side spans from at least two distinct surviving peers...
    assert traced["kill_attached"] > 0
    assert len(traced["kill_nodes"]) >= 2
    assert traced["victim"] not in traced["kill_nodes"]
    # ...including, on the chain that walked into the dead owner: the
    # unreachable attempt (the timeout), the failover edge, and the
    # replica's server-side span.
    failed_over = [
        span
        for span in walk_span_docs(traced["kill_doc"])
        if span.get("name") == "chain"
        and "failover" in event_names(span)
    ]
    assert failed_over, "no chain recorded a failover edge"
    assert any(
        "net-unreachable" in event_names(span) for span in failed_over
    ), "the dead owner's unreachable attempt never hit the trace"
    assert any(
        (child.get("attrs") or {}).get("remote")
        and (child.get("attrs") or {}).get("node") != traced["victim"]
        for span in failed_over
        for child in span.get("spans") or []
    ), "no replica server span stitched under the failed-over chain"


def test_dead_peer_contributes_no_fragments_only_its_absence(traced):
    # Fragment collection skipped the killed peer without erroring; its
    # absence from the node set *is* the observable.
    assert traced["victim"] not in traced["kill_nodes"]
    assert traced["kill_nodes"], "no surviving peer contributed fragments"


# -- self-healing drill: SWIM + server-driven repair -------------------------

HEAL_PEERS = 8
HEAL_REPLICAS = 3
#: Generous per-wave budget: detection needs ~1 failed probe round plus
#: the suspicion timeout (~4 s at the intervals below); CI runners jitter.
WAIT_S = 60.0


def rpc(cluster, address, kind, payload=None, timeout_ms=4000.0):
    """One raw control RPC straight at a peer (no client machinery)."""
    host, port = cluster.endpoints[address]
    return asyncio.run(
        wire.call(host, port, kind, payload, timeout_ms=timeout_ms)
    )


def live_set(cluster) -> set[str]:
    return {
        address
        for address in cluster.endpoints
        if cluster.alive(address) and address not in cluster.paused
    }


def member_mirror(cluster, address) -> set[str]:
    """The member map one peer serves (dead members excluded)."""
    return set(rpc(cluster, address, "hello")["members"])


def converged(cluster) -> bool:
    """Every live peer's member map equals the live process set."""
    live = live_set(cluster)
    for address in live:
        try:
            if member_mirror(cluster, address) != live:
                return False
        except ReproError:
            return False
    return True


def wait_for(predicate, what: str, timeout_s: float = WAIT_S) -> float:
    """Poll until ``predicate()`` holds; returns elapsed milliseconds."""
    started = time.monotonic()
    deadline = started + timeout_s
    while time.monotonic() < deadline:
        try:
            if predicate():
                return (time.monotonic() - started) * 1000.0
        except ReproError:
            pass  # a peer is mid-transition; poll again
        time.sleep(0.1)
    raise AssertionError(f"timed out after {timeout_s}s waiting for {what}")


def replication_met(cluster, replicas: int) -> bool:
    """Every stored identifier has >= min(r, live) copies on live peers."""
    live = live_set(cluster)
    copies: dict[int, int] = {}
    for address in live:
        for entry in rpc(cluster, address, "entries"):
            identifier = entry[0]
            copies[identifier] = copies.get(identifier, 0) + 1
    if not copies:
        return False
    wanted = min(replicas, len(live))
    return all(count >= wanted for count in copies.values())


def metric_points(snapshot: dict, name: str) -> list[dict]:
    for metric in snapshot.get("metrics", []):
        if metric.get("name") == name:
            return metric.get("series", [])
    return []


def counter_total(cluster, name: str) -> float:
    """Sum one counter across every live peer's metrics snapshot."""
    total = 0.0
    for address in live_set(cluster):
        snapshot = rpc(cluster, address, "metrics")
        for point in metric_points(snapshot, name):
            total += point.get("value", 0.0)
    return total


def histogram_stats(cluster, name: str) -> tuple[int, float]:
    """(total count, max) of one histogram across live peers."""
    count, peak = 0, 0.0
    for address in live_set(cluster):
        snapshot = rpc(cluster, address, "metrics")
        for point in metric_points(snapshot, name):
            count += int(point.get("count", 0))
            peak = max(peak, float(point.get("max", 0.0)))
    return count, peak


@pytest.fixture(scope="module")
def healing():
    """Kill + pause waves against a self-healing cluster; client idle."""
    observed = {}
    config = SystemConfig(n_peers=HEAL_PEERS, replicas=HEAL_REPLICAS, seed=11)
    with LocalCluster(
        HEAL_PEERS,
        config,
        swim_interval_ms=250.0,
        suspect_timeout_ms=2500.0,
        repair_interval_ms=400.0,
    ) as cluster:
        with cluster.client() as client:
            bootstrap = next(
                address
                for address, endpoint in cluster.endpoints.items()
                if endpoint == client.bootstrap
            )
            # Warm the ring, then let replication settle.
            for query in QUERIES:
                client.query(query)
            observed["warm_recall"] = mean_recall(client)
            wait_for(
                lambda: replication_met(cluster, HEAL_REPLICAS),
                "warm replication",
            )

            # --- kill wave: SIGKILL a replica-holding non-bootstrap peer.
            victim = next(
                address
                for address in sorted(live_set(cluster))
                if address != bootstrap and rpc(cluster, address, "entries")
            )
            observed["victim_entries"] = len(rpc(cluster, victim, "entries"))
            cluster.kill(victim)
            # The client stays idle: no queries, no client.repair().  The
            # polls below are read-only monitoring (hello/entries/metrics).
            observed["detect_ms"] = wait_for(
                lambda: converged(cluster),
                "the ring to evict the killed peer from every member map",
            )
            observed["repair_ms"] = observed["detect_ms"] + wait_for(
                lambda: replication_met(cluster, HEAL_REPLICAS),
                "server-driven re-replication",
            )
            observed["swim_dead"] = counter_total(cluster, "swim.dead")
            observed["swim_evicted"] = counter_total(cluster, "swim.evicted")
            observed["repair_copies"] = counter_total(
                cluster, "repair.push.copies"
            )
            observed["detect_hist"] = histogram_stats(cluster, "swim.detect_ms")
            client.refresh()
            observed["members_after_kill"] = len(client.members)
            observed["kill_recall"] = mean_recall(client)

            # --- pause wave: SIGSTOP -> suspected -> SIGCONT -> refuted.
            target = next(
                address
                for address in sorted(live_set(cluster))
                if address != bootstrap and rpc(cluster, address, "entries")
            )
            entries_before = sorted(
                entry[0] for entry in rpc(cluster, target, "entries")
            )
            suspected_before = counter_total(cluster, "swim.suspected")
            cluster.pause(target)
            wait_for(
                lambda: counter_total(cluster, "swim.suspected")
                > suspected_before,
                "some peer to suspect the paused peer",
            )
            cluster.resume(target)
            wait_for(
                lambda: converged(cluster),
                "the resumed peer to refute and rejoin every member map",
            )
            observed["pause_suspected"] = (
                counter_total(cluster, "swim.suspected") - suspected_before
            )
            entries_after = sorted(
                entry[0] for entry in rpc(cluster, target, "entries")
            )
            observed["pause_entries_kept"] = entries_after == entries_before
            observed["pause_entries_before"] = len(entries_before)
            client.refresh()
            observed["members_after_pause"] = len(client.members)
            observed["pause_recall"] = mean_recall(client)
    return observed


def test_killed_peer_is_detected_and_evicted_by_the_ring(healing):
    # Detection happened on the server side, with the client idle.
    assert healing["swim_dead"] > 0, "no peer confirmed the death"
    assert healing["swim_evicted"] > 0, "no peer merged the eviction"
    assert healing["members_after_kill"] == HEAL_PEERS - 1
    # Latency telemetry was recorded by the cluster's own histograms.
    detect_count, detect_max = healing["detect_hist"]
    assert detect_count >= 1
    assert detect_max > 0
    assert healing["detect_ms"] > 0


def test_lost_copies_are_re_replicated_without_a_client(healing):
    assert healing["victim_entries"] > 0, "victim held nothing to lose"
    assert healing["repair_copies"] > 0, "server repair pushed no copies"
    assert healing["repair_ms"] >= healing["detect_ms"]
    assert healing["kill_recall"] >= healing["warm_recall"] - 1e-9


def test_paused_peer_is_suspected_then_rejoins_with_entries(healing):
    assert healing["pause_suspected"] > 0, "SIGSTOP never raised suspicion"
    assert healing["pause_entries_before"] > 0
    assert healing["pause_entries_kept"], "entries lost across SIGSTOP"
    assert healing["members_after_pause"] == HEAL_PEERS - 1
    assert healing["pause_recall"] >= healing["warm_recall"] - 1e-9
