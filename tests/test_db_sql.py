"""Tests for the SQL lexer and parser."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.db.sql.ast import ColumnRef
from repro.db.sql.lexer import TokenKind, tokenize
from repro.db.sql.parser import parse_select
from repro.errors import SQLSyntaxError


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where and BETWEEN")
        assert [t.kind for t in tokens[:-1]] == [TokenKind.KEYWORD] * 5
        assert tokens[0].text == "SELECT"

    def test_identifiers_preserve_case(self):
        tokens = tokenize("Patient age_2")
        assert tokens[0].text == "Patient"
        assert tokens[1].text == "age_2"

    def test_numbers(self):
        tokens = tokenize("30 -5")
        assert tokens[0].kind is TokenKind.NUMBER and tokens[0].text == "30"
        assert tokens[1].text == "-5"

    def test_strings(self):
        tokens = tokenize("'Glaucoma'")
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == "Glaucoma"

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_operators_longest_match(self):
        tokens = tokenize("<= >= < > =")
        assert [t.text for t in tokens[:-1]] == ["<=", ">=", "<", ">", "="]

    def test_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("select @ from x")

    def test_end_token(self):
        assert tokenize("x")[-1].kind is TokenKind.END


class TestParserBasics:
    def test_star(self):
        stmt = parse_select("SELECT * FROM Patient")
        assert stmt.is_star
        assert stmt.relations == ("Patient",)

    def test_column_list(self):
        stmt = parse_select("SELECT name, Patient.age FROM Patient")
        assert stmt.columns == (
            ColumnRef(None, "name"),
            ColumnRef("Patient", "age"),
        )

    def test_multiple_relations(self):
        stmt = parse_select("SELECT * FROM Patient, Diagnosis")
        assert stmt.relations == ("Patient", "Diagnosis")

    def test_duplicate_relations_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT * FROM Patient, Patient")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT * FROM Patient garbage garbage")


class TestConditions:
    def test_comparison_column_first(self):
        stmt = parse_select("SELECT * FROM P WHERE age >= 30")
        (cmp,) = stmt.comparisons
        assert (cmp.column.name, cmp.op, cmp.literal.value) == ("age", ">=", 30)

    def test_comparison_literal_first_is_flipped(self):
        stmt = parse_select("SELECT * FROM P WHERE 30 <= age")
        (cmp,) = stmt.comparisons
        assert (cmp.column.name, cmp.op, cmp.literal.value) == ("age", ">=", 30)

    def test_between_expands_to_two_comparisons(self):
        stmt = parse_select("SELECT * FROM P WHERE age BETWEEN 30 AND 50")
        ops = [(c.op, c.literal.value) for c in stmt.comparisons]
        assert ops == [(">=", 30), ("<=", 50)]

    def test_string_equality(self):
        stmt = parse_select("SELECT * FROM D WHERE diagnosis = 'Glaucoma'")
        (cmp,) = stmt.comparisons
        assert cmp.literal.value == "Glaucoma"
        assert cmp.literal.kind == "str"

    def test_date_literal(self):
        stmt = parse_select("SELECT * FROM P WHERE date >= DATE '2000-01-01'")
        (cmp,) = stmt.comparisons
        assert cmp.literal.value == dt.date(2000, 1, 1)
        assert cmp.literal.kind == "date"

    def test_date_column_name_still_works(self):
        # "date" is both an attribute name and the literal prefix.
        stmt = parse_select(
            "SELECT * FROM P WHERE date BETWEEN DATE '2000-01-01' AND DATE '2001-01-01'"
        )
        assert stmt.comparisons[0].column.name == "date"

    def test_bad_date_literal(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT * FROM P WHERE date >= DATE 'not-a-date'")

    def test_join_condition(self):
        stmt = parse_select(
            "SELECT * FROM A, B WHERE A.x = B.y AND A.v >= 3"
        )
        (join,) = stmt.joins
        assert (str(join.left), str(join.right)) == ("A.x", "B.y")
        assert len(stmt.comparisons) == 1

    def test_non_equi_join_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT * FROM A, B WHERE A.x < B.y")

    def test_inequality_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT * FROM A WHERE x <> 3")

    def test_missing_literal(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT * FROM A WHERE x >=")


class TestPaperQuery:
    SQL = """
    Select Prescription.prescription
    from Patient, Diagnosis, Prescription
    where 30 <= age and age <= 50
    and diagnosis = 'Glaucoma'
    and Patient.patient_id = Diagnosis.patient_id
    and date between DATE '2000-01-01' and DATE '2002-12-31'
    and Diagnosis.prescription_id = Prescription.prescription_id
    """

    def test_full_parse(self):
        stmt = parse_select(self.SQL)
        assert stmt.relations == ("Patient", "Diagnosis", "Prescription")
        assert len(stmt.joins) == 2
        assert len(stmt.comparisons) == 5  # two age + one diagnosis + two date


class TestOrderByAndLimit:
    def test_order_by_single_key(self):
        stmt = parse_select("SELECT age FROM Patient ORDER BY age")
        (key,) = stmt.order_by
        assert key.column.name == "age" and key.ascending

    def test_order_by_desc_and_multiple_keys(self):
        stmt = parse_select(
            "SELECT * FROM P ORDER BY a DESC, P.b ASC, c"
        )
        directions = [(k.column.name, k.ascending) for k in stmt.order_by]
        assert directions == [("a", False), ("b", True), ("c", True)]

    def test_limit(self):
        stmt = parse_select("SELECT * FROM P LIMIT 5")
        assert stmt.limit == 5

    def test_order_by_with_limit_after_where(self):
        stmt = parse_select(
            "SELECT age FROM Patient WHERE age >= 30 ORDER BY age DESC LIMIT 3"
        )
        assert stmt.limit == 3
        assert not stmt.order_by[0].ascending

    def test_limit_rejects_garbage(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT * FROM P LIMIT x")

    def test_order_requires_by(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("SELECT * FROM P ORDER age")
