"""Tests for the analytic collision curves and parameter chooser."""

from __future__ import annotations

import pytest

from repro.lsh.theory import (
    collision_probability,
    expected_identical_fraction,
    group_match_probability,
    recommend_parameters,
    step_quality,
    threshold_similarity,
)


class TestCollisionProbability:
    def test_single_function(self):
        assert collision_probability(0.5, 1) == 0.5

    def test_group_power(self):
        assert collision_probability(0.9, 20) == pytest.approx(0.9**20)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            collision_probability(1.5, 3)
        with pytest.raises(ValueError):
            collision_probability(0.5, 0)


class TestGroupMatchProbability:
    def test_paper_parameters_make_a_step_at_09(self):
        """Paper: k=20, l=5 'reasonably estimate a step function with a
        step at 0.9'."""
        low = group_match_probability(0.6, 20, 5)
        mid = group_match_probability(0.9, 20, 5)
        high = group_match_probability(0.99, 20, 5)
        assert low < 0.001
        assert 0.3 < mid < 0.7  # the step is *at* 0.9
        assert high > 0.99

    def test_monotone_in_similarity(self):
        values = [group_match_probability(p / 20, 20, 5) for p in range(21)]
        assert values == sorted(values)

    def test_more_groups_raise_probability(self):
        assert group_match_probability(0.85, 20, 10) > group_match_probability(
            0.85, 20, 5
        )

    def test_more_functions_per_group_lower_probability(self):
        assert group_match_probability(0.85, 30, 5) < group_match_probability(
            0.85, 20, 5
        )

    def test_invalid_l(self):
        with pytest.raises(ValueError):
            group_match_probability(0.5, 5, 0)


class TestThreshold:
    def test_paper_parameters_threshold_near_09(self):
        t = threshold_similarity(20, 5)
        assert 0.85 < t < 0.93

    def test_half_probability_at_threshold(self):
        t = threshold_similarity(20, 5)
        assert group_match_probability(t, 20, 5) == pytest.approx(0.5)


class TestStepQuality:
    def test_paper_parameters_beat_naive_choices(self):
        paper = step_quality(20, 5, step_at=0.9)
        assert paper < step_quality(1, 1, step_at=0.9)
        assert paper < step_quality(2, 2, step_at=0.9)

    def test_quality_bounds(self):
        assert 0.0 <= step_quality(20, 5) <= 1.0

    def test_sample_validation(self):
        with pytest.raises(ValueError):
            step_quality(20, 5, samples=1)


class TestRecommendParameters:
    def test_recommendation_lands_near_paper_choice(self):
        """With the paper's ~100-function budget and a step at 0.9, the
        search should pick parameters whose threshold is near 0.9."""
        choice = recommend_parameters(step_at=0.9, max_total_functions=120)
        assert 0.85 <= choice.threshold <= 0.95
        assert choice.k * choice.l <= 120

    def test_respects_budget(self):
        choice = recommend_parameters(step_at=0.9, max_total_functions=10)
        assert choice.k * choice.l <= 10


class TestRepetitionEstimate:
    def test_matches_birthday_intuition(self):
        # 10k uniform draws from ~501k distinct ranges: about 1% repeats.
        frac = expected_identical_fraction(10_000, 501_501)
        assert 0.005 < frac < 0.02

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            expected_identical_fraction(-1, 10)
        with pytest.raises(ValueError):
            expected_identical_fraction(10, 0)
