"""Tests for schemas, attribute typing and the medical catalog."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.db.catalog import medical_catalog, medical_schema
from repro.db.schema import Attribute, AttrType, GlobalSchema, RelationSchema
from repro.errors import SchemaError
from repro.ranges.domain import Domain


AGE = Domain("age", 0, 120)


class TestAttribute:
    def test_orderable_needs_domain(self):
        with pytest.raises(SchemaError):
            Attribute("age", AttrType.INT)

    def test_string_cannot_have_domain(self):
        with pytest.raises(SchemaError):
            Attribute("name", AttrType.STRING, AGE)

    def test_int_encoding_validates_domain(self):
        attr = Attribute("age", AttrType.INT, AGE)
        assert attr.encode(30) == 30
        with pytest.raises(SchemaError):
            attr.encode("30")
        with pytest.raises(SchemaError):
            attr.encode(True)  # bool is not an int here

    def test_date_encoding_roundtrip(self):
        domain = Domain.for_dates("d", dt.date(2000, 1, 1), dt.date(2003, 1, 1))
        attr = Attribute("d", AttrType.DATE, domain)
        day = dt.date(2002, 6, 15)
        assert attr.decode(attr.encode(day)) == day

    def test_orderable_property(self):
        assert AttrType.INT.orderable
        assert AttrType.DATE.orderable
        assert not AttrType.STRING.orderable


class TestRelationSchema:
    def make(self) -> RelationSchema:
        return RelationSchema(
            "Patient",
            (
                Attribute("patient_id", AttrType.INT, Domain("pid", 0, 10**6)),
                Attribute("name", AttrType.STRING),
                Attribute("age", AttrType.INT, AGE),
            ),
        )

    def test_positions(self):
        schema = self.make()
        assert schema.position("age") == 2
        assert schema.attribute("name").type is AttrType.STRING

    def test_unknown_attribute(self):
        schema = self.make()
        with pytest.raises(SchemaError):
            schema.attribute("weight")
        with pytest.raises(SchemaError):
            schema.position("weight")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema(
                "R",
                (
                    Attribute("a", AttrType.STRING),
                    Attribute("a", AttrType.STRING),
                ),
            )

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ())

    def test_encode_row_roundtrip(self):
        schema = self.make()
        row = schema.encode_row({"patient_id": 1, "name": "n", "age": 30})
        assert row == (1, "n", 30)
        assert schema.decode_row(row) == {"patient_id": 1, "name": "n", "age": 30}

    def test_encode_row_missing_and_unknown(self):
        schema = self.make()
        with pytest.raises(SchemaError):
            schema.encode_row({"patient_id": 1, "name": "n"})
        with pytest.raises(SchemaError):
            schema.encode_row(
                {"patient_id": 1, "name": "n", "age": 30, "extra": 1}
            )


class TestGlobalSchema:
    def test_medical_schema_has_paper_relations(self):
        schema = medical_schema()
        for name in ("Patient", "Diagnosis", "Physician", "Prescription"):
            assert schema.has_relation(name)

    def test_unknown_relation(self):
        with pytest.raises(SchemaError):
            medical_schema().relation("Nurse")

    def test_duplicate_relations_rejected(self):
        r = RelationSchema("R", (Attribute("a", AttrType.STRING),))
        with pytest.raises(SchemaError):
            GlobalSchema((r, r))

    def test_relations_with_attribute(self):
        schema = medical_schema()
        hits = [r.name for r in schema.relations_with_attribute("age")]
        assert set(hits) == {"Patient", "Physician"}


class TestMedicalCatalog:
    def test_referential_consistency(self):
        catalog = medical_catalog(n_patients=100, n_physicians=5)
        patients = {
            row[0] for row in catalog.relation("Patient").scan()
        }
        prescriptions = {
            row[0] for row in catalog.relation("Prescription").scan()
        }
        for row in catalog.relation("Diagnosis").scan():
            assert row[0] in patients
            assert row[3] in prescriptions

    def test_sizes(self):
        catalog = medical_catalog(n_patients=50, n_physicians=7)
        assert len(catalog.relation("Patient")) == 50
        assert len(catalog.relation("Physician")) == 7
        assert len(catalog.relation("Diagnosis")) == 50
        assert len(catalog.relation("Prescription")) == 50

    def test_source_access_counter(self):
        from repro.db.predicates import EqualityPredicate

        catalog = medical_catalog(n_patients=10)
        assert catalog.source_accesses == 0
        catalog.fetch_from_source(
            EqualityPredicate("Diagnosis", "diagnosis", "Glaucoma")
        )
        assert catalog.source_accesses == 1

    def test_relation_names(self):
        catalog = medical_catalog(n_patients=5)
        assert catalog.relation_names == [
            "Diagnosis",
            "Patient",
            "Physician",
            "Prescription",
        ]
