"""The SWIM membership state machine: precedence, refutation, tombstones.

Pure state-machine tests — no sockets, caller-supplied clocks — covering
the merge rules everything else leans on: incarnation precedence,
dead > suspect > alive at equal incarnations, self-accusation refutation,
tombstone resurrection, and the graceful-leave self-declared death.
"""

from __future__ import annotations

from repro.rpc.swim import ALIVE, DEAD, SUSPECT, MembershipTable


def table_of(*addresses: str) -> MembershipTable:
    table = MembershipTable("a", "127.0.0.1", 1000)
    for index, address in enumerate(addresses):
        if address != "a":
            table.add(address, "127.0.0.1", 1001 + index)
    return table


def test_self_is_alive_at_incarnation_zero():
    table = table_of("a")
    assert table.state_of("a") == ALIVE
    assert table.incarnation == 0


def test_add_and_remove_track_epoch():
    table = table_of("a")
    epoch = table.epoch
    assert table.add("b", "127.0.0.1", 1001)
    assert table.epoch == epoch + 1
    assert not table.add("b", "127.0.0.1", 1002)  # endpoint refresh only
    assert table.get("b").port == 1002
    table.remove("b")
    assert table.get("b") is None


def test_suspect_then_confirm_alive_round_trips():
    table = table_of("a", "b")
    assert table.suspect("b", now_ms=100.0)
    assert table.state_of("b") == SUSPECT
    assert not table.suspect("b", now_ms=101.0)  # already suspect
    assert table.confirm_alive("b")
    assert table.state_of("b") == ALIVE
    assert table.get("b").suspected_at is None


def test_expired_suspects_age_on_the_local_clock():
    table = table_of("a", "b", "c")
    table.suspect("b", now_ms=100.0)
    table.suspect("c", now_ms=900.0)
    assert table.expired_suspects(now_ms=1200.0, timeout_ms=1000.0) == ["b"]


def test_confirm_dead_tombstones_and_excludes_from_endpoints():
    table = table_of("a", "b")
    assert table.confirm_dead("b")
    assert table.state_of("b") == DEAD
    assert "b" not in table.endpoints()
    assert "b" in table.members  # the tombstone is kept
    assert not table.confirm_dead("b")  # idempotent
    assert not table.confirm_dead("a")  # never self


def test_rejoin_after_death_bumps_incarnation():
    table = table_of("a", "b")
    table.confirm_dead("b")
    dead_incarnation = table.get("b").incarnation
    assert table.add("b", "127.0.0.1", 2001)
    assert table.state_of("b") == ALIVE
    assert table.get("b").incarnation == dead_incarnation + 1


def test_merge_adopts_unknown_members():
    table = table_of("a")
    outcome = table.merge(
        {"epoch": 5, "members": {"b": ["127.0.0.1", 1001, ALIVE, 0]}},
        now_ms=0.0,
    )
    assert outcome.changed and outcome.joined == ["b"]
    assert table.state_of("b") == ALIVE
    assert table.epoch >= 5


def test_merge_equal_incarnation_precedence_dead_beats_suspect_beats_alive():
    table = table_of("a", "b")
    # alive(0) -> suspect(0): accepted (higher rank at equal incarnation).
    out = table.merge(
        {"epoch": 0, "members": {"b": ["127.0.0.1", 1001, SUSPECT, 0]}},
        now_ms=50.0,
    )
    assert out.changed and table.state_of("b") == SUSPECT
    assert table.get("b").suspected_at == 50.0  # aged on our clock
    # suspect(0) -> alive(0): stale, refused.
    out = table.merge(
        {"epoch": 0, "members": {"b": ["127.0.0.1", 1001, ALIVE, 0]}},
        now_ms=60.0,
    )
    assert not out.changed and table.state_of("b") == SUSPECT
    # suspect(0) -> dead(0): accepted, reported as an eviction.
    out = table.merge(
        {"epoch": 0, "members": {"b": ["127.0.0.1", 1001, DEAD, 0]}},
        now_ms=70.0,
    )
    assert out.evicted == ["b"] and table.state_of("b") == DEAD


def test_merge_higher_incarnation_beats_any_state():
    table = table_of("a", "b")
    table.confirm_dead("b")
    # dead(0) -> alive(1): the member refuted; that is a resurrection.
    out = table.merge(
        {"epoch": 0, "members": {"b": ["127.0.0.1", 1001, ALIVE, 1]}},
        now_ms=0.0,
    )
    assert out.joined == ["b"]
    assert table.state_of("b") == ALIVE
    # alive(1) -> dead(0): stale gossip cannot resurrect the tombstone.
    out = table.merge(
        {"epoch": 0, "members": {"b": ["127.0.0.1", 1001, DEAD, 0]}},
        now_ms=0.0,
    )
    assert not out.changed and table.state_of("b") == ALIVE


def test_merge_self_accusation_triggers_refutation():
    table = table_of("a", "b")
    out = table.merge(
        {"epoch": 0, "members": {"a": ["127.0.0.1", 1000, SUSPECT, 0]}},
        now_ms=0.0,
    )
    assert out.refuted
    assert table.state_of("a") == ALIVE
    assert table.incarnation == 1  # bumped past the accusation
    # A stale accusation below our incarnation is ignored.
    out = table.merge(
        {"epoch": 0, "members": {"a": ["127.0.0.1", 1000, DEAD, 0]}},
        now_ms=0.0,
    )
    assert not out.refuted and table.incarnation == 1


def test_refute_reannounces_alive_at_higher_incarnation():
    table = table_of("a")
    assert table.refute() == 1
    assert table.refute() == 2
    assert table.state_of("a") == ALIVE


def test_depart_declares_self_dead():
    table = table_of("a", "b")
    table.depart()
    assert table.state_of("a") == DEAD
    assert "a" not in table.endpoints()
    # The departure gossips as an ordinary death record.
    payload = table.payload()
    other = MembershipTable("b", "127.0.0.1", 1001)
    other.add("a", "127.0.0.1", 1000)
    outcome = other.merge(payload, now_ms=0.0)
    assert "a" in outcome.evicted
    assert other.state_of("a") == DEAD


def test_payload_replace_round_trip():
    table = table_of("a", "b", "c")
    table.suspect("b", now_ms=10.0)
    mirror = MembershipTable("c", "127.0.0.1", 9999)
    mirror.replace(table.payload())
    assert set(mirror.members) == {"a", "b", "c"}
    assert mirror.state_of("b") == SUSPECT
    # The joiner keeps (or adopts) its own record.
    assert mirror.get("c") is not None


def test_merge_ignores_unknown_states_and_keeps_epoch_monotonic():
    table = table_of("a", "b")
    epoch = table.epoch
    out = table.merge(
        {"epoch": 0, "members": {"b": ["127.0.0.1", 1001, "zombie", 9]}},
        now_ms=0.0,
    )
    assert not out.changed
    assert table.epoch == epoch
    table.merge({"epoch": 99, "members": {}}, now_ms=0.0)
    assert table.epoch == 99


def test_peers_and_addresses_views():
    table = table_of("a", "b", "c")
    table.confirm_dead("c")
    assert sorted(table.addresses(ALIVE)) == ["a", "b"]
    assert table.peers(ALIVE) == ["b"]
    assert table.peers(DEAD) == ["c"]
    assert sorted(table.peers()) == ["b", "c"]
