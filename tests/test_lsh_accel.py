"""Tests for the accelerated (RMQ) identifier computation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DomainError, HashFamilyError
from repro.lsh import (
    ApproxMinWiseFamily,
    DomainMinHashIndex,
    LinearFamily,
    LSHIdentifierScheme,
    MinWiseFamily,
)
from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange

DOMAIN = Domain("value", 0, 400)


def build_index(family, l=3, k=4, seed=8):
    scheme = LSHIdentifierScheme.from_family(family, l=l, k=k, seed=seed)
    return DomainMinHashIndex(scheme, DOMAIN)


class TestEquivalence:
    @pytest.mark.parametrize(
        "family", [MinWiseFamily(), ApproxMinWiseFamily(), LinearFamily()]
    )
    def test_matches_naive_on_probes(self, family):
        index = build_index(family)
        probes = [
            IntRange(0, 400),
            IntRange(0, 0),
            IntRange(400, 400),
            IntRange(37, 255),
            IntRange(100, 101),
        ]
        DomainMinHashIndex.validate_against_scheme(index, probes)

    @given(st.tuples(st.integers(0, 400), st.integers(0, 400)))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive_property(self, endpoints):
        index = _CACHED_INDEX
        r = IntRange(min(endpoints), max(endpoints))
        assert index.identifiers(r) == index.scheme.identifiers(r)

    def test_validate_raises_on_divergence(self):
        index = build_index(LinearFamily())
        # Corrupt the sparse table to force a divergence.
        index._levels[0][0, 0] ^= 1
        with pytest.raises(HashFamilyError):
            DomainMinHashIndex.validate_against_scheme(index, [IntRange(0, 0)])


class TestBoundaries:
    def test_rejects_out_of_domain(self):
        index = build_index(LinearFamily())
        with pytest.raises(DomainError):
            index.identifiers(IntRange(0, 401))

    def test_memory_accounting_positive(self):
        index = build_index(LinearFamily())
        assert index.memory_bytes() > 0

    def test_minhashes_group_major_layout(self):
        index = build_index(LinearFamily(), l=2, k=3)
        r = IntRange(10, 20)
        values = index.minhashes(r)
        assert values.shape == (6,)
        fns = index.scheme.all_functions()
        assert [int(v) for v in values] == [fn.hash_range(r) for fn in fns]


# Module-level index shared by the hypothesis test (building per example
# would dominate the runtime).
_CACHED_INDEX = build_index(ApproxMinWiseFamily())
