"""Live-server durability: restart recovery, paged entries, data dirs.

In-process counterparts of the CLI restart drills: a
:class:`~repro.rpc.server.PeerServer` with a ``data_dir`` must come back
from disk with its store intact (and say so in its restore counters),
the ``entries`` bulk RPC must page instead of blowing the wire frame
cap, and a :class:`~repro.rpc.cluster.LocalCluster` must not leak the
per-node data directories it created.
"""

from __future__ import annotations

import asyncio
import os
import struct

import pytest

from repro.core.config import SystemConfig
from repro.db.partition import PartitionDescriptor
from repro.errors import ReproError
from repro.obs.distributed import counter_total
from repro.ranges.interval import IntRange
from repro.rpc import wire
from repro.rpc.client import ClusterClient
from repro.rpc.cluster import LocalCluster
from repro.rpc.server import PeerServer
from repro.storage.wal import PeerDurability

SEED = 1707


def desc(start: int, end: int) -> PartitionDescriptor:
    return PartitionDescriptor("R", "value", IntRange(start, end))


@pytest.fixture()
def loop():
    loop = asyncio.new_event_loop()
    yield loop
    loop.close()


def boot(loop, *, data_dir=None) -> PeerServer:
    server = PeerServer(
        "peer-0",
        SystemConfig(n_peers=1, seed=SEED, replicas=1),
        data_dir=data_dir,
    )
    loop.run_until_complete(server.start())
    return server


class TestServerRestartRecovery:
    def test_store_survives_a_restart_from_disk(self, loop, tmp_path):
        data_dir = str(tmp_path / "peer-0")
        server = boot(loop, data_dir=data_dir)
        try:
            client = ClusterClient((server.host, server.port), loop=loop)
            for low in (100, 300, 500, 700):
                client.query(IntRange(low, low + 50))
            stored = server.store.partition_count
            assert stored > 0
            before = sorted(
                (identifier, entry.descriptor)
                for identifier, entry in server.store.entries()
            )
        finally:
            loop.run_until_complete(server.close())

        reborn = boot(loop, data_dir=data_dir)
        try:
            after = sorted(
                (identifier, entry.descriptor)
                for identifier, entry in reborn.store.entries()
            )
            assert after == before
            snapshot = reborn.metrics.snapshot()
            assert counter_total(snapshot, "restore.entries") == stored
            assert counter_total(snapshot, "restore.torn_records") == 0
            # A re-queried range hits the recovered entry exactly.
            client = ClusterClient((reborn.host, reborn.port), loop=loop)
            assert client.query(IntRange(100, 150)).exact
        finally:
            loop.run_until_complete(reborn.close())

    def test_restart_tolerates_a_torn_wal_tail(self, loop, tmp_path):
        data_dir = tmp_path / "peer-0"
        server = boot(loop, data_dir=str(data_dir))
        try:
            client = ClusterClient((server.host, server.port), loop=loop)
            for low in (100, 300, 500):
                client.query(IntRange(low, low + 50))
            stored = server.store.partition_count
        finally:
            loop.run_until_complete(server.close())

        wal = data_dir / PeerDurability.WAL_NAME
        with open(wal, "ab") as handle:  # SIGKILL mid-append
            handle.write(struct.pack("!I", 4096) + b"torn")

        reborn = boot(loop, data_dir=str(data_dir))
        try:
            snapshot = reborn.metrics.snapshot()
            assert counter_total(snapshot, "restore.entries") == stored
            assert counter_total(snapshot, "restore.torn_records") == 1
            assert reborn.store.partition_count == stored
        finally:
            loop.run_until_complete(reborn.close())

    def test_incarnation_rises_across_restarts(self, loop, tmp_path):
        data_dir = str(tmp_path / "peer-0")
        server = boot(loop, data_dir=data_dir)
        first = server.table.incarnation
        loop.run_until_complete(server.close())
        reborn = boot(loop, data_dir=data_dir)
        second = reborn.table.incarnation
        loop.run_until_complete(reborn.close())
        # The rejoin must beat any tombstone from the previous life.
        assert second > first

    def test_no_data_dir_means_no_durability(self, loop):
        server = boot(loop)
        try:
            assert server.durability is None
            assert server.store.mutation_hook is None
            assert counter_total(
                server.metrics.snapshot(), "restore.entries"
            ) == 0
        finally:
            loop.run_until_complete(server.close())


class TestEntriesPaging:
    N_ENTRIES = 300

    def test_chunked_entries_survive_a_small_frame_cap(
        self, loop, monkeypatch
    ):
        server = boot(loop)
        try:
            for i in range(self.N_ENTRIES):
                server.store.store(i, desc(i * 10, i * 10 + 9))
            client = ClusterClient((server.host, server.port), loop=loop)

            page = client.call("peer-0", "entries", {"offset": 10, "limit": 5})
            assert page["total"] == self.N_ENTRIES
            assert len(page["entries"]) == 5

            # With a frame cap smaller than the full entry list, the
            # legacy single-frame reply dies on the wire...
            monkeypatch.setattr(wire, "MAX_FRAME_BYTES", 8 * 1024)
            full_reply = wire.encode_value([
                (identifier, entry.descriptor, entry.partition, entry.primary)
                for identifier, entry in server.store.entries()
            ])
            assert len(str(full_reply)) > wire.MAX_FRAME_BYTES
            with pytest.raises(ReproError):
                client.call("peer-0", "entries")
            # ...while the paged iterator streams every record through.
            records = client.entries_of("peer-0", page_size=32)
            assert len(records) == self.N_ENTRIES
            assert {record[0] for record in records} == set(
                range(self.N_ENTRIES)
            )
        finally:
            loop.run_until_complete(server.close())

    def test_legacy_none_payload_still_returns_full_list(self, loop):
        server = boot(loop)
        try:
            for i in range(5):
                server.store.store(i, desc(i * 10, i * 10 + 9))
            client = ClusterClient((server.host, server.port), loop=loop)
            records = client.call("peer-0", "entries")
            assert isinstance(records, list) and len(records) == 5
        finally:
            loop.run_until_complete(server.close())


class TestChaosRestart:
    def test_spec_accepts_restart(self):
        from repro.rpc.chaos import ChaosSchedule

        assert ChaosSchedule.parse_spec("restart=2,kill=1") == {
            "restart": 2, "kill": 1,
        }

    def test_restart_schedules_a_kill_then_restart_pair(self):
        from repro.rpc.chaos import ChaosSchedule

        peers = [f"peer-{i}" for i in range(4)]
        schedule = ChaosSchedule.generate(
            7, peers, {"restart": 1},
            restart_hold_s=2.5, protect=("peer-0",),
        )
        kills = [e for e in schedule.events if e.action == "kill"]
        restarts = [e for e in schedule.events if e.action == "restart"]
        assert len(kills) == 1 and len(restarts) == 1
        assert kills[0].targets == restarts[0].targets
        assert restarts[0].targets[0] != "peer-0"  # bootstrap protected
        assert restarts[0].at_s == pytest.approx(kills[0].at_s + 2.5)

    def test_same_seed_same_schedule(self):
        from repro.rpc.chaos import ChaosSchedule

        peers = [f"peer-{i}" for i in range(5)]
        counts = {"restart": 2, "kill": 1}
        first = ChaosSchedule.generate(11, peers, counts)
        second = ChaosSchedule.generate(11, peers, counts)
        assert first.events == second.events


class TestClusterDataDirs:
    def test_owned_temp_root_is_removed_on_shutdown(self):
        cluster = LocalCluster(1, durable=True)
        root = cluster.data_root
        assert root is not None and os.path.isdir(root)
        assert os.path.basename(root).startswith("repro-cluster-")
        cluster.shutdown()
        assert not os.path.exists(root)

    def test_owned_temp_root_is_removed_on_exception(self):
        with pytest.raises(RuntimeError):
            with LocalCluster(1, durable=True) as cluster:
                root = cluster.data_root
                raise RuntimeError("drill gone wrong")
        assert not os.path.exists(root)

    def test_explicit_data_root_is_left_in_place(self, tmp_path):
        root = tmp_path / "cluster-state"
        root.mkdir()
        cluster = LocalCluster(1, data_root=str(root))
        assert cluster.data_root == str(root)
        cluster.shutdown()
        assert root.is_dir()  # the caller owns it; harness must not delete

    def test_plain_cluster_has_no_data_root(self):
        cluster = LocalCluster(1)
        assert cluster.data_root is None
        cluster.shutdown()
