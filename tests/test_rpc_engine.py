"""Cross-transport equivalence: one engine, three transports.

The paper's query procedure is implemented once
(:class:`repro.rpc.engine.QueryEngine`); the synchronous, discrete-event
and socket paths differ only in their :class:`~repro.rpc.transports.Transport`.
With zero faults and a fixed seed, the same workload through all three
must produce identical result sets, identical system counters and
identical trace span shapes — any divergence means a transport leaked
semantics into the procedure.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.chord.hashing import node_id_for_address
from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.ranges.interval import IntRange
from repro.rpc.client import ClusterClient
from repro.rpc.server import PeerServer
from repro.sim.query import AsyncQueryEngine

N_PEERS = 12
SEED = 2003
ADDRESSES = [f"peer-{i}" for i in range(N_PEERS)]

# A short workload with re-queries, so cold misses, exact hits and
# near-miss approximate matches all occur.
QUERIES = [
    IntRange(100, 200),
    IntRange(100, 200),
    IntRange(100, 199),
    IntRange(400, 600),
    IntRange(402, 600),
]
ORIGIN_ADDRESSES = ["peer-0", "peer-3", "peer-7", "peer-1", "peer-9"]


def make_config() -> SystemConfig:
    return SystemConfig(n_peers=N_PEERS, seed=SEED, replicas=2)


def origins() -> list[int]:
    return [node_id_for_address(address, 32) for address in ORIGIN_ADDRESSES]


def outcome_row(matched, exact, stored, similarity, recall):
    return (
        str(matched) if matched is not None else None,
        bool(exact),
        bool(stored),
        pytest.approx(similarity),
        pytest.approx(recall),
    )


def span_shape(span_dict: dict) -> tuple:
    """A span's comparable shape: name, event names, child shapes."""
    return (
        span_dict["name"],
        tuple(event["name"] for event in span_dict["events"]),
        tuple(span_shape(child) for child in span_dict["spans"]),
    )


def trace_shape(trace) -> tuple:
    document = trace.to_dict()
    root = document.get("root", document)
    return span_shape(root)


def counters_row(counters) -> tuple:
    return (
        counters.queries,
        counters.exact_hits,
        counters.misses,
        counters.stores,
        counters.placements,
        counters.replica_placements,
        counters.overlay_hops,
        counters.failovers,
        counters.failed_lookups,
    )


def run_sync():
    system = RangeSelectionSystem(make_config())
    rows, shapes = [], []
    for query, origin in zip(QUERIES, origins()):
        trace = system.start_trace(query)
        result = system.query(query, origin=origin, trace=trace)
        rows.append(
            (
                str(result.matched) if result.matched is not None else None,
                result.exact,
                result.stored,
                result.similarity,
                result.recall,
            )
        )
        shapes.append(trace_shape(trace))
    return rows, shapes, counters_row(system.counters), system


def run_sim():
    system = RangeSelectionSystem(make_config())
    engine = AsyncQueryEngine(system, seed=SEED)
    rows, shapes = [], []
    for query, origin in zip(QUERIES, origins()):
        trace = engine.start_trace(query)
        result = engine.run(query, origin=origin, trace=trace)
        rows.append(
            (
                str(result.matched) if result.matched is not None else None,
                result.exact,
                result.stored,
                result.similarity,
                result.recall,
            )
        )
        shapes.append(trace_shape(trace))
    return rows, shapes, counters_row(system.counters), system


def run_socket():
    loop = asyncio.new_event_loop()
    servers: list[PeerServer] = []

    async def boot():
        bootstrap = None
        for address in ADDRESSES:
            server = PeerServer(address, make_config(), bootstrap=bootstrap)
            await server.start()
            if bootstrap is None:
                bootstrap = (server.host, server.port)
            servers.append(server)
        return bootstrap

    bootstrap = loop.run_until_complete(boot())
    rows, shapes = [], []
    try:
        client = ClusterClient(bootstrap, loop=loop)
        for query, origin in zip(QUERIES, origins()):
            trace = client.start_trace(query)
            result = client.query(query, origin=origin, trace=trace)
            rows.append(
                (
                    str(result.matched)
                    if result.matched is not None
                    else None,
                    result.exact,
                    result.stored,
                    result.similarity,
                    result.recall,
                )
            )
            shapes.append(trace_shape(trace))
        counters = counters_row(client.system.counters)
        system = client.system
    finally:

        async def teardown():
            for server in servers:
                await server.close()

        loop.run_until_complete(teardown())
        loop.close()
    return rows, shapes, counters, system


@pytest.fixture(scope="module")
def sync_run():
    return run_sync()


@pytest.fixture(scope="module")
def sim_run():
    return run_sim()


@pytest.fixture(scope="module")
def socket_run():
    return run_socket()


def test_socket_ring_matches_in_process_ring(sync_run, socket_run):
    # Node ids are SHA-1 of addresses in both worlds, so the socket
    # client's mirror must place identifiers on the very same ring.
    assert (
        socket_run[3].router.node_ids == sync_run[3].router.node_ids
    )


def test_results_identical_across_transports(sync_run, sim_run, socket_run):
    sync_rows, sim_rows, socket_rows = sync_run[0], sim_run[0], socket_run[0]
    for index, sync_row in enumerate(sync_rows):
        matched, exact, stored, similarity, recall = sync_row
        expected = outcome_row(matched, exact, stored, similarity, recall)
        assert sim_rows[index] == expected, f"sim diverged on query {index}"
        assert socket_rows[index] == expected, (
            f"socket diverged on query {index}"
        )
    # The workload exercises all interesting outcomes.
    assert sync_rows[0][0] is None and sync_rows[0][2]  # cold miss, stored
    assert sync_rows[1][1]  # exact re-query hit
    assert sync_rows[2][0] is not None and not sync_rows[2][1]  # approx


def test_trace_shapes_identical_across_transports(
    sync_run, sim_run, socket_run
):
    for index in range(len(QUERIES)):
        assert sync_run[1][index] == sim_run[1][index], (
            f"sync/sim trace shape diverged on query {index}"
        )
        assert sync_run[1][index] == socket_run[1][index], (
            f"sync/socket trace shape diverged on query {index}"
        )


def test_trace_shape_has_expected_skeleton(sync_run):
    name, _, children = sync_run[1][0]
    assert name == "query"
    child_names = [child[0] for child in children]
    assert child_names[:2] == ["hash", "locate"]
    assert "store" in child_names  # cold miss stores
    locate = children[1]
    chain_names = [chain[0] for chain in locate[2]]
    assert chain_names == ["chain"] * 5  # one span per lookup chain


def test_counters_identical_across_transports(sync_run, sim_run, socket_run):
    assert sync_run[2] == sim_run[2]
    assert sync_run[2] == socket_run[2]
