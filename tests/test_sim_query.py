"""Tests for the event-driven query path."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.net.latency import ConstantLatency, SeededLatency
from repro.ranges.interval import IntRange
from repro.sim import AsyncQueryEngine, RetryPolicy


def make_engine(n_peers: int = 60, seed: int = 7, **kwargs) -> AsyncQueryEngine:
    system = RangeSelectionSystem(SystemConfig(n_peers=n_peers, seed=seed))
    kwargs.setdefault("latency", SeededLatency(10.0, 100.0, seed=seed))
    return AsyncQueryEngine(system, seed=seed, **kwargs)


class TestQuerySemantics:
    def test_matches_agree_with_synchronous_path(self):
        """Fault-free async queries find the same partitions as sync ones."""
        seed = 11
        sync_system = RangeSelectionSystem(SystemConfig(n_peers=60, seed=seed))
        engine = make_engine(n_peers=60, seed=seed)
        queries = [IntRange(30, 50), IntRange(30, 49), IntRange(200, 420), IntRange(210, 400)]
        for query in queries:
            sync_result = sync_system.query(query, origin=sync_system.router.node_ids[0])
            async_result = engine.run(query, origin=engine.system.router.node_ids[0])
            assert async_result.matched == sync_result.matched
            assert async_result.similarity == pytest.approx(sync_result.similarity)
            assert async_result.exact == sync_result.exact

    def test_store_on_miss_places_partitions(self):
        engine = make_engine()
        cold = engine.run(IntRange(100, 200))
        assert cold.matched is None and cold.stored
        assert engine.system.total_placements() > 0
        warm = engine.run(IntRange(100, 199))
        assert warm.found
        assert warm.recall > 0.9

    def test_phase_timings_partition_the_total(self):
        engine = make_engine()
        engine.run(IntRange(100, 200))
        result = engine.run(IntRange(100, 199))
        assert result.route_ms > 0
        assert result.match_ms > 0
        assert result.locate_ms == pytest.approx(result.route_ms + result.match_ms)
        assert result.total_ms == pytest.approx(
            result.locate_ms + result.fetch_ms + result.store_ms
        )

    def test_seeded_runs_are_identical(self):
        results_a = [
            (r.total_ms, r.matched)
            for r in (make_engine(seed=5).run(q) for q in [IntRange(10, 90), IntRange(12, 88)])
        ]
        results_b = [
            (r.total_ms, r.matched)
            for r in (make_engine(seed=5).run(q) for q in [IntRange(10, 90), IntRange(12, 88)])
        ]
        assert results_a == results_b

    def test_fetch_rows_round_trip(self):
        engine = make_engine(fetch_rows=True)
        engine.run(IntRange(100, 200))
        result = engine.run(IntRange(100, 199))
        assert result.found
        # Simulation-mode partitions are placeholders (None); the fetch
        # phase still costs a round trip.
        assert result.fetch_ms > 0


class TestAcceptance:
    """The ISSUE's acceptance scenario, verbatim: a 1,000-peer ring."""

    @pytest.fixture(scope="class")
    def engine(self) -> AsyncQueryEngine:
        system = RangeSelectionSystem(SystemConfig(n_peers=1000, seed=2003))
        return AsyncQueryEngine(
            system,
            latency=SeededLatency(10.0, 100.0, seed=2003),
            policy=RetryPolicy(timeout_ms=400.0, max_retries=1),
            seed=2003,
        )

    def test_completion_is_max_not_sum_of_chains(self, engine):
        engine.run(IntRange(300, 500))  # populate
        result = engine.run(IntRange(300, 499))
        chain_times = [chain.completed_ms for chain in result.chains]
        assert len(chain_times) == engine.system.config.l
        assert result.locate_ms == max(chain_times)
        assert result.locate_ms < 0.5 * sum(chain_times)

    def test_crashed_owner_degrades_not_fails(self, engine):
        engine.run(IntRange(600, 800))  # populate
        probe = engine.run(IntRange(600, 799))
        assert probe.found and not probe.degraded
        victim = probe.chains[0].owner
        engine.crash_peer(victim)
        timeouts_before = engine.net.stats.timeouts
        result = engine.run(IntRange(600, 799))
        # Still answered, from the surviving l-1 (or fewer) replies...
        assert result.found
        assert result.recall > 0
        surviving = [c for c in result.chains if not c.timed_out]
        assert all(c.owner != victim for c in surviving)
        # ...while the dead owner's chains are reported as timeouts.
        assert result.timeouts >= 1
        assert result.degraded
        assert engine.net.stats.timeouts > timeouts_before
        engine.recover_peer(victim)

    def test_crashed_peer_never_originates(self, engine):
        victim = engine.system.router.node_ids[0]
        engine.crash_peer(victim)
        for _ in range(20):
            assert engine.pick_origin() != victim
        engine.recover_peer(victim)


class TestDeterministicTiming:
    def test_constant_latency_gives_exact_round_trips(self):
        """With unit latency, chain time = hops + request round trip."""
        engine = make_engine(latency=ConstantLatency(1.0))
        result = engine.run(IntRange(100, 200))
        for chain in result.chains:
            assert chain.route_ms == pytest.approx(chain.hops * 1.0)
            assert chain.completed_ms == pytest.approx(chain.route_ms + 2.0)
