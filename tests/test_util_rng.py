"""Tests for deterministic RNG stream derivation."""

from __future__ import annotations

from repro.util.rng import SeedSequenceFactory, derive_rng, spawn_rngs


def test_same_seed_and_name_reproduce_stream():
    a = derive_rng(42, "alpha")
    b = derive_rng(42, "alpha")
    assert [int(x) for x in a.integers(0, 1 << 30, size=10)] == [
        int(x) for x in b.integers(0, 1 << 30, size=10)
    ]


def test_different_names_give_different_streams():
    a = derive_rng(42, "alpha")
    b = derive_rng(42, "beta")
    assert list(a.integers(0, 1 << 30, size=10)) != list(
        b.integers(0, 1 << 30, size=10)
    )


def test_different_seeds_give_different_streams():
    a = derive_rng(1, "alpha")
    b = derive_rng(2, "alpha")
    assert list(a.integers(0, 1 << 30, size=10)) != list(
        b.integers(0, 1 << 30, size=10)
    )


def test_empty_name_is_valid():
    a = derive_rng(7)
    b = derive_rng(7)
    assert int(a.integers(1 << 30)) == int(b.integers(1 << 30))


def test_spawn_rngs_returns_one_stream_per_name():
    streams = spawn_rngs(5, ["x", "y", "z"])
    assert set(streams) == {"x", "y", "z"}
    values = {name: int(gen.integers(1 << 30)) for name, gen in streams.items()}
    assert len(set(values.values())) == 3


def test_factory_issues_deterministic_sequence():
    f1 = SeedSequenceFactory(9, "fam")
    f2 = SeedSequenceFactory(9, "fam")
    for _ in range(5):
        assert int(f1.next_rng().integers(1 << 30)) == int(
            f2.next_rng().integers(1 << 30)
        )
    assert f1.issued == 5


def test_factory_streams_are_independent():
    factory = SeedSequenceFactory(9, "fam")
    first = factory.next_rng()
    second = factory.next_rng()
    assert list(first.integers(0, 1 << 30, size=8)) != list(
        second.integers(0, 1 << 30, size=8)
    )
