"""Tests for traffic accounting at the system level."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.net.transport import TrafficStats
from repro.ranges.interval import IntRange
from repro.workloads.generators import ZipfRangeWorkload


class TestRoutingHopAccounting:
    def test_record_routing_hops(self):
        stats = TrafficStats()
        stats.record_routing_hops(5)
        assert stats.messages == 5
        assert stats.by_kind["route-hop"] == 5
        assert stats.bytes == 5 * 32

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            TrafficStats().record_routing_hops(-1)

    def test_query_traffic_includes_routing(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=150, seed=44))
        system.network.stats.reset()
        result = system.query(IntRange(200, 400))
        stats = system.network.stats
        assert stats.by_kind["route-hop"] == result.overlay_hops
        # Total messages: hops + l match requests + l stores (cold miss).
        assert stats.messages == result.overlay_hops + 10

    def test_exact_hit_cheaper_than_miss(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=150, seed=44))
        system.query(IntRange(200, 400))
        system.network.stats.reset()
        system.query(IntRange(200, 400))  # exact hit: no stores
        assert "store-request" not in system.network.stats.by_kind


class TestCacheEconomics:
    def test_repeated_workload_amortizes_traffic(self):
        """Under heavy reuse, per-query messages approach probe-only cost."""
        system = RangeSelectionSystem(SystemConfig(n_peers=100, seed=45))
        workload = ZipfRangeWorkload(
            system.config.domain, 600, seed=9, pool_size=40
        ).ranges()
        first_half, second_half = workload[:300], workload[300:]
        for query in first_half:
            system.query(query)
        system.network.stats.reset()
        for query in second_half:
            system.query(query)
        warm_messages = system.network.stats.messages / len(second_half)
        # Almost everything is an exact hit by now: stores are rare, so the
        # per-query message count is near the probe floor (hops + 5).
        stores = system.network.stats.by_kind.get("store-request", 0)
        assert stores < 0.2 * 5 * len(second_half)
        assert warm_messages < 40
