"""Tests for attribute domains and date encoding."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.errors import DomainError
from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange


class TestBasics:
    def test_size_and_contains(self):
        d = Domain("age", 0, 120)
        assert d.size == 121
        assert 0 in d and 120 in d and 121 not in d

    def test_inverted_bounds_raise(self):
        with pytest.raises(DomainError):
            Domain("bad", 10, 5)

    def test_full_range(self):
        assert Domain("v", 3, 9).full_range() == IntRange(3, 9)

    def test_validate(self):
        d = Domain("v", 0, 10)
        assert d.validate(5) == 5
        with pytest.raises(DomainError):
            d.validate(11)

    def test_validate_range(self):
        d = Domain("v", 0, 10)
        assert d.validate_range(IntRange(0, 10)) == IntRange(0, 10)
        with pytest.raises(DomainError):
            d.validate_range(IntRange(5, 11))

    def test_clamp(self):
        d = Domain("v", 0, 10)
        assert d.clamp(IntRange(-5, 25)) == IntRange(0, 10)
        assert d.clamp(IntRange(3, 7)) == IntRange(3, 7)

    def test_clamp_disjoint_raises(self):
        d = Domain("v", 0, 10)
        with pytest.raises(DomainError):
            d.clamp(IntRange(50, 60))


class TestDates:
    def test_epoch_is_zero(self):
        assert Domain.date_to_code(dt.date(1970, 1, 1)) == 0

    def test_roundtrip(self):
        day = dt.date(2002, 12, 31)
        assert Domain.code_to_date(Domain.date_to_code(day)) == day

    def test_order_preserved(self):
        early = Domain.date_to_code(dt.date(2000, 1, 1))
        late = Domain.date_to_code(dt.date(2002, 12, 31))
        assert early < late

    def test_for_dates_domain(self):
        d = Domain.for_dates("date", dt.date(2000, 1, 1), dt.date(2000, 1, 31))
        assert d.size == 31

    def test_date_range(self):
        r = Domain.date_range(dt.date(2000, 1, 1), dt.date(2000, 1, 3))
        assert len(r) == 3

    def test_pre_epoch_dates_are_negative(self):
        assert Domain.date_to_code(dt.date(1969, 12, 31)) == -1
