"""Golden-value regression tests.

A reproduction repository lives or dies by determinism: a silent change to
a permutation, a key-sampling order, or an identifier combination would
shift every experimental result while all behavioural tests still pass.
These tests pin exact values for fixed seeds; if one fails after an
intentional algorithm change, re-derive the constants and say so in the
commit.
"""

from __future__ import annotations

import pytest

from repro.chord.hashing import key_id, node_id_for_address, rehash_for_placement
from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.lsh import (
    ApproxMinWiseFamily,
    LinearFamily,
    LSHIdentifierScheme,
    MinWiseFamily,
)
from repro.ranges.interval import IntRange
from repro.workloads.generators import UniformRangeWorkload


class TestHashingGolden:
    def test_sha1_node_ids(self):
        assert node_id_for_address("peer-0") == 4164056797
        assert node_id_for_address("10.0.0.1") == 3977668033

    def test_key_id(self):
        assert key_id("Diagnosis", "diagnosis", "Glaucoma") == 2852579342

    def test_rehash_for_placement(self):
        assert rehash_for_placement(0) == 100548695
        assert rehash_for_placement(12345) == 663133644

    def test_minwise_identifiers(self):
        scheme = LSHIdentifierScheme.from_family(MinWiseFamily(), seed=2003)
        assert scheme.identifiers(IntRange(30, 50)) == [
            1737303586,
            623826438,
            537436744,
            33948202,
            849939387,
        ]

    def test_approx_identifiers(self):
        scheme = LSHIdentifierScheme.from_family(ApproxMinWiseFamily(), seed=2003)
        assert scheme.identifiers(IntRange(30, 50)) == [
            917532,
            65544,
            983044,
            65557,
            393223,
        ]

    def test_linear_identifiers(self):
        scheme = LSHIdentifierScheme.from_family(LinearFamily(p=1009), seed=2003)
        assert scheme.identifiers(IntRange(30, 50)) == [153, 233, 223, 468, 4]


class TestWorkloadGolden:
    def test_uniform_prefix(self):
        workload = UniformRangeWorkload(
            SystemConfig().domain, count=5, seed=77
        )
        assert workload.ranges() == [
            IntRange(19, 385),
            IntRange(869, 992),
            IntRange(228, 691),
            IntRange(694, 706),
            IntRange(552, 685),
        ]


class TestSystemGolden:
    def test_small_system_trajectory(self):
        """End-to-end determinism: a fixed seed yields this exact outcome."""
        system = RangeSelectionSystem(SystemConfig(n_peers=25, seed=2003))
        workload = UniformRangeWorkload(system.config.domain, count=60, seed=77)
        results = [system.query(q) for q in workload]
        found = sum(1 for r in results if r.found)
        exact = sum(1 for r in results if r.exact)
        recall_sum = round(sum(r.recall for r in results), 6)
        assert (found, exact) == (16, 0)
        assert recall_sum == pytest.approx(13.764102, abs=1e-6)
        # 60 stores x 5 owners, minus placements collapsed by duplicate
        # (identifier, owner) pairs — e.g. any range containing 0 hashes to
        # identifier 0 in *every* group under bit-position permutations, so
        # its five placements collapse into one.
        assert system.total_placements() == 295
