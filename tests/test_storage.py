"""Tests for buckets, peer stores and eviction."""

from __future__ import annotations

import pytest

from repro.db.partition import Partition, PartitionDescriptor
from repro.errors import StorageError
from repro.ranges.interval import IntRange
from repro.similarity.measures import jaccard
from repro.storage.bucket import Bucket, StoredEntry
from repro.storage.store import LRUEviction, PeerStore


def desc(start: int, end: int, relation: str = "R") -> PartitionDescriptor:
    return PartitionDescriptor(relation, "value", IntRange(start, end))


def score(query: IntRange, candidate: PartitionDescriptor) -> float:
    return jaccard(query, candidate.range)


class TestBucket:
    def test_add_and_contains(self):
        bucket = Bucket(7)
        assert bucket.add(StoredEntry(desc(0, 10)))
        assert desc(0, 10) in bucket
        assert len(bucket) == 1

    def test_duplicate_add_returns_false(self):
        bucket = Bucket(7)
        bucket.add(StoredEntry(desc(0, 10)))
        assert not bucket.add(StoredEntry(desc(0, 10)))
        assert len(bucket) == 1

    def test_readd_with_rows_upgrades(self):
        bucket = Bucket(7)
        bucket.add(StoredEntry(desc(0, 10)))
        partition = Partition(descriptor=desc(0, 10), rows=((1,),))
        bucket.add(StoredEntry(desc(0, 10), partition=partition))
        assert bucket.get(desc(0, 10)).partition is partition

    def test_best_match_picks_highest_score(self):
        bucket = Bucket(7)
        bucket.add(StoredEntry(desc(0, 100)))
        bucket.add(StoredEntry(desc(40, 60)))
        best = bucket.best_match(IntRange(45, 55), "R", "value", score)
        assert best is not None
        assert best[0].descriptor == desc(40, 60)

    def test_best_match_filters_relation_and_attribute(self):
        bucket = Bucket(7)
        bucket.add(StoredEntry(desc(0, 10, relation="S")))
        assert bucket.best_match(IntRange(0, 10), "R", "value", score) is None

    def test_exact_match_wins_ties(self):
        bucket = Bucket(7)
        query = IntRange(10, 20)
        bucket.add(StoredEntry(desc(10, 20)))
        best = bucket.best_match(query, "R", "value", score)
        assert best[0].descriptor.range == query and best[1] == 1.0

    def test_remove(self):
        bucket = Bucket(7)
        bucket.add(StoredEntry(desc(0, 10)))
        assert bucket.remove(desc(0, 10)) is not None
        assert bucket.remove(desc(0, 10)) is None


class TestPeerStore:
    def test_store_and_count(self):
        store = PeerStore(1)
        assert store.store(100, desc(0, 10))
        assert not store.store(100, desc(0, 10))  # duplicate
        assert store.store(200, desc(0, 10))  # same descriptor, other bucket
        assert store.partition_count == 2
        assert store.bucket_count == 2

    def test_best_match_in_bucket_only_searches_that_bucket(self):
        store = PeerStore(1)
        store.store(100, desc(0, 10))
        store.store(200, desc(40, 60))
        found = store.best_match_in_bucket(100, IntRange(45, 55), "R", "value", score)
        assert found is None or found[1] == 0.0  # [0,10] scores 0 vs [45,55]
        assert (
            store.best_match_in_bucket(200, IntRange(45, 55), "R", "value", score)[1]
            > 0.5
        )

    def test_best_match_local_searches_everything(self):
        store = PeerStore(1)
        store.store(100, desc(0, 10))
        store.store(200, desc(40, 60))
        found = store.best_match_local(IntRange(45, 55), "R", "value", score)
        assert found is not None
        assert found[0].descriptor == desc(40, 60)

    def test_missing_bucket(self):
        store = PeerStore(1)
        assert store.bucket(5) is None
        assert store.best_match_in_bucket(5, IntRange(0, 1), "R", "value", score) is None

    def test_remove_prunes_empty_bucket(self):
        store = PeerStore(1)
        store.store(100, desc(0, 10))
        assert store.remove(100, desc(0, 10))
        assert store.bucket_count == 0
        assert not store.remove(100, desc(0, 10))

    def test_entries_iteration(self):
        store = PeerStore(1)
        store.store(100, desc(0, 10))
        store.store(100, desc(5, 15))
        pairs = list(store.entries())
        assert len(pairs) == 2
        assert all(identifier == 100 for identifier, _ in pairs)


class TestLRUEviction:
    def test_capacity_enforced(self):
        store = PeerStore(1, eviction=LRUEviction(max_partitions=3))
        for i in range(5):
            store.store(i, desc(i, i + 10))
        assert store.partition_count == 3

    def test_recently_matched_entry_survives(self):
        store = PeerStore(1, eviction=LRUEviction(max_partitions=2))
        store.store(1, desc(0, 10))
        store.store(2, desc(100, 110))
        # Touch the first entry so the second becomes the LRU victim.
        store.best_match_in_bucket(1, IntRange(0, 10), "R", "value", score)
        store.store(3, desc(200, 210))
        remaining = {entry.descriptor for _, entry in store.entries()}
        assert desc(0, 10) in remaining
        assert desc(100, 110) not in remaining

    def test_invalid_capacity(self):
        with pytest.raises(StorageError):
            LRUEviction(max_partitions=0)

    def test_replica_evicted_before_primary(self):
        store = PeerStore(1, eviction=LRUEviction(max_partitions=2))
        store.store(1, desc(0, 10), primary=True)
        store.store(2, desc(100, 110), primary=False)
        # Make the primary the LRU entry; the replica must still go first.
        store.best_match_in_bucket(2, IntRange(100, 110), "R", "value", score)
        store.store(3, desc(200, 210), primary=True)
        remaining = {entry.descriptor for _, entry in store.entries()}
        assert desc(0, 10) in remaining
        assert desc(100, 110) not in remaining

    def test_replica_inserts_respect_capacity(self):
        store = PeerStore(1, eviction=LRUEviction(max_partitions=2))
        for i in range(5):
            store.store(i, desc(i * 20, i * 20 + 10), primary=False)
        assert store.partition_count == 2
        assert store.replica_count == 2

    def test_oldest_replica_evicted_among_replicas(self):
        store = PeerStore(1, eviction=LRUEviction(max_partitions=2))
        store.store(1, desc(0, 10), primary=False)
        store.store(2, desc(100, 110), primary=False)
        store.store(3, desc(200, 210), primary=False)
        remaining = {entry.descriptor for _, entry in store.entries()}
        assert desc(0, 10) not in remaining


class TestPrimaryReplicaRoles:
    def test_store_marks_roles(self):
        store = PeerStore(1)
        store.store(1, desc(0, 10), primary=True)
        store.store(2, desc(100, 110), primary=False)
        assert store.primary_count == 1
        assert store.replica_count == 1

    def test_readd_as_primary_promotes(self):
        store = PeerStore(1)
        store.store(1, desc(0, 10), primary=False)
        assert not store.store(1, desc(0, 10), primary=True)  # not new
        (_, entry), = store.entries()
        assert entry.primary

    def test_readd_as_replica_does_not_demote(self):
        store = PeerStore(1)
        store.store(1, desc(0, 10), primary=True)
        store.store(1, desc(0, 10), primary=False)
        (_, entry), = store.entries()
        assert entry.primary


class TestUpgradeRefreshesRecency:
    def test_readd_refreshes_access_clock(self):
        # Regression: re-adding an existing descriptor upgraded the entry
        # in place but kept the stale access_clock, leaving the re-stored
        # entry first in line for LRU eviction.
        store = PeerStore(1, eviction=LRUEviction(max_partitions=2))
        store.store(1, desc(0, 10))          # clock 1
        store.store(2, desc(100, 110))       # clock 2
        store.store(1, desc(0, 10))          # re-add: refresh to clock 3
        store.store(3, desc(200, 210))       # forces one eviction
        remaining = {entry.descriptor for _, entry in store.entries()}
        assert desc(0, 10) in remaining
        assert desc(100, 110) not in remaining

    def test_readd_with_rows_keeps_upgraded_entry_warm(self):
        store = PeerStore(1, eviction=LRUEviction(max_partitions=2))
        store.store(1, desc(0, 10))
        store.store(2, desc(100, 110))
        partition = Partition(descriptor=desc(0, 10), rows=((1,),))
        store.store(1, desc(0, 10), partition=partition)
        store.store(3, desc(200, 210))
        survivors = {e.descriptor: e for _, e in store.entries()}
        assert desc(0, 10) in survivors
        assert survivors[desc(0, 10)].partition is partition

    def test_readd_never_rewinds_clock(self):
        bucket = Bucket(7)
        bucket.add(StoredEntry(desc(0, 10), access_clock=9))
        bucket.add(StoredEntry(desc(0, 10), access_clock=4))
        assert bucket.get(desc(0, 10)).access_clock == 9


class TestBestMatchTieBreak:
    def test_exact_beats_equal_scoring_rival_regardless_of_order(self):
        # A constant scorer forces a genuine tie; the exact descriptor
        # must win whether it was inserted before or after its rival.
        constant = lambda q, d: 0.5  # noqa: E731
        query = IntRange(10, 20)
        first = Bucket(7)
        first.add(StoredEntry(desc(10, 20)))
        first.add(StoredEntry(desc(0, 100)))
        assert first.best_match(query, "R", "value", constant)[0].descriptor.range == query
        second = Bucket(7)
        second.add(StoredEntry(desc(0, 100)))
        second.add(StoredEntry(desc(10, 20)))
        assert second.best_match(query, "R", "value", constant)[0].descriptor.range == query

    def test_tie_between_inexact_entries_keeps_first_seen(self):
        constant = lambda q, d: 0.5  # noqa: E731
        bucket = Bucket(7)
        bucket.add(StoredEntry(desc(0, 50)))
        bucket.add(StoredEntry(desc(50, 100)))
        best = bucket.best_match(IntRange(20, 30), "R", "value", constant)
        assert best[0].descriptor == desc(0, 50)


class TestEvictionAfterPromotion:
    def test_promoted_replica_outranks_newer_replica(self):
        # A replica promoted to primary must gain the primary's eviction
        # protection even though its access_clock is the oldest.
        store = PeerStore(1, eviction=LRUEviction(max_partitions=2))
        store.store(1, desc(0, 10), primary=False)
        store.store(1, desc(0, 10), primary=True)   # promotion in place
        store.store(2, desc(100, 110), primary=False)
        store.store(3, desc(200, 210), primary=False)
        survivors = {e.descriptor: e for _, e in store.entries()}
        assert desc(0, 10) in survivors
        assert survivors[desc(0, 10)].primary
