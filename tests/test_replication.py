"""Tests for successor-list replication: placement, failover, repair.

Covers the chord-layer successor lists and departure handoff, the
system-level replica placement with primary/replica roles, synchronous
failover lookups against crashed peers, the anti-entropy repair pass, and
data survival across graceful membership changes.
"""

from __future__ import annotations

import pytest

from repro.chord.ring import ChordRing, DepartureHandoff
from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.errors import ChordError, ConfigError
from repro.ranges.interval import IntRange


def build_system(n_peers: int = 24, replicas: int = 3, **overrides):
    config = SystemConfig(
        n_peers=n_peers,
        replicas=replicas,
        store_on_miss=False,
        seed=11,
        **overrides,
    )
    return RangeSelectionSystem(config)


class TestSuccessorLists:
    def test_build_populates_lists(self):
        ring = ChordRing(m=16, successor_list_size=3)
        ring.add_nodes(10)
        ring.build()
        ids = ring.node_ids
        for index, node_id in enumerate(ids):
            expected = [ids[(index + 1 + i) % len(ids)] for i in range(3)]
            assert ring.node(node_id).successor_list == expected

    def test_list_shorter_than_r_on_tiny_ring(self):
        ring = ChordRing(m=16, successor_list_size=4)
        ring.add_nodes(3)
        ring.build()
        for node_id in ring.node_ids:
            assert len(ring.node(node_id).successor_list) == 2

    def test_invalid_size_rejected(self):
        with pytest.raises(ChordError):
            ChordRing(successor_list_size=0)

    def test_reset_routing_clears_list(self):
        ring = ChordRing(m=16, successor_list_size=3)
        ring.add_nodes(5)
        ring.build()
        node = ring.node(ring.node_ids[0])
        assert node.successor_list
        node.reset_routing()
        assert node.successor_list == []
        assert node.successor_id is None

    def test_successor_chain_is_placement_ground_truth(self):
        ring = ChordRing(m=16, successor_list_size=3)
        ring.add_nodes(12)
        ring.build()
        key = 777
        owner = ring.successor_of(key)
        chain = ring.successor_chain(key, 3)
        assert chain[0] == owner
        assert chain[1:] == ring.node(owner).successor_list[:2]

    def test_successor_chain_with_predicate_skips_rejected(self):
        ring = ChordRing(m=16, successor_list_size=3)
        ring.add_nodes(12)
        ring.build()
        full = ring.successor_chain(500, 3)
        filtered = ring.successor_chain(500, 3, predicate=lambda n: n != full[0])
        assert full[0] not in filtered
        assert len(filtered) == 3

    def test_join_adopts_list_and_stabilize_converges(self):
        ring = ChordRing(m=16, successor_list_size=3)
        boot = ring.bootstrap("boot")
        for i in range(8):
            ring.join(f"node-{i}", via=boot.node_id)
            ring.stabilize()
        ring.check_invariants()  # validates successor lists too


class TestDepartureHandoff:
    def test_leave_reports_moved_interval(self):
        ring = ChordRing(m=16, successor_list_size=3)
        ring.add_nodes(8)
        ring.build()
        victim = ring.node_ids[3]
        pred, succ = ring.node_ids[2], ring.node_ids[4]
        handoff = ring.leave(victim)
        assert isinstance(handoff, DepartureHandoff)
        assert handoff.interval == (pred, victim)
        assert handoff.new_owner_id == succ
        assert handoff.moved(victim, ring.space)
        assert not handoff.moved(succ, ring.space)

    def test_leave_scrubs_departed_from_survivor_lists(self):
        ring = ChordRing(m=16, successor_list_size=3)
        ring.add_nodes(8)
        ring.build()
        victim = ring.node_ids[3]
        ring.leave(victim)
        for node_id in ring.node_ids:
            assert victim not in ring.node(node_id).successor_list


class TestConfig:
    def test_replicas_must_be_positive(self):
        with pytest.raises(ConfigError):
            SystemConfig(replicas=0)

    def test_replication_requires_chord(self):
        with pytest.raises(ConfigError):
            SystemConfig(overlay="can", replicas=2)

    def test_replicas_bounded_by_peers(self):
        with pytest.raises(ConfigError):
            SystemConfig(n_peers=2, replicas=3)


class TestReplicaPlacement:
    def test_entry_lands_on_owner_and_successors(self):
        system = build_system()
        query = IntRange(100, 160)
        system.store_partition(query)
        for identifier in system.identifiers_for(query):
            owners = system.replica_owners(identifier)
            assert len(owners) == 3
            for rank, peer_id in enumerate(owners):
                bucket = system.stores[peer_id].bucket(identifier)
                assert bucket is not None
                entries = list(bucket)
                assert len(entries) == 1
                assert entries[0].primary == (rank == 0)
        system.check_placement_invariant()

    def test_replica_counters_track_roles(self):
        system = build_system()
        system.store_partition(IntRange(100, 160))
        primaries = sum(s.primary_count for s in system.stores.values())
        replicas = sum(s.replica_count for s in system.stores.values())
        assert primaries == len(set(system.identifiers_for(IntRange(100, 160))))
        assert replicas == 2 * primaries
        assert system.counters.replica_placements == replicas
        assert system.network.stats.replica_stores == replicas

    def test_replicas_one_reproduces_unreplicated_layout(self):
        system = build_system(replicas=1)
        system.store_partition(IntRange(100, 160))
        assert all(s.replica_count == 0 for s in system.stores.values())
        system.check_placement_invariant()


class TestFailoverLookup:
    def test_crashed_owner_served_by_replica(self):
        system = build_system()
        query = IntRange(200, 260)
        system.store_partition(query)
        victim = system.replica_owners(system.identifiers_for(query)[0])[0]
        system.crash_peer(victim)
        result = system.locate(query)
        assert result.best is not None
        assert result.failovers >= 1
        assert result.unreachable == 0
        assert system.network.stats.failovers >= 1
        assert system.counters.failovers >= 1

    def test_healthy_lookup_never_fails_over(self):
        system = build_system()
        query = IntRange(200, 260)
        system.store_partition(query)
        result = system.locate(query)
        assert result.failovers == 0
        assert system.network.stats.failovers == 0

    def test_unreplicated_lookup_loses_crashed_owner(self):
        system = build_system(replicas=1)
        query = IntRange(200, 260)
        system.store_partition(query)
        identifier = system.identifiers_for(query)[0]
        victim = system.replica_owners(identifier)[0]
        system.crash_peer(victim)
        result = system.locate(query)
        assert result.failovers == 0
        assert result.unreachable >= 1
        assert system.network.stats.failover_exhausted >= 1

    def test_every_replica_down_degrades_loudly(self):
        system = build_system(n_peers=3, replicas=3)
        query = IntRange(200, 260)
        system.store_partition(query)
        for node_id in system.router.node_ids:
            system.crash_peer(node_id)
        result = system.locate(query)
        assert result.best is None
        assert result.unreachable == len(result.identifiers)
        assert system.counters.failed_lookups == len(result.identifiers)

    def test_recover_restores_direct_answers(self):
        system = build_system()
        query = IntRange(200, 260)
        system.store_partition(query)
        victim = system.replica_owners(system.identifiers_for(query)[0])[0]
        system.crash_peer(victim)
        system.locate(query)
        system.recover_peer(victim)
        before = system.network.stats.failovers
        result = system.locate(query)
        assert result.best is not None
        assert system.network.stats.failovers == before


class TestRepair:
    def test_repair_restores_replication_factor(self):
        system = build_system()
        query = IntRange(300, 360)
        system.store_partition(query)
        identifier = system.identifiers_for(query)[0]
        nominal = system.replica_owners(identifier)
        system.crash_peer(nominal[0])
        copies = system.repair_replicas()
        assert copies > 0
        assert system.counters.repairs == copies
        targets = system.replica_targets(identifier, system.network.is_alive)
        for target in targets:
            assert system.stores[target].bucket(identifier) is not None

    def test_repair_is_idempotent(self):
        system = build_system()
        system.store_partition(IntRange(300, 360))
        system.crash_peer(system.router.node_ids[0])
        system.repair_replicas()
        assert system.repair_replicas() == 0

    def test_unrepairable_when_no_copy_survives(self):
        system = build_system(replicas=1)
        query = IntRange(300, 360)
        system.store_partition(query)
        for identifier in system.identifiers_for(query):
            system.crash_peer(system.replica_owners(identifier)[0])
        assert system.repair_replicas() == 0

    def test_failover_reaches_repaired_copies(self):
        system = build_system(replicas=2)
        query = IntRange(300, 360)
        system.store_partition(query)
        # Crash the nominal replica set one rank at a time, repairing in
        # between — data survives by hopping to alive successors, and
        # failover must chase it past the (dead) nominal set.
        for rank in range(2):
            for identifier in system.identifiers_for(query):
                victim = system.replica_owners(identifier)[rank]
                if system.network.is_alive(victim):
                    system.crash_peer(victim)
            system.repair_replicas()
        result = system.locate(query)
        assert result.best is not None
        assert result.failovers >= 1


class TestMembershipWithReplication:
    def test_leave_preserves_every_descriptor(self):
        system = build_system()
        queries = [IntRange(s, s + 50) for s in range(0, 800, 90)]
        for query in queries:
            system.store_partition(query)
        unique_before = system.unique_partitions()
        victim = max(
            system.router.node_ids,
            key=lambda nid: system.stores[nid].partition_count,
        )
        system.leave_peer(victim)
        assert system.unique_partitions() == unique_before
        system.check_placement_invariant()

    def test_leave_promotes_surviving_replica(self):
        system = build_system()
        query = IntRange(400, 460)
        system.store_partition(query)
        identifier = system.identifiers_for(query)[0]
        owner = system.replica_owners(identifier)[0]
        system.leave_peer(owner)
        new_owner = system.replica_owners(identifier)[0]
        bucket = system.stores[new_owner].bucket(identifier)
        assert bucket is not None
        assert all(entry.primary for entry in bucket)

    def test_join_rebalances_replica_sets(self):
        system = build_system()
        for start in range(0, 800, 90):
            system.store_partition(IntRange(start, start + 50))
        unique_before = system.unique_partitions()
        system.join_peer("late-joiner")
        assert system.unique_partitions() == unique_before
        system.check_placement_invariant()
        assert system.rebalance() == 0

    def test_rebalance_fixes_misplaced_replica(self):
        system = build_system()
        query = IntRange(500, 560)
        system.store_partition(query)
        identifier = system.identifiers_for(query)[0]
        owners = system.replica_owners(identifier)
        outsider = next(
            nid for nid in system.router.node_ids if nid not in owners
        )
        entry = next(iter(system.stores[owners[0]].bucket(identifier)))
        system.stores[outsider].store(identifier, entry.descriptor, primary=False)
        with pytest.raises(ConfigError):
            system.check_placement_invariant()
        assert system.rebalance() >= 1
        system.check_placement_invariant()
        assert system.rebalance() == 0

    def test_invariant_rejects_wrong_primary_flag(self):
        system = build_system()
        query = IntRange(500, 560)
        system.store_partition(query)
        identifier = system.identifiers_for(query)[0]
        replica_holder = system.replica_owners(identifier)[1]
        entry = next(iter(system.stores[replica_holder].bucket(identifier)))
        entry.primary = True
        with pytest.raises(ConfigError):
            system.check_placement_invariant()
