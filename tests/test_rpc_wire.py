"""The socket wire protocol: framing, value codec, error mapping."""

from __future__ import annotations

import asyncio
import json
import struct

import pytest

from repro.core.config import SystemConfig
from repro.db.partition import Partition, PartitionDescriptor
from repro.errors import (
    ConfigError,
    PeerUnavailableError,
    RequestTimeoutError,
)
from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange
from repro.rpc import wire


def roundtrip(value):
    # Through real JSON, not just the codec functions, so nothing
    # JSON-unfriendly (tuples, numpy ints) can hide in the encoded form.
    return wire.decode_value(json.loads(json.dumps(wire.encode_value(value))))


def test_scalars_pass_through():
    for value in (None, True, 7, 2.5, "hello"):
        assert roundtrip(value) == value


def test_range_descriptor_partition_roundtrip():
    r = IntRange(30, 50)
    descriptor = PartitionDescriptor("patients", "age", r)
    partition = Partition.from_rows(
        "patients", "age", r, [(30, "a"), (41, "b")]
    )
    assert roundtrip(r) == r
    assert roundtrip(descriptor) == descriptor
    assert roundtrip(partition) == partition
    assert roundtrip(partition).rows == ((30, "a"), (41, "b"))


def test_request_payload_tuples_roundtrip():
    # The exact payloads the data plane sends.
    match = (123, IntRange(1, 9), "simulated", "value")
    store = (
        123,
        PartitionDescriptor("simulated", "value", IntRange(1, 9)),
        None,
        True,
    )
    assert roundtrip(match) == match
    assert roundtrip(store) == store


def test_unencodable_value_raises():
    with pytest.raises(TypeError):
        wire.encode_value(object())


def test_config_roundtrip_including_domain():
    config = SystemConfig(
        n_peers=9,
        replicas=3,
        domain=Domain("age", 0, 120),
        matcher="containment",
        seed=42,
    )
    assert wire.config_from_wire(wire.config_to_wire(config)) == config


def test_config_from_wire_rejects_unknown_fields():
    body = wire.config_to_wire(SystemConfig())
    body["bogus"] = 1
    with pytest.raises(ConfigError):
        wire.config_from_wire(body)


def test_config_from_wire_defaults_missing_fields():
    assert wire.config_from_wire({"n_peers": 5}).l == SystemConfig().l


def run(coroutine):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coroutine)
    finally:
        loop.close()


def test_frame_roundtrip_over_loopback():
    async def scenario():
        received = []

        async def serve(reader, writer):
            frame = await wire.read_frame(reader)
            received.append(frame)
            await wire.write_frame(writer, {"ok": True, "echo": frame})
            writer.close()

        server = await asyncio.start_server(serve, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        await wire.write_frame(writer, {"kind": "ping", "payload": [1, 2]})
        reply = await wire.read_frame(reader)
        writer.close()
        server.close()
        await server.wait_closed()
        return received, reply

    received, reply = run(scenario())
    assert received == [{"kind": "ping", "payload": [1, 2]}]
    assert reply["ok"] and reply["echo"]["kind"] == "ping"


def test_read_frame_returns_none_on_eof():
    async def scenario():
        async def serve(reader, writer):
            writer.close()  # hang up without answering

        server = await asyncio.start_server(serve, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        frame = await wire.read_frame(reader)
        writer.close()
        server.close()
        await server.wait_closed()
        return frame

    assert run(scenario()) is None


def test_oversized_length_prefix_is_refused():
    async def scenario():
        async def serve(reader, writer):
            writer.write(struct.pack("!I", wire.MAX_FRAME_BYTES + 1))
            await writer.drain()
            writer.close()

        server = await asyncio.start_server(serve, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            with pytest.raises(ValueError):
                await wire.read_frame(reader)
        finally:
            writer.close()
            server.close()
            await server.wait_closed()

    run(scenario())


def test_call_maps_refused_connection_to_peer_unavailable():
    async def scenario():
        # Bind a port, then close it, so the connect is refused.
        server = await asyncio.start_server(
            lambda r, w: None, "127.0.0.1", 0
        )
        port = server.sockets[0].getsockname()[1]
        server.close()
        await server.wait_closed()
        with pytest.raises(PeerUnavailableError) as info:
            await wire.call("127.0.0.1", port, "ping", peer_id=42)
        assert info.value.peer_id == 42

    run(scenario())


def test_call_times_out_against_a_silent_peer():
    async def scenario():
        async def serve(reader, writer):
            await asyncio.sleep(30)  # never answer

        server = await asyncio.start_server(serve, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            with pytest.raises(RequestTimeoutError):
                await wire.call(
                    "127.0.0.1", port, "ping", peer_id=7, timeout_ms=100.0
                )
        finally:
            server.close()
            await server.wait_closed()

    run(scenario())


# -- adversarial framing -----------------------------------------------------
#
# A peer on the open network can hand the reader any byte stream.  Every
# malformed stream must surface as a typed WireError promptly — never a
# hang, never a raw struct/json/asyncio exception leaking upward.


def read_bytes(*chunks: bytes, seconds: float = 5.0):
    """read_frame over a reader preloaded with raw bytes, as if a peer
    sent them then hung up.  The deadline turns a would-be hang into a
    loud failure."""

    async def scenario():
        reader = asyncio.StreamReader()
        for chunk in chunks:
            reader.feed_data(chunk)
        reader.feed_eof()
        return await asyncio.wait_for(wire.read_frame(reader), timeout=seconds)

    return run(scenario())


def test_torn_length_prefix_raises_wire_error():
    # Connection dies two bytes into the four-byte prefix: torn, not EOF.
    with pytest.raises(wire.WireError, match="length prefix"):
        read_bytes(b"\x00\x00")


def test_peer_death_mid_frame_raises_wire_error():
    # The prefix promises 100 bytes; only 10 ever arrive.
    with pytest.raises(wire.WireError, match="mid-frame"):
        read_bytes(struct.pack("!I", 100), b"x" * 10)


def test_garbage_bytes_under_plausible_prefix_raise_wire_error():
    junk = b"\xde\xad\xbe\xef not json at all"
    with pytest.raises(wire.WireError, match="not valid JSON"):
        read_bytes(struct.pack("!I", len(junk)), junk)


def test_non_object_json_body_raises_wire_error():
    body = json.dumps([1, 2, 3]).encode("utf-8")
    with pytest.raises(wire.WireError, match="expected an object"):
        read_bytes(struct.pack("!I", len(body)), body)


def test_undecodable_bytes_raise_wire_error_not_unicode_error():
    body = b"\xff\xfe\xfd\xfc"
    with pytest.raises(wire.WireError):
        read_bytes(struct.pack("!I", len(body)), body)


def test_wire_error_is_a_value_error_and_a_repro_error():
    # Callers catching either family (old code caught ValueError) work.
    from repro.errors import ReproError

    assert issubclass(wire.WireError, ValueError)
    assert issubclass(wire.WireError, ReproError)


def test_valid_frame_after_feed_still_parses():
    # Sanity check on the read_bytes() harness itself.
    body = json.dumps({"kind": "ping"}).encode("utf-8")
    frame = read_bytes(struct.pack("!I", len(body)), body)
    assert frame == {"kind": "ping"}


def test_call_survives_garbage_reply_as_peer_unavailable():
    # End to end: a server that answers with framing garbage must surface
    # to the caller as PeerUnavailableError (retryable), not a hang or a
    # leaked json/struct exception.
    async def scenario():
        async def serve(reader, writer):
            await wire.read_frame(reader)
            writer.write(b"\x00\x00\x00\x08garbage!")
            await writer.drain()
            writer.close()

        server = await asyncio.start_server(serve, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            with pytest.raises(PeerUnavailableError):
                await asyncio.wait_for(
                    wire.call(
                        "127.0.0.1", port, "ping", peer_id=3,
                        timeout_ms=2000.0,
                    ),
                    timeout=5.0,
                )
        finally:
            server.close()
            await server.wait_closed()

    run(scenario())


def test_call_survives_mid_frame_death_as_peer_unavailable():
    async def scenario():
        async def serve(reader, writer):
            await wire.read_frame(reader)
            writer.write(struct.pack("!I", 1 << 20) + b"only-a-little")
            await writer.drain()
            writer.close()  # die with most of the frame unsent

        server = await asyncio.start_server(serve, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            with pytest.raises(PeerUnavailableError):
                await asyncio.wait_for(
                    wire.call(
                        "127.0.0.1", port, "ping", peer_id=4,
                        timeout_ms=2000.0,
                    ),
                    timeout=5.0,
                )
        finally:
            server.close()
            await server.wait_closed()

    run(scenario())


# -- trace envelope compatibility --------------------------------------------
#
# The optional "trace" request field must be pure upside: a real server
# answers identically whether the envelope is absent, well-formed, or
# garbage from a confused (or hostile) peer.  Only a well-formed, sampled
# envelope leaves a span fragment behind.


def with_live_server(scenario):
    """Run one async scenario against a freshly bound PeerServer."""
    from repro.rpc.server import PeerServer

    async def runner():
        server = PeerServer("peer-wire", SystemConfig(n_peers=4, seed=7))
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.close()

    return run(runner())


@pytest.mark.parametrize(
    "envelope",
    [
        "garbage-string",
        12,
        [1, 2],
        {},
        {"id": 7},
        {"id": "", "span": "x"},
        {"id": "ok-id", "span": 99},
    ],
)
def test_garbled_trace_envelope_degrades_to_untraced(envelope):
    # Every malformed envelope: the request succeeds exactly as if the
    # field were absent — never an error reply, never a dropped frame.
    async def scenario(server):
        reply = await wire.call(
            server.host, server.port, "hello",
            timeout_ms=2000.0, trace=envelope,
        )
        spans = await wire.call(
            server.host, server.port, "telemetry",
            {"spans_for": "ok-id"}, timeout_ms=2000.0,
        )
        return reply, spans

    reply, spans = with_live_server(scenario)
    assert reply["address"] == "peer-wire"
    # A garbled id ("ok-id" rides on a non-string span, which is dropped,
    # not fatal) may still trace; anything else must leave no fragment.
    if envelope != {"id": "ok-id", "span": 99}:
        assert spans["spans"] == []


def test_missing_trace_envelope_is_untraced_not_an_error():
    async def scenario(server):
        reply = await wire.call(
            server.host, server.port, "hello", timeout_ms=2000.0
        )
        depth = len(server.flight.spans_for("any"))
        return reply, depth

    reply, depth = with_live_server(scenario)
    assert reply["address"] == "peer-wire"
    assert depth == 0


def test_sampled_trace_envelope_leaves_a_fragment_behind():
    async def scenario(server):
        await wire.call(
            server.host, server.port, "hello", timeout_ms=2000.0,
            trace={"id": "trace-77", "span": "client-span-1",
                   "sampled": True},
        )
        return await wire.call(
            server.host, server.port, "telemetry",
            {"spans_for": "trace-77"}, timeout_ms=2000.0,
        )

    spans = with_live_server(scenario)["spans"]
    assert len(spans) == 1
    (fragment,) = spans
    assert fragment["name"] == "serve:hello"
    assert fragment["trace_id"] == "trace-77"
    assert fragment["parent_span_id"] == "client-span-1"
    assert fragment["node"] == "peer-wire"
    assert fragment["attrs"]["outcome"] == "ok"
    assert fragment["end_wall_ms"] >= fragment["start_wall_ms"]


def test_unsampled_trace_envelope_is_honoured():
    async def scenario(server):
        await wire.call(
            server.host, server.port, "hello", timeout_ms=2000.0,
            trace={"id": "trace-88", "sampled": False},
        )
        return await wire.call(
            server.host, server.port, "telemetry",
            {"spans_for": "trace-88"}, timeout_ms=2000.0,
        )

    assert with_live_server(scenario)["spans"] == []


def test_telemetry_snapshot_is_versioned_and_timestamped():
    # The --connect / scraper contract: version tag, node address, and
    # both capture clocks present on every full snapshot.
    async def scenario(server):
        await wire.call(server.host, server.port, "hello", timeout_ms=2000.0)
        return await wire.call(
            server.host, server.port, "telemetry", timeout_ms=2000.0
        )

    snapshot = with_live_server(scenario)
    assert snapshot["version"] == 1
    assert snapshot["node"] == "peer-wire"
    assert isinstance(snapshot["captured_mono_ms"], float)
    assert isinstance(snapshot["captured_wall_ms"], float)
    assert snapshot["queue_depth"] >= 0
    assert "census" in snapshot and "swim" in snapshot
    assert snapshot["flight"]["recorded"] >= 0
    # The metrics body is a registry snapshot: the hello we sent above is
    # already counted.
    names = {m["name"] for m in snapshot["metrics"]["metrics"]}
    assert "server.requests" in names


def test_call_maps_remote_error_types():
    async def scenario():
        async def serve(reader, writer):
            await wire.read_frame(reader)
            await wire.write_frame(
                writer,
                {
                    "id": 0,
                    "ok": False,
                    "error": "unknown message kind 'bogus'",
                    "error_type": "ConfigError",
                },
            )
            writer.close()

        server = await asyncio.start_server(serve, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        try:
            with pytest.raises(ConfigError):
                await wire.call("127.0.0.1", port, "bogus")
        finally:
            server.close()
            await server.wait_closed()

    run(scenario())
