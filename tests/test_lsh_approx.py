"""Tests for the approximate (single-iteration) min-wise family."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import HashFamilyError
from repro.lsh.approx import ApproxMinWiseFamily, ApproxMinWisePermutation
from repro.lsh.bitshuffle import MinWiseFamily, shuffle_once
from repro.util.rng import derive_rng


class TestValidation:
    def test_key_needs_half_ones(self):
        with pytest.raises(HashFamilyError):
            ApproxMinWisePermutation(0b1, width=8)
        ApproxMinWisePermutation(0b00001111, width=8)

    def test_key_must_fit_width(self):
        with pytest.raises(HashFamilyError):
            ApproxMinWisePermutation(1 << 8, width=8)

    def test_width_must_be_power_of_two(self):
        with pytest.raises(HashFamilyError):
            ApproxMinWiseFamily(width=10)


class TestSemantics:
    def test_is_exactly_first_iteration_of_full_network(self, rng):
        """The approx permutation equals shuffle_once with the same key."""
        perm = ApproxMinWiseFamily(width=32).sample(rng)
        for x in [0, 1, 1000, 99999, (1 << 32) - 1]:
            assert perm.apply(x) == shuffle_once(x, perm.key, 32, 32)

    def test_bijective_on_8bit_space(self, rng):
        perm = ApproxMinWiseFamily(width=8).sample(rng)
        assert {perm.apply(x) for x in range(256)} == set(range(256))

    def test_apply_array_matches_scalar(self, rng):
        perm = ApproxMinWiseFamily(width=32).sample(rng)
        xs = np.arange(0, 3000, 3, dtype=np.uint64)
        fast = perm.apply_array(xs)
        slow = np.array([perm.apply(int(x)) for x in xs], dtype=np.uint64)
        assert (fast == slow).all()

    def test_single_key_representation(self, rng):
        """Paper: "representable with a single 32-bit integer key"."""
        perm = ApproxMinWiseFamily(width=32).sample(rng)
        assert 0 <= perm.key < (1 << 32)
        rebuilt = ApproxMinWisePermutation(perm.key, width=32)
        for x in (0, 17, 424242):
            assert rebuilt.apply(x) == perm.apply(x)

    def test_deterministic_sampling(self):
        a = ApproxMinWiseFamily().sample(derive_rng(11, "k"))
        b = ApproxMinWiseFamily().sample(derive_rng(11, "k"))
        assert a.key == b.key

    def test_matches_full_network_when_given_same_first_key(self, rng):
        """On inputs whose bits stay inside one half after iteration one...
        (general equivalence does not hold; we check the first-level key
        placement agrees with the full network's first level)."""
        full = MinWiseFamily(width=8).sample(rng)
        approx = ApproxMinWisePermutation(full.keys[0], width=8)
        for x in range(256):
            assert approx.apply(x) == shuffle_once(x, full.keys[0], 8, 8)
