"""Tests for bit-level helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitops import (
    bit_length_of_space,
    extract_bits,
    is_power_of_two,
    ones_positions,
    popcount,
    random_key_with_ones,
    reverse_bits,
)


def test_popcount_known_values():
    assert popcount(0) == 0
    assert popcount(0b1011) == 3
    assert popcount((1 << 32) - 1) == 32


def test_popcount_rejects_negative():
    with pytest.raises(ValueError):
        popcount(-1)


@given(st.integers(min_value=0, max_value=(1 << 62) - 1))
def test_popcount_matches_bin_count(x):
    assert popcount(x) == bin(x).count("1")


def test_ones_positions_order_and_content():
    assert ones_positions(0b1010, 4) == [1, 3]
    assert ones_positions(0, 8) == []
    assert ones_positions(0b11111111, 8) == list(range(8))


def test_extract_bits_preserves_order():
    # bits at positions 2 and 3 of 0b1100 are (1, 1) -> 0b11
    assert extract_bits(0b1100, [2, 3]) == 0b11
    # order of positions controls output order
    assert extract_bits(0b0100, [2, 0]) == 0b01
    assert extract_bits(0b0100, [0, 2]) == 0b10


@given(st.integers(min_value=0, max_value=255))
def test_extract_bits_identity(x):
    assert extract_bits(x, list(range(8))) == x


def test_reverse_bits():
    assert reverse_bits(0b0001, 4) == 0b1000
    assert reverse_bits(0b1101, 4) == 0b1011


@given(st.integers(min_value=0, max_value=(1 << 16) - 1))
def test_reverse_bits_involution(x):
    assert reverse_bits(reverse_bits(x, 16), 16) == x


def test_is_power_of_two():
    assert [n for n in range(1, 70) if is_power_of_two(n)] == [1, 2, 4, 8, 16, 32, 64]
    assert not is_power_of_two(0)
    assert not is_power_of_two(-4)


def test_bit_length_of_space():
    assert bit_length_of_space(1) == 1
    assert bit_length_of_space(2) == 1
    assert bit_length_of_space(3) == 2
    assert bit_length_of_space(1024) == 10
    assert bit_length_of_space(1025) == 11
    with pytest.raises(ValueError):
        bit_length_of_space(0)


def test_random_key_with_ones_properties():
    rng = np.random.default_rng(0)
    for width, ones in ((8, 4), (32, 16), (4, 2), (2, 1)):
        key = random_key_with_ones(width, ones, rng)
        assert 0 <= key < (1 << width)
        assert popcount(key) == ones


def test_random_key_with_ones_bounds():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        random_key_with_ones(8, 9, rng)
    with pytest.raises(ValueError):
        random_key_with_ones(8, -1, rng)


def test_random_key_with_ones_varies(rng):
    keys = {random_key_with_ones(32, 16, rng) for _ in range(20)}
    assert len(keys) > 1
