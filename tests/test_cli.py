"""Tests for the command-line interface."""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import build_parser, main


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.peers == 200
        assert args.overlay == "chord"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["flood"])


class TestDemo:
    def test_demo_runs(self):
        code, text = run_cli("demo", "--peers", "50", "--seed", "3")
        assert code == 0
        assert "query [30, 50]" in text
        assert "query [30, 49]" in text

    def test_demo_on_can(self):
        code, text = run_cli("demo", "--peers", "40", "--overlay", "can")
        assert code == 0
        assert "matched" in text


class TestSql:
    def test_explain(self):
        code, text = run_cli(
            "sql",
            "SELECT name FROM Patient WHERE age BETWEEN 30 AND 50",
            "--explain",
            "--patients",
            "50",
        )
        assert code == 0
        assert "Project" in text and "Select" in text

    def test_execute_with_repeat_shows_caching(self):
        code, text = run_cli(
            "sql",
            "SELECT name FROM Patient WHERE age BETWEEN 30 AND 50",
            "--patients",
            "100",
            "--peers",
            "30",
            "--repeat",
            "2",
        )
        assert code == 0
        assert "run 1:" in text and "run 2:" in text
        assert "source accesses: 1" in text  # the repeat came from cache

    def test_sql_error_is_reported(self, capsys):
        code, _ = run_cli("sql", "SELECT FROM WHERE", "--patients", "10")
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestSimulate:
    def test_simulate_reports_phase_latencies(self):
        code, text = run_cli(
            "simulate",
            "--peers", "60",
            "--queries", "10",
            "--warm-queries", "20",
            "--seed", "3",
        )
        assert code == 0
        assert "p95 ms" in text
        assert "route" in text and "store" in text
        assert "mean recall" in text
        assert "traffic:" in text

    def test_simulate_with_faults_counts_them(self):
        code, text = run_cli(
            "simulate",
            "--peers", "60",
            "--queries", "10",
            "--warm-queries", "20",
            "--drop", "0.3",
            "--fail", "0.2",
            "--timeout-ms", "300",
            "--seed", "3",
        )
        assert code == 0
        assert "crashed 12/60 peers" in text
        assert "dropped" in text

    def test_simulate_with_replication_and_repair(self):
        code, text = run_cli(
            "simulate",
            "--peers", "60",
            "--queries", "10",
            "--warm-queries", "20",
            "--fail", "0.2",
            "--replicas", "3",
            "--repair-interval", "2000",
            "--timeout-ms", "300",
            "--seed", "3",
        )
        assert code == 0
        assert "replicas=3" in text
        assert "failovers" in text
        assert "repair:" in text and "rounds" in text

    def test_simulate_rejects_bad_replicas(self, capsys):
        code, _ = run_cli("simulate", "--peers", "20", "--replicas", "0")
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_simulate_rejects_negative_repair_interval(self, capsys):
        code, _ = run_cli(
            "simulate", "--peers", "20", "--repair-interval", "-5"
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_simulate_rejects_bad_probability(self, capsys):
        code, _ = run_cli("simulate", "--peers", "20", "--drop", "1.5")
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_simulate_rejects_inverted_latency_bounds(self, capsys):
        code, _ = run_cli("simulate", "--peers", "20", "--latency-ms", "100", "10")
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestSimulateOverload:
    def test_protections_run_and_are_summarized(self):
        code, text = run_cli(
            "simulate",
            "--peers", "40",
            "--queries", "8",
            "--warm-queries", "20",
            "--replicas", "3",
            "--peer-queue", "4",
            "--service-rate", "50",
            "--hedge",
            "--quorum", "3",
            "--breaker",
            "--adaptive-timeout",
            "--slow", "0.2",
            "--slow-factor", "8",
            "--seed", "3",
        )
        assert code == 0
        assert "overload:" in text
        assert "slow 8/40 peers" in text
        assert "quorum=3" in text

    def test_default_run_has_no_overload_line(self):
        code, text = run_cli(
            "simulate", "--peers", "40", "--queries", "5",
            "--warm-queries", "10", "--seed", "3",
        )
        assert code == 0
        assert "overload:" not in text
        assert "busy-shed" not in text

    def test_all_queries_failing_warns_and_exits_nonzero(self, capsys):
        # A single service slot that takes ~3 virtual hours per request:
        # the first request parks in it forever and everything else sheds.
        code, text = run_cli(
            "simulate",
            "--peers", "30",
            "--queries", "3",
            "--warm-queries", "1",
            "--peer-queue", "1",
            "--service-rate", "0.0001",
            "--timeout-ms", "50",
            "--seed", "3",
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "warning: all 3 queries failed" in err
        assert "mean recall" in text  # the report still renders

    def test_rejects_bad_slow_fraction(self, capsys):
        code, _ = run_cli("simulate", "--peers", "20", "--slow", "1.5")
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_rejects_bad_slow_factor(self, capsys):
        code, _ = run_cli(
            "simulate", "--peers", "20", "--slow", "0.1", "--slow-factor", "0.5"
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_rejects_queue_without_service_rate(self, capsys):
        code, _ = run_cli("simulate", "--peers", "20", "--peer-queue", "4")
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestInfo:
    def test_info_prints_defaults(self):
        code, text = run_cli("info")
        assert code == 0
        assert "k=20" in text
        assert "match probability" in text


class TestExperiments:
    def test_experiments_quick_writes_reports(self, tmp_path, monkeypatch):
        # Restrict to a fast subset by monkeypatching the job list is
        # intrusive; instead just verify dispatch with a tiny custom out dir
        # and the quick scale, trusting experiment tests for content.
        import repro.experiments.runall as runall_module

        called = {}

        def fake_run_all(scale: str, results_dir) -> None:
            called["scale"] = scale
            called["dir"] = results_dir

        monkeypatch.setattr(runall_module, "run_all", fake_run_all)
        code, _ = run_cli("experiments", "--scale", "quick", "--out", str(tmp_path))
        assert code == 0
        assert called == {"scale": "quick", "dir": str(tmp_path)}


class TestHealth:
    def test_health_clean_system(self):
        code, text = run_cli(
            "health", "--peers", "60", "--queries", "30", "--replicas", "3"
        )
        assert code == 0
        assert "Health: OK" in text
        assert "Load skew" in text

    def test_health_crash_and_repair_round_trip(self):
        code, text = run_cli(
            "health",
            "--peers", "60",
            "--queries", "30",
            "--replicas", "3",
            "--crash", "0.2",
            "--repair",
        )
        assert code == 0
        assert "crashed 12/60 peers" in text
        assert "Health: VIOLATIONS" in text
        assert "replica-deficit" in text
        assert "re-audit:" in text
        # The final report (post-repair) is clean again.
        assert text.rstrip().count("Health:") == 2
        assert "Health: OK" in text.split("re-audit:")[1]

    def test_health_json_and_jsonl_outputs(self, tmp_path):
        json_path = tmp_path / "health.json"
        jsonl_path = tmp_path / "health.jsonl"
        code, text = run_cli(
            "health",
            "--peers", "40",
            "--queries", "20",
            "--json", str(json_path),
            "--jsonl", str(jsonl_path),
        )
        assert code == 0
        document = json.loads(json_path.read_text())
        assert document["health"]["ok"] is True
        assert document["health"]["n_peers"] == 40
        assert {m["name"] for m in document["metrics"]["metrics"]} >= {
            "health.node.partitions",
            "health.replica_deficit",
        }
        lines = jsonl_path.read_text().strip().splitlines()
        assert json.loads(lines[-1])["health"]["ok"] is True

    def test_health_on_can_overlay(self):
        code, text = run_cli(
            "health", "--peers", "40", "--queries", "20", "--overlay", "can"
        )
        assert code == 0
        assert "Health: OK" in text

    def test_health_rejects_bad_crash_fraction(self, capsys):
        code, _ = run_cli("health", "--peers", "20", "--crash", "1.0")
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_health_repair_requires_chord(self, capsys):
        code, _ = run_cli(
            "health", "--peers", "20", "--overlay", "can", "--repair"
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestOverlaySelection:
    def test_simulate_on_can(self):
        code, text = run_cli(
            "simulate", "--peers", "30", "--queries", "5", "--overlay", "can"
        )
        assert code == 0
        assert "traffic:" in text

    def test_simulate_can_rejects_replication(self, capsys):
        code, _ = run_cli(
            "simulate", "--peers", "30", "--overlay", "can", "--replicas", "3"
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_simulate_can_rejects_repair(self, capsys):
        code, _ = run_cli(
            "simulate", "--peers", "30", "--overlay", "can",
            "--repair-interval", "1000",
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_metrics_on_can(self):
        code, text = run_cli(
            "metrics", "--peers", "30", "--queries", "5", "--overlay", "can"
        )
        assert code == 0
        assert "Metrics after workload" in text


class TestSimulateSampling:
    def test_sample_interval_with_health_report(self):
        code, text = run_cli(
            "simulate",
            "--peers", "40",
            "--queries", "10",
            "--replicas", "3",
            "--sample-interval", "500",
            "--health",
        )
        assert code == 0
        assert "sampler:" in text
        assert "samples at 500 ms intervals" in text
        assert "Health: OK" in text

    def test_negative_sample_interval_rejected(self, capsys):
        code, _ = run_cli(
            "simulate", "--peers", "20", "--sample-interval", "-1"
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_verbose_flag_accepted(self):
        code, _ = run_cli("-v", "demo", "--peers", "30")
        assert code == 0
