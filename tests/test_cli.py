"""Tests for the command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.peers == 200
        assert args.overlay == "chord"

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["flood"])


class TestDemo:
    def test_demo_runs(self):
        code, text = run_cli("demo", "--peers", "50", "--seed", "3")
        assert code == 0
        assert "query [30, 50]" in text
        assert "query [30, 49]" in text

    def test_demo_on_can(self):
        code, text = run_cli("demo", "--peers", "40", "--overlay", "can")
        assert code == 0
        assert "matched" in text


class TestSql:
    def test_explain(self):
        code, text = run_cli(
            "sql",
            "SELECT name FROM Patient WHERE age BETWEEN 30 AND 50",
            "--explain",
            "--patients",
            "50",
        )
        assert code == 0
        assert "Project" in text and "Select" in text

    def test_execute_with_repeat_shows_caching(self):
        code, text = run_cli(
            "sql",
            "SELECT name FROM Patient WHERE age BETWEEN 30 AND 50",
            "--patients",
            "100",
            "--peers",
            "30",
            "--repeat",
            "2",
        )
        assert code == 0
        assert "run 1:" in text and "run 2:" in text
        assert "source accesses: 1" in text  # the repeat came from cache

    def test_sql_error_is_reported(self, capsys):
        code, _ = run_cli("sql", "SELECT FROM WHERE", "--patients", "10")
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestSimulate:
    def test_simulate_reports_phase_latencies(self):
        code, text = run_cli(
            "simulate",
            "--peers", "60",
            "--queries", "10",
            "--warm-queries", "20",
            "--seed", "3",
        )
        assert code == 0
        assert "p95 ms" in text
        assert "route" in text and "store" in text
        assert "mean recall" in text
        assert "traffic:" in text

    def test_simulate_with_faults_counts_them(self):
        code, text = run_cli(
            "simulate",
            "--peers", "60",
            "--queries", "10",
            "--warm-queries", "20",
            "--drop", "0.3",
            "--fail", "0.2",
            "--timeout-ms", "300",
            "--seed", "3",
        )
        assert code == 0
        assert "crashed 12/60 peers" in text
        assert "dropped" in text

    def test_simulate_with_replication_and_repair(self):
        code, text = run_cli(
            "simulate",
            "--peers", "60",
            "--queries", "10",
            "--warm-queries", "20",
            "--fail", "0.2",
            "--replicas", "3",
            "--repair-interval", "2000",
            "--timeout-ms", "300",
            "--seed", "3",
        )
        assert code == 0
        assert "replicas=3" in text
        assert "failovers" in text
        assert "repair:" in text and "rounds" in text

    def test_simulate_rejects_bad_replicas(self, capsys):
        code, _ = run_cli("simulate", "--peers", "20", "--replicas", "0")
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_simulate_rejects_negative_repair_interval(self, capsys):
        code, _ = run_cli(
            "simulate", "--peers", "20", "--repair-interval", "-5"
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_simulate_rejects_bad_probability(self, capsys):
        code, _ = run_cli("simulate", "--peers", "20", "--drop", "1.5")
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_simulate_rejects_inverted_latency_bounds(self, capsys):
        code, _ = run_cli("simulate", "--peers", "20", "--latency-ms", "100", "10")
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestInfo:
    def test_info_prints_defaults(self):
        code, text = run_cli("info")
        assert code == 0
        assert "k=20" in text
        assert "match probability" in text


class TestExperiments:
    def test_experiments_quick_writes_reports(self, tmp_path, monkeypatch):
        # Restrict to a fast subset by monkeypatching the job list is
        # intrusive; instead just verify dispatch with a tiny custom out dir
        # and the quick scale, trusting experiment tests for content.
        import repro.experiments.runall as runall_module

        called = {}

        def fake_run_all(scale: str, results_dir) -> None:
            called["scale"] = scale
            called["dir"] = results_dir

        monkeypatch.setattr(runall_module, "run_all", fake_run_all)
        code, _ = run_cli("experiments", "--scale", "quick", "--out", str(tmp_path))
        assert code == 0
        assert called == {"scale": "quick", "dir": str(tmp_path)}
