"""Edge-case tests for the assembled system: eviction, latency, handlers."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.errors import ConfigError
from repro.net.latency import ConstantLatency
from repro.ranges.interval import IntRange
from repro.workloads.generators import UniformRangeWorkload


class TestSystemLevelEviction:
    def test_capacity_respected_under_load(self):
        system = RangeSelectionSystem(
            SystemConfig(n_peers=10, seed=101, max_partitions_per_peer=5)
        )
        for query in UniformRangeWorkload(system.config.domain, 300, seed=102):
            system.query(query)
        for store in system.stores.values():
            assert store.partition_count <= 5

    def test_eviction_can_forget_partitions(self):
        """With tiny caches, a previously-exact query can miss again — the
        price of bounded storage."""
        system = RangeSelectionSystem(
            SystemConfig(n_peers=4, seed=103, max_partitions_per_peer=2)
        )
        target = IntRange(100, 200)
        system.query(target)
        # Flood with unrelated ranges to push the target out everywhere.
        for start in range(0, 900, 25):
            system.query(IntRange(start, start + 10))
        result = system.query(target)
        # Either it survived in some bucket or it was evicted; both are
        # legal, but the store sizes must still respect the cap.
        assert result.query == target
        for store in system.stores.values():
            assert store.partition_count <= 2

    def test_unbounded_by_default(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=4, seed=104))
        for query in UniformRangeWorkload(system.config.domain, 200, seed=105):
            system.query(query)
        assert system.total_placements() > 4 * 5  # way past any tiny cap


class TestLatencyAccounting:
    def test_latency_accumulates_when_configured(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=20, seed=106))
        system.network.latency = ConstantLatency(2.5)
        system.query(IntRange(10, 60))
        # 5 match requests + 5 stores at 2.5 ms each, plus every routing
        # hop at 2.5 ms (route edges carry real wire time too).
        route_hops = system.network.stats.by_kind["route-hop"]
        expected = 2.5 * (10 + route_hops)
        assert system.network.stats.latency_ms == pytest.approx(expected)
        assert route_hops > 0


class TestHandlerErrors:
    def test_unknown_message_kind_rejected(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=3, seed=107))
        some_peer = system.router.node_ids[0]
        with pytest.raises(ConfigError):
            system.network.send(some_peer, some_peer, "gossip", payload=None)

    def test_fetch_partition_for_unknown_descriptor_returns_none(self):
        from repro.db.partition import PartitionDescriptor

        system = RangeSelectionSystem(SystemConfig(n_peers=3, seed=108))
        peer = system.router.node_ids[0]
        ghost = PartitionDescriptor("R", "value", IntRange(1, 2))
        answer = system.network.send(
            peer, peer, "fetch-partition", payload=(42, ghost)
        )
        assert answer is None


class TestLocateWithoutStoring:
    def test_locate_is_read_only(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=10, seed=109))
        before = system.total_placements()
        system.locate(IntRange(50, 150))
        assert system.total_placements() == before

    def test_store_partition_explicit_counts(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=10, seed=110))
        placed = system.store_partition(IntRange(50, 150))
        assert 1 <= placed <= 5
        assert system.counters.placements == placed
        again = system.store_partition(IntRange(50, 150))
        assert again == 0  # all duplicates
