"""Tests for the SQL-over-P2P front end."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.p2pdb import P2PDatabase
from repro.core.system import RangeSelectionSystem
from repro.db.catalog import medical_catalog
from repro.db.plan.executor import SourceProvider, execute_plan
from repro.db.plan.planner import plan_select
from repro.db.sql.parser import parse_select
from repro.ranges.domain import Domain

PAPER_SQL = (
    "SELECT Prescription.prescription FROM Patient, Diagnosis, Prescription "
    "WHERE age BETWEEN 30 AND 50 AND diagnosis = 'Glaucoma' "
    "AND Patient.patient_id = Diagnosis.patient_id "
    "AND date BETWEEN DATE '2000-01-01' AND DATE '2002-12-31' "
    "AND Diagnosis.prescription_id = Prescription.prescription_id"
)


@pytest.fixture
def db():
    catalog = medical_catalog(n_patients=400, n_physicians=8)
    system = RangeSelectionSystem(
        SystemConfig(
            n_peers=40,
            seed=31,
            accelerate=False,
            domain=Domain("value", 0, 10**6),
        )
    )
    return P2PDatabase(catalog, system)


class TestCorrectness:
    def test_first_execution_matches_source_only_baseline(self, db):
        baseline_catalog = medical_catalog(n_patients=400, n_physicians=8)
        plan = plan_select(parse_select(PAPER_SQL), baseline_catalog.schema)
        baseline = execute_plan(
            plan, baseline_catalog.schema, SourceProvider(baseline_catalog)
        )
        via_p2p = db.execute(PAPER_SQL)
        assert sorted(via_p2p.rows) == sorted(baseline.rows)

    def test_repeat_execution_identical_and_cached(self, db):
        first = db.execute(PAPER_SQL)
        accesses_after_first = db.catalog.source_accesses
        second = db.execute(PAPER_SQL)
        assert sorted(first.rows) == sorted(second.rows)
        assert db.catalog.source_accesses == accesses_after_first
        assert set(second.result.stats.leaf_origins.values()) == {"cache"}

    def test_similar_query_served_from_cache(self, db):
        db.execute(PAPER_SQL)
        accesses = db.catalog.source_accesses
        narrower = PAPER_SQL.replace("BETWEEN 30 AND 50", "BETWEEN 30 AND 49")
        report = db.execute(narrower)
        assert db.catalog.source_accesses == accesses
        assert report.coverage == 1.0
        # Results must respect the narrower predicate even though the cached
        # partition is broader: row-level filtering happens locally.
        assert all(isinstance(r[0], str) for r in report.rows)

    def test_cached_broader_partition_filtered_correctly(self, db):
        broad = "SELECT age FROM Patient WHERE age BETWEEN 20 AND 60"
        narrow = "SELECT age FROM Patient WHERE age BETWEEN 30 AND 50"
        db.execute(broad)
        result = db.execute(narrow)
        assert all(30 <= row[0] <= 60 for row in result.rows)
        assert all(30 <= row[0] <= 50 for row in result.rows)


class TestApproximateMode:
    def test_no_fallback_returns_partial_answers(self):
        catalog = medical_catalog(n_patients=400)
        system = RangeSelectionSystem(
            SystemConfig(
                n_peers=40,
                seed=77,
                accelerate=False,
                matcher="containment",
                domain=Domain("value", 0, 10**6),
            )
        )
        db = P2PDatabase(catalog, system, fallback_to_source=False)
        warm = "SELECT age FROM Patient WHERE age BETWEEN 30 AND 50"
        first = db.execute(warm)
        assert set(first.result.stats.leaf_origins.values()) == {"source+store"}
        # A slightly narrower query: cached partition contains it fully.
        narrower = "SELECT age FROM Patient WHERE age BETWEEN 31 AND 50"
        second = db.execute(narrower)
        assert set(second.result.stats.leaf_origins.values()) == {"cache"}
        assert second.coverage == 1.0


class TestEqualityPath:
    def test_string_equality_uses_exact_dht(self, db):
        sql = "SELECT patient_id FROM Diagnosis WHERE diagnosis = 'Diabetes'"
        first = db.execute(sql)
        assert first.result.stats.leaf_origins["Diagnosis"] == "source+store"
        second = db.execute(sql)
        assert second.result.stats.leaf_origins["Diagnosis"] == "cache"
        assert sorted(first.rows) == sorted(second.rows)

    def test_int_equality_goes_through_range_path(self, db):
        sql = "SELECT name FROM Patient WHERE age = 30"
        report = db.execute(sql)
        # age = 30 becomes the point range [30, 30], cached like any range.
        again = db.execute(sql)
        assert sorted(report.rows) == sorted(again.rows)
        assert again.result.stats.leaf_origins["Patient"] == "cache"


class TestReporting:
    def test_summary_mentions_origins(self, db):
        report = db.execute("SELECT name FROM Patient WHERE age >= 110")
        assert "Patient" in report.summary()
        assert "rows" in report.summary()

    def test_explain_shows_pushdown(self, db):
        text = db.explain(PAPER_SQL)
        assert "Select[Patient" in text
        assert "Join[" in text


class TestStatisticsIntegration:
    def test_analyze_changes_join_order_not_results(self, db):
        sql = (
            "SELECT Prescription.prescription FROM Prescription, Patient, "
            "Diagnosis WHERE age BETWEEN 30 AND 50 "
            "AND diagnosis = 'Glaucoma' "
            "AND Patient.patient_id = Diagnosis.patient_id "
            "AND Diagnosis.prescription_id = Prescription.prescription_id"
        )
        before = db.execute(sql)
        db.analyze()
        after = db.execute(sql)
        assert sorted(before.rows) == sorted(after.rows)
        # With statistics the plan starts from a selective relation, not
        # from the FROM-first Prescription.
        explained = db.explain(sql)
        deepest = [
            line for line in explained.splitlines() if "Select[" in line
        ]
        assert deepest  # plan renders leaves


class TestDescriptorOnlyEntries:
    def test_rowless_cache_entry_falls_back_to_source(self):
        """A partition stored without tuples (simulation-mode store) cannot
        answer a database query; the provider must fall through to the
        source instead of returning an empty result."""
        from repro.ranges.interval import IntRange

        catalog = medical_catalog(n_patients=200)
        system = RangeSelectionSystem(
            SystemConfig(
                n_peers=20,
                seed=88,
                accelerate=False,
                matcher="containment",
                domain=Domain("value", 0, 10**6),
            )
        )
        # Simulation-mode store of the *exact* query range: the locate
        # step will certainly find it, but it carries no tuples.
        system.store_partition(IntRange(30, 50), "Patient", "age")
        db = P2PDatabase(catalog, system)
        report = db.execute(
            "SELECT age FROM Patient WHERE age BETWEEN 30 AND 50"
        )
        assert report.coverage == 1.0
        assert len(report.rows) > 0
        assert catalog.source_accesses >= 1


class TestPartialCoverageReporting:
    def test_partial_answer_reports_true_coverage(self):
        """Approximate mode: a partially covering cached partition yields a
        partial row set, and the report's coverage reflects it."""
        from repro.db.partition import Partition
        from repro.ranges.interval import IntRange

        catalog = medical_catalog(n_patients=300)
        system = RangeSelectionSystem(
            SystemConfig(
                n_peers=20,
                seed=89,
                accelerate=False,
                matcher="containment",
                domain=Domain("value", 0, 10**6),
            )
        )
        # Plant a narrower partition *with rows* in the buckets that the
        # query range [30, 50] hashes to, so the locate step finds it.
        narrow = IntRange(30, 45)
        rows = catalog.relation("Patient").select_range("age", narrow)
        partition = Partition.from_rows("Patient", "age", narrow, rows)
        identifiers = system.identifiers_for(IntRange(30, 50))
        system.store_partition(
            narrow, "Patient", "age", partition=partition,
            identifiers=identifiers,
        )
        db = P2PDatabase(catalog, system, fallback_to_source=False)
        report = db.execute(
            "SELECT age FROM Patient WHERE age BETWEEN 30 AND 50"
        )
        assert report.result.stats.leaf_origins["Patient"] == "cache"
        assert report.coverage == pytest.approx(16 / 21)
        assert all(30 <= row[0] <= 45 for row in report.rows)
        assert catalog.source_accesses == 0
