"""Tests for the statistics toolkit."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import (
    DiscretePdf,
    Histogram,
    cdf_points,
    percentile,
    summarize,
)


class TestPercentile:
    def test_median_of_odd_list(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_extremes(self):
        values = [10, 20, 30]
        assert percentile(values, 0) == 10
        assert percentile(values, 100) == 30

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestSummarize:
    def test_basic_fields(self):
        stats = summarize(range(1, 101))
        assert stats.count == 100
        assert stats.mean == pytest.approx(50.5)
        assert stats.minimum == 1
        assert stats.maximum == 100
        assert stats.p01 <= stats.p50 <= stats.p99

    def test_as_row_is_p01_mean_p99(self):
        stats = summarize([5.0] * 10)
        assert stats.as_row() == (5.0, 5.0, 5.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    @given(st.lists(st.floats(0, 1000), min_size=1, max_size=50))
    def test_percentiles_bracket_mean(self, values):
        stats = summarize(values)
        assert stats.minimum - 1e-9 <= stats.mean <= stats.maximum + 1e-9


class TestHistogram:
    def test_binning_boundaries(self):
        h = Histogram(n_bins=10)
        h.add(0.0)
        h.add(0.05)
        h.add(0.95)
        h.add(1.0)  # the top value lands in the last bin
        assert h.counts[0] == 2
        assert h.counts[9] == 2

    def test_percentages_include_misses_in_denominator(self):
        h = Histogram(n_bins=2)
        h.add(0.9)
        h.add_miss()
        assert h.total == 2
        assert h.percentages() == [0.0, 50.0]
        assert h.miss_percentage() == 50.0

    def test_rejects_out_of_range(self):
        h = Histogram()
        with pytest.raises(ValueError):
            h.add(1.5)
        with pytest.raises(ValueError):
            h.add(-0.1)

    def test_rejects_zero_bins(self):
        with pytest.raises(ValueError):
            Histogram(n_bins=0)

    def test_bin_edges_cover_unit_interval(self):
        h = Histogram(n_bins=4)
        edges = h.bin_edges()
        assert edges[0][0] == 0.0
        assert edges[-1][1] == pytest.approx(1.0)
        for (a, b), (c, _) in zip(edges, edges[1:]):
            assert b == pytest.approx(c)

    @given(st.lists(st.floats(0, 1), min_size=1, max_size=100))
    def test_percentages_sum_to_100(self, values):
        h = Histogram()
        for v in values:
            h.add(v)
        assert sum(h.percentages()) == pytest.approx(100.0)


class TestDiscretePdf:
    def test_probabilities_normalize(self):
        pdf = DiscretePdf()
        for value in [1, 1, 2, 3, 3, 3]:
            pdf.add(value)
        probs = pdf.probabilities()
        assert probs[3] == pytest.approx(0.5)
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_mean(self):
        pdf = DiscretePdf()
        for value in [2, 4]:
            pdf.add(value)
        assert pdf.mean() == 3.0

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError):
            DiscretePdf().mean()

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DiscretePdf().add(-1)


class TestCdfPoints:
    def test_survival_semantics(self):
        points = dict(cdf_points([1.0, 0.5, 0.0], [1.0, 0.5, 0.0]))
        assert points[1.0] == pytest.approx(100.0 / 3)
        assert points[0.5] == pytest.approx(200.0 / 3)
        assert points[0.0] == pytest.approx(100.0)

    def test_empty_values_give_zero(self):
        assert cdf_points([], [0.5]) == [(0.5, 0.0)]

    def test_monotone_in_decreasing_grid(self):
        values = [0.1, 0.4, 0.9, 1.0]
        grid = [1.0, 0.75, 0.5, 0.25, 0.0]
        ys = [y for _, y in cdf_points(values, grid)]
        assert ys == sorted(ys)
