"""Tests for workload generators and traces."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, InvalidRangeError
from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange
from repro.workloads import (
    ClusteredRangeWorkload,
    UniformRangeWorkload,
    WorkloadTrace,
    ZipfRangeWorkload,
)

DOMAIN = Domain("value", 0, 1000)


class TestUniform:
    def test_count_and_bounds(self):
        wl = UniformRangeWorkload(DOMAIN, count=500, seed=1)
        ranges = wl.ranges()
        assert len(ranges) == 500
        assert all(0 <= r.start <= r.end <= 1000 for r in ranges)

    def test_deterministic(self):
        a = UniformRangeWorkload(DOMAIN, count=100, seed=1).ranges()
        b = UniformRangeWorkload(DOMAIN, count=100, seed=1).ranges()
        assert a == b

    def test_seed_changes_stream(self):
        a = UniformRangeWorkload(DOMAIN, count=100, seed=1).ranges()
        b = UniformRangeWorkload(DOMAIN, count=100, seed=2).ranges()
        assert a != b

    def test_repetitions_in_paper_regime(self):
        """The paper reports ~0.2% repetitions in 10k uniform ranges; ours
        should be below ~2% (the birthday-bound regime)."""
        wl = UniformRangeWorkload(DOMAIN, count=10_000, seed=3)
        assert wl.repetition_fraction() < 0.02

    def test_invalid_count(self):
        with pytest.raises(ConfigError):
            UniformRangeWorkload(DOMAIN, count=0, seed=1)

    def test_mean_width_near_third_of_domain(self):
        """|end - start| of two uniform draws averages ~domain/3."""
        wl = UniformRangeWorkload(DOMAIN, count=5000, seed=4)
        mean_width = sum(len(r) for r in wl) / 5000
        assert 280 < mean_width < 390


class TestZipf:
    def test_draws_come_from_pool(self):
        wl = ZipfRangeWorkload(DOMAIN, count=500, seed=5, pool_size=50)
        distinct = set(wl.ranges())
        assert len(distinct) <= 50

    def test_skew_produces_repeats(self):
        wl = ZipfRangeWorkload(DOMAIN, count=1000, seed=6, pool_size=500)
        assert wl.repetition_fraction() > 0.3

    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            ZipfRangeWorkload(DOMAIN, count=10, seed=1, pool_size=0)
        with pytest.raises(ConfigError):
            ZipfRangeWorkload(DOMAIN, count=10, seed=1, exponent=1.0)


class TestClustered:
    def test_ranges_near_cluster_width(self):
        wl = ClusteredRangeWorkload(
            DOMAIN, count=300, seed=7, n_clusters=4, base_width=100, jitter=5
        )
        for r in wl:
            assert len(r) <= 100 + 2 * 5 + 1
        assert all(0 <= r.start <= r.end <= 1000 for r in wl)

    def test_similar_but_not_identical(self):
        wl = ClusteredRangeWorkload(
            DOMAIN, count=500, seed=8, n_clusters=2, jitter=10
        )
        distinct = set(wl.ranges())
        assert 2 < len(distinct) < 500

    def test_parameter_validation(self):
        with pytest.raises(ConfigError):
            ClusteredRangeWorkload(DOMAIN, count=10, seed=1, n_clusters=0)


class TestTrace:
    def test_roundtrip_through_file(self, tmp_path):
        trace = WorkloadTrace(UniformRangeWorkload(DOMAIN, 50, seed=9))
        path = tmp_path / "trace.txt"
        trace.save(path)
        assert WorkloadTrace.load(path) == trace

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2 3\n")
        with pytest.raises(InvalidRangeError):
            WorkloadTrace.load(path)

    def test_warmup_split(self):
        trace = WorkloadTrace(IntRange(i, i + 1) for i in range(10))
        warmup, measured = trace.warmup_split(0.2)
        assert len(warmup) == 2 and len(measured) == 8
        assert measured[0] == IntRange(2, 3)

    def test_warmup_split_validation(self):
        trace = WorkloadTrace([IntRange(0, 1)])
        with pytest.raises(InvalidRangeError):
            trace.warmup_split(1.0)

    def test_indexing(self):
        trace = WorkloadTrace([IntRange(0, 1), IntRange(2, 3)])
        assert trace[1] == IntRange(2, 3)
        assert len(trace) == 2
