"""Tests for SHA-1 id derivation."""

from __future__ import annotations

import pytest

from repro.chord.hashing import (
    key_id,
    node_id_for_address,
    rehash_for_placement,
    sha1_to_id,
)


class TestSha1ToId:
    def test_deterministic(self):
        assert sha1_to_id(b"peer-1") == sha1_to_id(b"peer-1")

    def test_fits_in_m_bits(self):
        for m in (8, 16, 32, 64):
            assert 0 <= sha1_to_id(b"x", m) < (1 << m)

    def test_m_validation(self):
        with pytest.raises(ValueError):
            sha1_to_id(b"x", 0)
        with pytest.raises(ValueError):
            sha1_to_id(b"x", 65)

    def test_distinct_inputs_rarely_collide(self):
        ids = {sha1_to_id(f"peer-{i}".encode()) for i in range(2000)}
        assert len(ids) == 2000  # 32-bit space, 2000 draws: no collision


class TestNodeAndKeyIds:
    def test_node_id_matches_raw_sha1(self):
        assert node_id_for_address("10.0.0.1") == sha1_to_id(b"10.0.0.1")

    def test_key_id_separator_prevents_ambiguity(self):
        assert key_id("ab", "c") != key_id("a", "bc")

    def test_key_id_type_sensitivity(self):
        assert key_id("Patient", "age", 30) != key_id("Patient", "age", "30")

    def test_rehash_spreads_identifiers(self):
        """Min-hash identifiers are small; rehashing must spread them over
        the whole 32-bit ring (this is why 'rehash' placement exists)."""
        small_ids = range(1000, 3000)
        rehashed = [rehash_for_placement(i) for i in small_ids]
        top_quarter = sum(1 for r in rehashed if r >= 3 * (1 << 30))
        # Uniform placement puts ~25% in the top quarter of the ring.
        assert 0.15 < top_quarter / len(rehashed) < 0.35

    def test_rehash_deterministic(self):
        assert rehash_for_placement(12345) == rehash_for_placement(12345)
