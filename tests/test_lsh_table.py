"""Tests for the ideal table-permutation family."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import HashFamilyError
from repro.lsh.base import MinHash
from repro.lsh.table import TablePermutation, TablePermutationFamily
from repro.ranges.interval import IntRange
from repro.util.rng import derive_rng


class TestValidation:
    def test_rejects_non_permutation(self):
        with pytest.raises(HashFamilyError):
            TablePermutation(
                np.array([0, 0, 2]), np.array([1, 2, 3], dtype=np.uint64)
            )

    def test_rejects_mismatched_tables(self):
        with pytest.raises(HashFamilyError):
            TablePermutation(np.array([0, 1]), np.array([5], dtype=np.uint64))

    def test_rejects_tiny_domain(self):
        with pytest.raises(HashFamilyError):
            TablePermutationFamily(domain_size=1)

    def test_rejects_huge_domain(self):
        with pytest.raises(HashFamilyError):
            TablePermutationFamily(domain_size=1 << 25)


class TestSemantics:
    def test_order_isomorphic_images(self, rng):
        """Codes are sorted, so image order equals permuted-rank order —
        the property that keeps min-hashing exact."""
        family = TablePermutationFamily(domain_size=100)
        perm = family.sample(rng)
        images = perm.apply_array(np.arange(100, dtype=np.uint64))
        # distinct and within 32 bits
        assert len(set(int(v) for v in images)) == 100
        assert int(images.max()) < (1 << 32)

    def test_apply_matches_apply_array(self, rng):
        perm = TablePermutationFamily(domain_size=64).sample(rng)
        xs = np.arange(64, dtype=np.uint64)
        assert all(perm.apply(int(x)) == int(perm.apply_array(xs)[i])
                   for i, x in enumerate(xs))

    def test_input_validation(self, rng):
        perm = TablePermutationFamily(domain_size=10).sample(rng)
        with pytest.raises(ValueError):
            perm.apply(10)

    def test_exact_minwise_collision_probability(self):
        """For true min-wise independence, Pr[h(Q)=h(R)] tracks Jaccard —
        within sampling error over many sampled permutations."""
        family = TablePermutationFamily(domain_size=101)
        q, r = IntRange(0, 50), IntRange(0, 40)  # jaccard = 41/51
        target = q.jaccard(r)
        hits = 0
        trials = 600
        for i in range(trials):
            mh = MinHash(family.sample(derive_rng(i, "ideal")))
            if mh.hash_range(q) == mh.hash_range(r):
                hits += 1
        empirical = hits / trials
        assert abs(empirical - target) < 0.06
