"""Tests for the discrete-event kernel and its futures."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import SimFuture, Simulator, gather


class TestSimulator:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired: list[str] = []
        sim.call_later(30, lambda: fired.append("c"))
        sim.call_later(10, lambda: fired.append("a"))
        sim.call_later(20, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 30.0

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        fired: list[int] = []
        for tag in range(5):
            sim.call_later(7.0, lambda tag=tag: fired.append(tag))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen: list[float] = []
        sim.call_later(12.5, lambda: seen.append(sim.now))
        sim.call_later(40.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [12.5, 40.0]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired: list[float] = []

        def chain(depth: int) -> None:
            fired.append(sim.now)
            if depth > 0:
                sim.call_later(5, lambda: chain(depth - 1))

        sim.call_later(5, lambda: chain(3))
        sim.run()
        assert fired == [5.0, 10.0, 15.0, 20.0]

    def test_run_until_horizon(self):
        sim = Simulator()
        fired: list[str] = []
        sim.call_later(10, lambda: fired.append("early"))
        sim.call_later(100, lambda: fired.append("late"))
        assert sim.run(until=50) == 50.0
        assert fired == ["early"]
        assert sim.pending == 1
        sim.run()
        assert fired == ["early", "late"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().call_later(-1, lambda: None)

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator()
        sim.call_later(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(5, lambda: None)

    def test_cancelled_timer_does_not_fire(self):
        sim = Simulator()
        fired: list[str] = []
        timer = sim.call_later(10, lambda: fired.append("no"))
        sim.call_later(20, lambda: fired.append("yes"))
        timer.cancel()
        sim.run()
        assert fired == ["yes"]
        assert timer.cancelled

    def test_run_until_complete_returns_result(self):
        sim = Simulator()
        future: SimFuture[str] = SimFuture()
        sim.call_later(15, lambda: future.resolve("done"))
        assert sim.run_until_complete(future) == "done"
        assert sim.now == 15.0

    def test_run_until_complete_raises_on_deadlock(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.run_until_complete(SimFuture())

    def test_run_until_complete_reraises_rejection(self):
        sim = Simulator()
        future: SimFuture[None] = SimFuture()
        sim.call_later(5, lambda: future.reject(ValueError("boom")))
        with pytest.raises(ValueError, match="boom"):
            sim.run_until_complete(future)


class TestSimFuture:
    def test_resolve_and_result(self):
        future: SimFuture[int] = SimFuture()
        assert not future.done
        future.resolve(42)
        assert future.done and not future.failed
        assert future.result() == 42

    def test_result_before_settle_raises(self):
        with pytest.raises(RuntimeError):
            SimFuture().result()

    def test_double_settle_rejected(self):
        future: SimFuture[int] = SimFuture()
        future.resolve(1)
        with pytest.raises(RuntimeError):
            future.resolve(2)

    def test_callback_after_settle_runs_immediately(self):
        future: SimFuture[int] = SimFuture()
        future.resolve(9)
        seen: list[int] = []
        future.add_done_callback(lambda f: seen.append(f.result()))
        assert seen == [9]

    def test_then_maps_value(self):
        future: SimFuture[int] = SimFuture()
        doubled = future.then(lambda v: v * 2)
        future.resolve(21)
        assert doubled.result() == 42

    def test_then_flattens_nested_future(self):
        outer: SimFuture[int] = SimFuture()
        inner: SimFuture[str] = SimFuture()
        chained = outer.then(lambda _v: inner)
        outer.resolve(1)
        assert not chained.done
        inner.resolve("deep")
        assert chained.result() == "deep"

    def test_then_propagates_errors(self):
        future: SimFuture[int] = SimFuture()
        chained = future.then(lambda v: v + 1)
        future.reject(KeyError("nope"))
        assert chained.failed
        assert isinstance(chained.exception(), KeyError)

    def test_gather_preserves_order_and_keeps_errors(self):
        futures = [SimFuture() for _ in range(3)]
        combined = gather(futures)
        futures[2].resolve("c")
        futures[0].resolve("a")
        assert not combined.done
        error = TimeoutError("slow")
        futures[1].reject(error)
        assert combined.result() == ["a", error, "c"]

    def test_gather_of_nothing_resolves_empty(self):
        assert gather([]).result() == []

    def test_cancel_settles_with_typed_error(self):
        from repro.errors import FutureCancelledError

        future: SimFuture[int] = SimFuture()
        seen: list[bool] = []
        future.add_done_callback(lambda f: seen.append(f.cancelled))
        assert future.cancel()
        assert future.done and future.failed and future.cancelled
        assert isinstance(future.exception(), FutureCancelledError)
        assert seen == [True]  # callbacks fire on cancel, for cleanup

    def test_cancel_after_resolve_is_noop(self):
        future: SimFuture[int] = SimFuture()
        future.resolve(42)
        assert not future.cancel()
        assert not future.cancelled
        assert future.result() == 42

    def test_double_cancel_changes_nothing(self):
        future: SimFuture[int] = SimFuture()
        assert future.cancel()
        assert not future.cancel()

    def test_late_settle_after_cancel_is_dropped_silently(self):
        future: SimFuture[int] = SimFuture()
        future.cancel()
        future.resolve(42)  # the losing hedge's reply finally landing
        future.reject(TimeoutError("late"))
        assert future.cancelled
        with pytest.raises(Exception):
            future.result()

    def test_gather_counts_cancellation_as_an_error_slot(self):
        futures = [SimFuture() for _ in range(2)]
        combined = gather(futures)
        futures[0].resolve("a")
        futures[1].cancel()
        value, error = combined.result()
        assert value == "a"
        assert futures[1].cancelled and error is futures[1].exception()


class TestPendingAccounting:
    """``pending`` counts live events exactly; ``queued`` is raw heap size."""

    def test_pending_tracks_schedule_and_fire(self):
        sim = Simulator()
        assert sim.pending == 0
        sim.call_later(10, lambda: None)
        sim.call_later(20, lambda: None)
        assert sim.pending == 2
        assert sim.queued == 2
        sim.step()
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0
        assert sim.queued == 0

    def test_cancel_decrements_pending_not_queued(self):
        sim = Simulator()
        timer = sim.call_later(10, lambda: None)
        sim.call_later(20, lambda: None)
        timer.cancel()
        # The cancelled entry stays in the heap (O(1) cancel) but is no
        # longer live work.
        assert sim.pending == 1
        assert sim.queued == 2
        sim.run()
        assert sim.pending == 0

    def test_double_cancel_decrements_once(self):
        sim = Simulator()
        timer = sim.call_later(10, lambda: None)
        timer.cancel()
        timer.cancel()
        assert sim.pending == 0
        assert timer.cancelled

    def test_cancel_after_fire_is_noop(self):
        sim = Simulator()
        fired = []
        timer = sim.call_later(10, lambda: fired.append(True))
        sim.run()
        assert fired == [True]
        assert sim.pending == 0
        timer.cancel()  # racing a reply against its own timeout
        assert sim.pending == 0
        assert not timer.cancelled

    def test_pending_includes_events_past_run_horizon(self):
        sim = Simulator()
        sim.call_later(5, lambda: None)
        sim.call_later(500, lambda: None)
        sim.run(until=10)
        assert sim.pending == 1
        assert sim.queued == 1
