"""Property-based churn tests: overlays stay consistent under any
membership history hypothesis can invent."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.network import CanOverlay
from repro.chord.ring import ChordRing
from repro.util.rng import derive_rng

# A membership script: True = join a fresh node, False = remove one.
membership_scripts = st.lists(st.booleans(), min_size=1, max_size=24)


@given(membership_scripts)
@settings(max_examples=25, deadline=None)
def test_chord_ring_consistent_under_any_membership_history(script):
    ring = ChordRing(m=16)
    boot = ring.bootstrap("boot")
    counter = 0
    for do_join in script:
        if do_join or len(ring) <= 2:
            counter += 1
            try:
                ring.join(f"node-{counter}", via=boot.node_id)
            except Exception:
                continue
            ring.stabilize()
        else:
            victim = next(
                nid for nid in ring.node_ids if nid != boot.node_id
            )
            ring.leave(victim)
            ring.stabilize()
    ring.check_invariants()
    # Routing resolves every probe to the true successor.
    rng = derive_rng(1, "churn-prop")
    for _ in range(20):
        key = int(rng.integers(0, ring.space.size))
        assert ring.lookup(key, start_id=boot.node_id).owner_id == (
            ring.successor_of(key)
        )


@given(membership_scripts)
@settings(max_examples=25, deadline=None)
def test_chord_routing_state_matches_fresh_static_build(script):
    """After any join/leave history plus stabilization, every node's
    successor list and finger table equal those of a ring built statically
    from the same membership — the convergence claim of Chord's
    stabilization protocol, extended to the successor lists."""
    ring = ChordRing(m=16, successor_list_size=3)
    boot = ring.bootstrap("boot")
    counter = 0
    for do_join in script:
        if do_join or len(ring) <= 2:
            counter += 1
            try:
                ring.join(f"node-{counter}", via=boot.node_id)
            except Exception:
                continue
            ring.stabilize()
        else:
            victim = next(
                nid for nid in ring.node_ids if nid != boot.node_id
            )
            ring.leave(victim)
            ring.stabilize()
    reference = ChordRing(m=16, successor_list_size=3)
    for node_id in ring.node_ids:
        reference.add_node(node_id=node_id)
    reference.build()
    for node_id in ring.node_ids:
        churned = ring.node(node_id)
        rebuilt = reference.node(node_id)
        assert churned.successor_list == rebuilt.successor_list
        assert churned.fingers == rebuilt.fingers
        assert churned.successor_id == rebuilt.successor_id


@given(membership_scripts)
@settings(max_examples=20, deadline=None)
def test_can_overlay_tiles_under_any_membership_history(script):
    overlay = CanOverlay(dimensions=2)
    overlay.bootstrap("boot")
    boot_id = overlay.node_ids[0]
    counter = 0
    for do_join in script:
        if do_join or len(overlay) <= 2:
            counter += 1
            try:
                overlay.join(f"node-{counter}")
            except Exception:
                continue
        else:
            victim = next(nid for nid in overlay.node_ids if nid != boot_id)
            overlay.leave(victim)
    overlay.check_invariants()
    rng = derive_rng(2, "can-churn-prop")
    ids = overlay.node_ids
    for _ in range(15):
        key = int(rng.integers(0, 2**32))
        start = ids[int(rng.integers(len(ids)))]
        owner, _hops = overlay.lookup(key, start_id=start)
        assert owner == overlay.owner_of(key)
