"""Tests for the adaptive request policies (timeouts, backoff, breaker)."""

from __future__ import annotations

import pytest

from repro.obs.registry import MetricsRegistry
from repro.sim.policies import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AdaptiveTimeout,
    CircuitBreaker,
    HedgePolicy,
    JitteredBackoff,
    histogram_percentile,
)


class TestAdaptiveTimeout:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveTimeout(k=0)
        with pytest.raises(ValueError):
            AdaptiveTimeout(alpha=1.0)
        with pytest.raises(ValueError):
            AdaptiveTimeout(beta=0.0)
        with pytest.raises(ValueError):
            AdaptiveTimeout(floor_ms=100.0, ceiling_ms=50.0)
        with pytest.raises(ValueError):
            AdaptiveTimeout(warmup=0)
        with pytest.raises(ValueError):
            AdaptiveTimeout().observe(7, -1.0)

    def test_cold_estimator_defers_to_static_policy(self):
        adaptive = AdaptiveTimeout(warmup=3)
        assert adaptive.timeout_ms(7) is None
        adaptive.observe(7, 100.0)
        adaptive.observe(7, 100.0)
        assert adaptive.samples(7) == 2
        assert adaptive.timeout_ms(7) is None  # still one sample short
        adaptive.observe(7, 100.0)
        assert adaptive.timeout_ms(7) is not None

    def test_first_sample_seeds_jacobson_state(self):
        adaptive = AdaptiveTimeout(warmup=1)
        adaptive.observe(7, 100.0)
        assert adaptive.srtt_ms(7) == pytest.approx(100.0)
        # srtt + k * rttvar = 100 + 4 * 50
        assert adaptive.timeout_ms(7) == pytest.approx(300.0)

    def test_ewma_update_matches_jacobson(self):
        adaptive = AdaptiveTimeout(warmup=1, alpha=0.125, beta=0.25, k=4.0)
        adaptive.observe(7, 100.0)
        adaptive.observe(7, 200.0)
        # rttvar <- 0.75*50 + 0.25*|100-200| = 62.5, srtt <- 0.875*100 + 0.125*200
        assert adaptive.srtt_ms(7) == pytest.approx(112.5)
        assert adaptive.timeout_ms(7) == pytest.approx(112.5 + 4 * 62.5)

    def test_timeout_is_clamped(self):
        adaptive = AdaptiveTimeout(warmup=1, floor_ms=50.0, ceiling_ms=500.0)
        adaptive.observe(1, 1.0)
        assert adaptive.timeout_ms(1) == 50.0
        adaptive.observe(2, 10_000.0)
        assert adaptive.timeout_ms(2) == 500.0

    def test_estimates_are_per_destination(self):
        adaptive = AdaptiveTimeout(warmup=1)
        adaptive.observe(1, 10.0)
        adaptive.observe(2, 1_000.0)
        assert adaptive.timeout_ms(1) < adaptive.timeout_ms(2)

    def test_forget_is_idempotent_and_resets_warmup(self):
        adaptive = AdaptiveTimeout(warmup=1)
        adaptive.observe(7, 100.0)
        adaptive.forget(7)
        adaptive.forget(7)
        assert adaptive.samples(7) == 0
        assert adaptive.timeout_ms(7) is None


class TestJitteredBackoff:
    def test_validation(self):
        with pytest.raises(ValueError):
            JitteredBackoff(base_ms=0)
        with pytest.raises(ValueError):
            JitteredBackoff(factor=0.5)
        with pytest.raises(ValueError):
            JitteredBackoff(jitter=1.0)
        with pytest.raises(ValueError):
            JitteredBackoff(base_ms=100.0, cap_ms=50.0)
        with pytest.raises(ValueError):
            JitteredBackoff().delay_ms(-1)

    def test_no_jitter_is_exact_exponential(self):
        backoff = JitteredBackoff(base_ms=50.0, factor=2.0, jitter=0.0, cap_ms=150.0)
        assert [backoff.delay_ms(i) for i in range(4)] == [50.0, 100.0, 150.0, 150.0]

    def test_jitter_stays_within_band(self):
        backoff = JitteredBackoff(base_ms=100.0, factor=1.0, jitter=0.5, seed=3)
        for _ in range(50):
            delay = backoff.delay_ms(0)
            assert 50.0 <= delay <= 100.0

    def test_same_seed_replays_exactly(self):
        a = JitteredBackoff(seed=11, name="test/backoff")
        b = JitteredBackoff(seed=11, name="test/backoff")
        assert [a.delay_ms(i) for i in range(5)] == [b.delay_ms(i) for i in range(5)]

    def test_distinct_names_desynchronize(self):
        a = JitteredBackoff(seed=11, name="test/peer-1")
        b = JitteredBackoff(seed=11, name="test/peer-2")
        assert [a.delay_ms(0) for _ in range(4)] != [b.delay_ms(0) for _ in range(4)]


class ManualClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_breaker(**kwargs) -> tuple[ManualClock, CircuitBreaker, MetricsRegistry]:
    clock = ManualClock()
    registry = MetricsRegistry()
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("cooldown_ms", 1_000.0)
    breaker = CircuitBreaker(clock, registry=registry, **kwargs)
    return clock, breaker, registry


class TestCircuitBreaker:
    def test_validation(self):
        clock = ManualClock()
        with pytest.raises(ValueError):
            CircuitBreaker(clock, failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(clock, cooldown_ms=0)

    def test_closed_admits_and_successes_keep_it_closed(self):
        _clock, breaker, _ = make_breaker()
        assert breaker.state(7) == CLOSED
        for _ in range(10):
            assert breaker.allow(7)
            breaker.record_success(7)
        assert breaker.state(7) == CLOSED
        assert breaker.open_peers() == frozenset()

    def test_opens_after_consecutive_failures_only(self):
        _clock, breaker, registry = make_breaker(failure_threshold=3)
        breaker.record_failure(7)
        breaker.record_failure(7)
        breaker.record_success(7)  # resets the consecutive count
        breaker.record_failure(7)
        breaker.record_failure(7)
        assert breaker.state(7) == CLOSED
        breaker.record_failure(7)
        assert breaker.state(7) == OPEN
        assert registry.counter("sim.breaker.opened").get() == 1
        assert breaker.open_peers() == frozenset({7})

    def test_open_refuses_and_counts_fast_failures(self):
        clock, breaker, registry = make_breaker(failure_threshold=1)
        breaker.record_failure(7)
        clock.now = 10.0  # well inside the cooldown
        assert not breaker.allow(7)
        assert not breaker.allow(7)
        assert registry.counter("sim.breaker.fast_failures").get() == 2

    def test_half_open_admits_exactly_one_probe(self):
        clock, breaker, registry = make_breaker(failure_threshold=1, cooldown_ms=100.0)
        breaker.record_failure(7)
        clock.now = 100.0
        assert breaker.allow(7)  # the probe
        assert breaker.state(7) == HALF_OPEN
        assert not breaker.allow(7)  # everyone else waits on the probe
        assert registry.counter("sim.breaker.probes").get() == 1

    def test_probe_success_recloses(self):
        clock, breaker, registry = make_breaker(failure_threshold=1, cooldown_ms=100.0)
        breaker.record_failure(7)
        clock.now = 150.0
        assert breaker.allow(7)
        breaker.record_success(7)
        assert breaker.state(7) == CLOSED
        assert breaker.allow(7)
        assert registry.counter("sim.breaker.reclosed").get() == 1
        assert registry.gauge("sim.breaker.open_now").get() == 0

    def test_probe_failure_reopens_for_another_cooldown(self):
        clock, breaker, registry = make_breaker(failure_threshold=1, cooldown_ms=100.0)
        breaker.record_failure(7)
        clock.now = 100.0
        assert breaker.allow(7)
        breaker.record_failure(7)  # the probe came back dead
        assert breaker.state(7) == OPEN
        assert registry.counter("sim.breaker.opened").get() == 2
        clock.now = 150.0  # cooldown restarted at t=100
        assert not breaker.allow(7)
        clock.now = 200.0
        assert breaker.allow(7)

    def test_stragglers_while_open_do_not_restart_cooldown(self):
        clock, breaker, _ = make_breaker(failure_threshold=1, cooldown_ms=100.0)
        breaker.record_failure(7)
        clock.now = 90.0
        breaker.record_failure(7)  # late timeout from before the trip
        clock.now = 100.0
        assert breaker.allow(7)  # original cooldown still governs

    def test_transition_hook_sees_every_change(self):
        clock, breaker, _ = make_breaker(failure_threshold=1, cooldown_ms=100.0)
        seen: list[tuple[int, str, str]] = []
        breaker.transition_hook = lambda *args: seen.append(args)
        breaker.record_failure(7)
        clock.now = 100.0
        breaker.allow(7)
        breaker.record_success(7)
        assert seen == [
            (7, CLOSED, OPEN),
            (7, OPEN, HALF_OPEN),
            (7, HALF_OPEN, CLOSED),
        ]

    def test_reset_forgets_peer_and_gauge(self):
        _clock, breaker, registry = make_breaker(failure_threshold=1)
        breaker.record_failure(7)
        assert registry.gauge("sim.breaker.open_now").get() == 1
        breaker.reset(7)
        assert breaker.state(7) == CLOSED
        assert breaker.allow(7)
        assert registry.gauge("sim.breaker.open_now").get() == 0


class TestHistogramPercentile:
    def test_validation_and_empty_series(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t.h")
        with pytest.raises(ValueError):
            histogram_percentile(hist, 0.0)
        assert histogram_percentile(hist, 95.0) is None

    def test_returns_bucket_upper_edge(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t.h")
        for _ in range(99):
            hist.observe(3.0)  # bucket (2, 5]
        hist.observe(400.0)  # bucket (200, 500]
        assert histogram_percentile(hist, 50.0) == 5.0
        assert histogram_percentile(hist, 100.0) == 500.0

    def test_samples_past_last_edge_use_recorded_max(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t.h")
        hist.observe(1e9)
        assert histogram_percentile(hist, 99.0) == 1e9


class TestHedgePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(percentile=0.0)
        with pytest.raises(ValueError):
            HedgePolicy(min_samples=0)
        with pytest.raises(ValueError):
            HedgePolicy(floor_ms=10.0, ceiling_ms=5.0)

    def test_cold_policy_never_hedges(self):
        policy = HedgePolicy(min_samples=5)
        for _ in range(4):
            policy.observe(100.0)
        assert not policy.warm
        assert policy.delay_ms() is None

    def test_warm_policy_yields_clamped_tail(self):
        policy = HedgePolicy(min_samples=5, floor_ms=150.0, ceiling_ms=400.0)
        for _ in range(5):
            policy.observe(80.0)  # p95 bucket edge 100 < floor
        assert policy.warm
        assert policy.delay_ms() == 150.0
        for _ in range(200):
            policy.observe(900.0)  # p95 edge 1000 > ceiling
        assert policy.delay_ms() == 400.0

    def test_publishes_to_shared_registry(self):
        registry = MetricsRegistry()
        policy = HedgePolicy(registry=registry)
        policy.observe(42.0)
        assert registry.histogram("sim.query.chain_ms").count() == 1
