"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.ranges.domain import Domain


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator for test-local randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_domain() -> Domain:
    """The paper's experiment domain."""
    return Domain("value", 0, 1000)


@pytest.fixture
def small_system() -> RangeSelectionSystem:
    """A small but fully wired system (fast to build)."""
    return RangeSelectionSystem(SystemConfig(n_peers=40, seed=99))
