"""Smoke tests: the example programs must run and print what they promise.

The fast examples run end to end in-process; the slower ones are compiled
and imported (their ``main`` is exercised by equivalent integration tests
elsewhere), so a broken import or API drift still fails here.
"""

from __future__ import annotations

import importlib.util
import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = [
    "quickstart.py",
    "medical_records.py",
    "padding_tradeoff.py",
    "scalability_tour.py",
    "workload_comparison.py",
    "live_cluster.py",
]


def _load_module(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_imports_and_has_main(name):
    module = _load_module(name)
    assert callable(getattr(module, "main", None)), f"{name} needs a main()"


def test_quickstart_runs_end_to_end(capsys):
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    text = buffer.getvalue()
    assert "query [30, 49]" in text
    assert "recall 1.00" in text
    assert "placements in the system" in text


def test_medical_records_runs_end_to_end():
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(
            str(EXAMPLES_DIR / "medical_records.py"), run_name="__main__"
        )
    text = buffer.getvalue()
    assert "first execution" in text
    assert "repeat execution" in text
    assert "(unchanged)" in text


def test_examples_have_usage_docstrings():
    for name in ALL_EXAMPLES:
        source = (EXAMPLES_DIR / name).read_text(encoding="utf-8")
        assert source.startswith('"""'), f"{name} lacks a module docstring"
        assert "Run:" in source, f"{name} docstring lacks a Run: line"


def test_sys_path_untouched_by_loading():
    before = list(sys.path)
    _load_module("quickstart.py")
    assert sys.path == before
