"""Tests for RangeSet, validated against Python set semantics."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ranges.interval import IntRange
from repro.ranges.rangeset import RangeSet


def small_rangesets():
    interval = st.tuples(st.integers(0, 60), st.integers(0, 60)).map(
        lambda t: IntRange(min(t), max(t))
    )
    return st.lists(interval, min_size=0, max_size=4).map(RangeSet)


class TestNormalization:
    def test_merges_overlapping(self):
        rs = RangeSet([IntRange(1, 5), IntRange(4, 9)])
        assert rs.intervals == (IntRange(1, 9),)

    def test_merges_adjacent(self):
        rs = RangeSet([IntRange(1, 3), IntRange(4, 6)])
        assert rs.intervals == (IntRange(1, 6),)

    def test_keeps_gaps(self):
        rs = RangeSet([IntRange(1, 3), IntRange(5, 6)])
        assert rs.intervals == (IntRange(1, 3), IntRange(5, 6))

    def test_equality_is_semantic(self):
        assert RangeSet([IntRange(1, 3), IntRange(4, 6)]) == RangeSet(
            [IntRange(1, 6)]
        )

    def test_unordered_input(self):
        rs = RangeSet([IntRange(10, 12), IntRange(1, 2)])
        assert rs.intervals[0] == IntRange(1, 2)


class TestBasics:
    def test_empty(self):
        rs = RangeSet.empty()
        assert len(rs) == 0
        assert not rs
        assert 5 not in rs

    def test_of_constructor(self):
        rs = RangeSet.of((1, 3), (7, 9))
        assert len(rs) == 6

    def test_len_and_iter(self):
        rs = RangeSet.of((1, 2), (5, 5))
        assert len(rs) == 3
        assert list(rs) == [1, 2, 5]

    def test_hull(self):
        assert RangeSet.of((1, 2), (8, 9)).hull() == IntRange(1, 9)
        assert RangeSet.empty().hull() is None


class TestAlgebra:
    @given(small_rangesets(), small_rangesets())
    def test_union_matches_sets(self, a, b):
        assert a.union(b).to_set() == a.to_set() | b.to_set()

    @given(small_rangesets(), small_rangesets())
    def test_intersect_matches_sets(self, a, b):
        assert a.intersect(b).to_set() == a.to_set() & b.to_set()

    @given(small_rangesets(), small_rangesets())
    def test_difference_matches_sets(self, a, b):
        assert a.difference(b).to_set() == a.to_set() - b.to_set()

    def test_union_with_interval(self):
        rs = RangeSet.of((1, 3)).union(IntRange(5, 6))
        assert rs.to_set() == {1, 2, 3, 5, 6}

    def test_intersect_with_interval(self):
        rs = RangeSet.of((1, 10)).intersect(IntRange(5, 20))
        assert rs.to_set() == set(range(5, 11))

    def test_difference_with_interval(self):
        rs = RangeSet.of((1, 10)).difference(IntRange(4, 6))
        assert rs.to_set() == {1, 2, 3, 7, 8, 9, 10}


class TestCoverage:
    def test_full_coverage(self):
        assert RangeSet.of((0, 100)).coverage_of(IntRange(10, 20)) == 1.0

    def test_partial_coverage_from_two_pieces(self):
        rs = RangeSet.of((0, 4), (8, 10))
        # query [0, 9]: covered values 0-4 and 8-9 -> 7 of 10
        assert rs.coverage_of(IntRange(0, 9)) == pytest.approx(0.7)

    def test_zero_coverage(self):
        assert RangeSet.of((50, 60)).coverage_of(IntRange(0, 10)) == 0.0

    @given(small_rangesets(), st.tuples(st.integers(0, 60), st.integers(0, 60)))
    def test_coverage_matches_set_count(self, rs, endpoints):
        query = IntRange(min(endpoints), max(endpoints))
        expected = len(rs.to_set() & query.to_set()) / len(query)
        assert rs.coverage_of(query) == pytest.approx(expected)


def test_str_rendering():
    assert str(RangeSet.empty()) == "{}"
    assert "∪" in str(RangeSet.of((1, 2), (5, 6)))
