"""Tests for the ring-health subsystem: sampler, auditor, skew analytics."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.net.latency import ConstantLatency
from repro.obs import (
    RingAuditor,
    TelemetrySampler,
    gini,
    health_check,
    hot_identifiers,
    max_mean_ratio,
    skew_stats,
)
from repro.obs.health import load_histogram
from repro.sim.query import AsyncQueryEngine
from repro.workloads.generators import UniformRangeWorkload


def _warm(system: RangeSelectionSystem, queries: int, seed: int = 13) -> None:
    for query in UniformRangeWorkload(
        system.config.domain, queries, seed=seed
    ).ranges():
        system.query(query)


class TestAuditAcceptance:
    """The ISSUE acceptance scenario: 200 peers, r=3, crash 20%, repair."""

    @pytest.fixture(scope="class")
    def system(self):
        system = RangeSelectionSystem(
            SystemConfig(n_peers=200, replicas=3, seed=7)
        )
        _warm(system, 120)
        return system

    def test_healthy_system_audits_clean(self, system):
        report = health_check(system)
        assert report.ok
        assert report.audit.findings == []
        assert report.audit.nodes_checked == 200
        assert report.audit.entries_checked == system.total_placements()

    def test_crash_then_repair_round_trip(self, system):
        # Crash every 5th peer (20%): spread along the ring so no
        # identifier loses all three chain replicas at once.
        node_ids = system.router.node_ids
        doomed = node_ids[::5]
        assert len(doomed) == 40
        for nid in doomed:
            system.crash_peer(nid)
        try:
            damaged = RingAuditor(system).audit()
            assert not damaged.ok
            assert damaged.crashed_peers == 40
            deficits = damaged.findings_for("replica-deficit")
            assert deficits
            assert all(f.severity == "warning" for f in deficits)
            # Spread crashes with r=3 lose reachability, never all copies.
            assert damaged.findings_for("replica-loss") == []
            # Crashes are transport-level: ring structure stays intact.
            assert not any(
                f.check.startswith("chord.") for f in damaged.findings
            )
            # The deficit count matches the repair plan exactly.
            n_deficit_copies = sum(
                1 for _ in system.replication_deficits(system.network.is_alive)
            )
            assert n_deficit_copies > 0

            system.repair_replicas()
            healed = RingAuditor(system).audit()
            assert healed.ok
            assert healed.findings == []
        finally:
            for nid in doomed:
                system.recover_peer(nid)
            system.rebalance()


class TestAuditorDetectsCorruption:
    def test_tampered_successor_pointer_is_critical(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=32, seed=5))
        ring = system.ring
        victim = ring.node_ids[0]
        ring.node(victim).successor_id = victim  # self-loop: wrong successor
        report = RingAuditor(system).audit()
        assert not report.ok
        assert any(f.check.startswith("chord.") for f in report.findings)
        assert all(
            f.severity == "critical"
            for f in report.findings
            if f.check.startswith("chord.")
        )

    def test_misplaced_copy_is_critical(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=32, seed=5))
        _warm(system, 10)
        identifier, entry = next(iter(system.stores.values())).entries().__next__()
        owners = set(system.replica_owners(identifier))
        stray = next(
            nid for nid in reversed(system.router.node_ids) if nid not in owners
        )
        system.stores[stray].store(
            identifier, entry.descriptor, entry.partition, primary=False
        )
        report = RingAuditor(system).audit()
        assert any(f.check == "replica-placement" for f in report.findings)
        assert not report.ok

    def test_lru_clock_violation_is_warning(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=16, seed=5))
        _warm(system, 5)
        store = next(s for s in system.stores.values() if s.partition_count)
        _, entry = next(store.entries())
        entry.access_clock = store.clock + 100
        report = RingAuditor(system).audit()
        findings = report.findings_for("lru-clock")
        assert findings and findings[0].severity == "warning"

    def test_can_overlay_audits_clean_and_detects_asymmetry(self):
        system = RangeSelectionSystem(
            SystemConfig(n_peers=24, overlay="can", seed=5)
        )
        _warm(system, 10)
        assert health_check(system).ok
        overlay = system.router.overlay
        node = overlay.node(overlay.node_ids[0])
        other = next(iter(node.neighbor_ids))
        overlay.node(other).neighbor_ids.discard(node.node_id)
        report = RingAuditor(system).audit()
        assert any(f.check == "can.neighbor-symmetry" for f in report.findings)

    def test_report_and_dict_render(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=16, seed=5))
        _warm(system, 5)
        report = health_check(system)
        text = report.report()
        assert "Health: OK" in text
        assert "Load skew" in text
        doc = report.to_dict()
        assert doc["ok"] is True
        assert doc["n_peers"] == 16
        assert len(doc["loads"]) == 16
        assert doc["skew"]["gini"] == pytest.approx(report.skew.gini)


class TestSamplerNoDrift:
    """The sampler's final sample must equal a direct bucket census."""

    def test_event_driven_sampling_monotone_and_exact(self):
        system = RangeSelectionSystem(
            SystemConfig(n_peers=64, replicas=3, seed=11)
        )
        _warm(system, 30)
        engine = AsyncQueryEngine(system, seed=11)
        sampler = TelemetrySampler(
            system,
            sim=engine.sim,
            is_alive=engine.net.is_alive,
            interval_ms=500.0,
        )
        sampler.sample_once()
        sampler.start()
        for query in UniformRangeWorkload(
            system.config.domain, 20, seed=17
        ).ranges():
            engine.run(query)
        sampler.stop()
        sampler.sample_once()
        assert sampler.samples_taken > 2

        partitions = system.metrics.timeseries("health.node.partitions")
        census = {
            nid: system.stores[nid].partition_count
            for nid in system.router.node_ids
        }
        for nid, expected in census.items():
            points = partitions.points(node=nid)
            assert len(points) == sampler.samples_taken
            times = [t for t, _ in points]
            assert times == sorted(times)  # monotone virtual time
            assert points[-1][1] == expected  # no drift vs direct census
        totals = system.metrics.timeseries("health.partitions_total")
        assert totals.last()[1] == sum(census.values())
        pending = system.metrics.timeseries("health.sim.pending_events")
        assert len(pending.points()) == sampler.samples_taken

    def test_snapshot_on_demand_uses_wire_clock(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=16, seed=3))
        system.network.latency = ConstantLatency(5.0)
        sampler = TelemetrySampler(system)
        t0 = sampler.sample_once()
        _warm(system, 5)
        t1 = sampler.sample_once()
        assert t1 > t0  # wire time accumulated between snapshots

    def test_periodic_sampling_requires_simulator(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=8, seed=3))
        with pytest.raises(ValueError):
            TelemetrySampler(system).start()

    def test_degraded_and_crashed_states(self):
        system = RangeSelectionSystem(
            SystemConfig(n_peers=32, replicas=3, seed=11)
        )
        _warm(system, 20)
        victim = system.router.node_ids[0]
        system.crash_peer(victim)
        sampler = TelemetrySampler(system)
        sampler.sample_once()
        state = system.metrics.timeseries("health.node.state")
        assert state.last(node=victim)[1] == 2  # crashed
        deficit = system.metrics.timeseries("health.replica_deficit")
        assert deficit.last()[1] > 0
        # Some alive successor is now missing copies: degraded.
        states = [state.last(node=nid)[1] for nid in system.router.node_ids]
        assert 1 in states
        system.recover_peer(victim)


class TestSkewAnalytics:
    def test_gini_known_values(self):
        assert gini([]) == 0.0
        assert gini([0, 0, 0]) == 0.0
        assert gini([5, 5, 5, 5]) == pytest.approx(0.0)
        assert gini([0, 0, 0, 4]) == pytest.approx(0.75)

    def test_max_mean_ratio(self):
        assert max_mean_ratio([]) == 0.0
        assert max_mean_ratio([2, 2, 2]) == pytest.approx(1.0)
        assert max_mean_ratio([1, 1, 4]) == pytest.approx(2.0)

    def test_skew_stats_matches_direct_computation(self):
        values = [3, 1, 4, 1, 5, 9, 2, 6]
        stats = skew_stats(values)
        assert stats.count == 8
        assert stats.total == sum(values)
        assert stats.mean == pytest.approx(sum(values) / 8)
        assert stats.minimum == 1 and stats.maximum == 9
        assert stats.max_mean == pytest.approx(9 / (sum(values) / 8))
        assert stats.gini == pytest.approx(gini(values))

    def test_load_histogram_covers_all_values(self):
        values = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]
        bins = load_histogram(values, bins=5)
        assert len(bins) == 5
        assert sum(count for _, _, count in bins) == len(values)
        flat = load_histogram([7, 7, 7])
        assert flat == [(7.0, 7.0, 3)]
        assert load_histogram([]) == []

    def test_uniform_workload_reproduces_fig11_shape(self):
        """Rehash placement keeps skew in the Fig 11 load-balance band."""
        system = RangeSelectionSystem(SystemConfig(n_peers=100, seed=2003))
        _warm(system, 200)
        loads = system.load_distribution()
        stats = skew_stats(loads)
        assert stats.total == system.total_placements()
        # Fig 11's band: a visible spread but no pathological hot spot
        # (the experiment suite bounds p99 < 25x mean; max/mean is the
        # stricter statistic and stays well under 10x under rehash).
        assert 1.0 < stats.max_mean < 10.0
        assert 0.0 < stats.gini < 0.6

    def test_hot_identifiers_ranked(self):
        system = RangeSelectionSystem(
            SystemConfig(n_peers=32, replicas=3, seed=11)
        )
        _warm(system, 20)
        hot = hot_identifiers(system, top_n=3)
        assert len(hot) == 3
        counts = [count for _, count in hot]
        assert counts == sorted(counts, reverse=True)
        # Every hot identifier's count matches a direct census.
        for identifier, count in hot:
            direct = sum(
                1
                for store in system.stores.values()
                for ident, _ in store.entries()
                if ident == identifier
            )
            assert direct == count


class TestObservationIsPassive:
    """Sampling + auditing must not change system behaviour at all."""

    def test_observed_system_byte_identical(self):
        seed_cfg = SystemConfig(n_peers=40, replicas=3, seed=9)
        plain = RangeSelectionSystem(seed_cfg)
        observed = RangeSelectionSystem(seed_cfg)
        sampler = TelemetrySampler(observed)
        queries = list(
            UniformRangeWorkload(seed_cfg.domain, 25, seed=21).ranges()
        )
        plain_results = [plain.query(q) for q in queries]
        observed_results = []
        for index, query in enumerate(queries):
            if index % 5 == 0:
                sampler.sample_once()
                RingAuditor(observed).audit()
                health_check(observed)
            observed_results.append(observed.query(query))
        sampler.sample_once()
        assert plain_results == observed_results
        assert plain.network.stats.messages == observed.network.stats.messages
        assert plain.network.stats.bytes == observed.network.stats.bytes
        assert plain.network.stats.latency_ms == pytest.approx(
            observed.network.stats.latency_ms
        )
        assert plain.counters.scalar_values() == observed.counters.scalar_values()
