"""Durability tests: WAL framing, snapshot + WAL recovery, replay fidelity.

The contract under test is ISSUE 10's tentpole: every acknowledged
mutation is journaled before the ack, and rebuilding a store from
snapshot + WAL yields a state *identical* to the in-memory one —
including LRU access clocks and primary/replica ranks — tolerating a
torn journal tail and a missing or partial snapshot.
"""

from __future__ import annotations

import json
import struct
import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.partition import Partition, PartitionDescriptor
from repro.errors import StorageError
from repro.ranges.interval import IntRange
from repro.storage.snapshot import (
    load_peer_snapshot,
    restore_peer_store,
    save_peer_snapshot,
    snapshot_peer_store,
)
from repro.storage.store import LRUEviction, PeerStore
from repro.storage.wal import (
    PeerDurability,
    WalWriter,
    decode_wal_record,
    encode_wal_record,
    read_wal_tolerant,
)
from repro.util.tolerant import parse_json_record, read_jsonl_tolerant


def desc(start: int, end: int, relation: str = "R") -> PartitionDescriptor:
    return PartitionDescriptor(relation, "value", IntRange(start, end))


def store_op(identifier, descriptor, *, partition=None, primary=True,
             access_clock=1, clock=1, via="store"):
    return {
        "op": "store", "via": via, "identifier": identifier,
        "descriptor": descriptor, "partition": partition,
        "primary": primary, "access_clock": access_clock, "clock": clock,
    }


def state_of(store: PeerStore) -> tuple[dict, int]:
    """Everything durability promises to preserve, comparably."""
    entries = {}
    for identifier, entry in store.entries():
        rows = None if entry.partition is None else entry.partition.rows
        entries[(identifier, entry.descriptor)] = (
            entry.primary, entry.access_clock, rows,
        )
    return entries, store.clock


class TestWalCodec:
    def test_store_record_round_trips(self):
        descriptor = desc(10, 20)
        partition = Partition(descriptor=descriptor, rows=((11, "a"), (15, "b")))
        op = store_op(
            7, descriptor, partition=partition, primary=False,
            access_clock=42, clock=99, via="repair-push",
        )
        decoded = decode_wal_record(encode_wal_record(op))
        assert decoded["op"] == "store"
        assert decoded["via"] == "repair-push"
        assert decoded["identifier"] == 7
        assert decoded["descriptor"] == descriptor
        assert decoded["partition"].rows == partition.rows
        assert decoded["primary"] is False
        assert decoded["access_clock"] == 42
        assert decoded["clock"] == 99

    def test_remove_record_round_trips(self):
        op = {
            "op": "remove", "via": "handoff",
            "identifier": 3, "descriptor": desc(0, 5),
        }
        decoded = decode_wal_record(encode_wal_record(op))
        assert decoded == {
            "op": "remove", "via": "handoff",
            "identifier": 3, "descriptor": desc(0, 5),
        }

    def test_record_is_json_serialisable(self):
        record = encode_wal_record(store_op(1, desc(0, 9)))
        assert json.loads(json.dumps(record)) == record


class TestWalFraming:
    def test_append_and_replay(self, tmp_path):
        path = tmp_path / "wal.log"
        writer = WalWriter(path, fsync=False)
        assert writer.append(encode_wal_record(store_op(1, desc(0, 9)))) == 1
        assert writer.append(
            encode_wal_record({"op": "remove", "via": "evict",
                               "identifier": 1, "descriptor": desc(0, 9)})
        ) == 2
        writer.close()
        records, torn, valid = read_wal_tolerant(path)
        assert torn == 0
        assert [record["seq"] for record in records] == [1, 2]
        assert valid == path.stat().st_size
        assert decode_wal_record(records[0])["descriptor"] == desc(0, 9)

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_wal_tolerant(tmp_path / "absent.log") == ([], 0, 0)

    def test_torn_tail_salvages_complete_records(self, tmp_path):
        path = tmp_path / "wal.log"
        writer = WalWriter(path, fsync=False)
        for i in range(3):
            writer.append(encode_wal_record(store_op(i, desc(i, i + 5))))
        writer.close()
        size = path.stat().st_size
        with open(path, "r+b") as handle:
            handle.truncate(size - 3)  # SIGKILL mid-append
        records, torn, valid = read_wal_tolerant(path)
        assert [record["seq"] for record in records] == [1, 2]
        assert torn == 1
        assert valid < size - 3

    def test_partial_length_prefix_is_torn(self, tmp_path):
        path = tmp_path / "wal.log"
        writer = WalWriter(path, fsync=False)
        writer.append(encode_wal_record(store_op(1, desc(0, 9))))
        writer.close()
        valid_size = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(b"\x00\x00")  # 2 of 4 prefix bytes made it
        records, torn, valid = read_wal_tolerant(path)
        assert len(records) == 1 and torn == 1
        assert valid == valid_size

    def test_corrupt_body_ends_readable_region(self, tmp_path):
        path = tmp_path / "wal.log"
        writer = WalWriter(path, fsync=False)
        writer.append(encode_wal_record(store_op(1, desc(0, 9))))
        writer.close()
        with open(path, "ab") as handle:
            garbage = b"not json at all!"
            handle.write(struct.pack("!I", len(garbage)) + garbage)
        # A record that frames but does not parse cannot be trusted —
        # nor can anything after it.
        more = WalWriter(path, fsync=False, seq=1)
        more.append(encode_wal_record(store_op(2, desc(10, 19))))
        more.close()
        records, torn, _ = read_wal_tolerant(path)
        assert [record["seq"] for record in records] == [1]
        assert torn == 1

    def test_oversized_record_refused(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.storage.wal.MAX_RECORD_BYTES", 64)
        writer = WalWriter(tmp_path / "wal.log", fsync=False)
        with pytest.raises(StorageError):
            writer.append(encode_wal_record(store_op(1, desc(0, 10 ** 6))))
        writer.close()

    def test_truncate_drops_all_records(self, tmp_path):
        path = tmp_path / "wal.log"
        writer = WalWriter(path, fsync=False)
        writer.append(encode_wal_record(store_op(1, desc(0, 9))))
        writer.truncate()
        writer.close()
        assert read_wal_tolerant(path) == ([], 0, 0)


class TestPeerSnapshot:
    def populated(self) -> PeerStore:
        store = PeerStore(17)
        store.store(1, desc(0, 10), Partition(descriptor=desc(0, 10),
                                              rows=((1,), (2,))))
        store.store(2, desc(20, 30), primary=False)
        return store

    def test_round_trip_preserves_state(self):
        original = self.populated()
        restored = PeerStore(17)
        count = restore_peer_store(snapshot_peer_store(original), restored)
        assert count == 2
        assert state_of(restored) == state_of(original)

    def test_file_round_trip_carries_wal_seq(self, tmp_path):
        path = tmp_path / "snapshot.json"
        save_peer_snapshot(self.populated(), path, wal_seq=41)
        snapshot = load_peer_snapshot(path)
        assert snapshot is not None and snapshot["wal_seq"] == 41

    def test_missing_file_loads_none(self, tmp_path):
        assert load_peer_snapshot(tmp_path / "absent.json") is None

    def test_partial_snapshot_loads_none(self, tmp_path):
        path = tmp_path / "snapshot.json"
        save_peer_snapshot(self.populated(), path)
        raw = path.read_text(encoding="utf-8")
        path.write_text(raw[: len(raw) // 2], encoding="utf-8")  # torn write
        assert load_peer_snapshot(path) is None

    def test_wrong_format_rejected_on_restore(self):
        with pytest.raises(StorageError):
            restore_peer_store({"format": 99, "entries": []}, PeerStore(1))


class TestRecovery:
    def run_ops(self, store: PeerStore) -> None:
        for i in range(5):
            partition = Partition(descriptor=desc(i * 10, i * 10 + 9),
                                  rows=((i,),)) if i % 2 == 0 else None
            store.store(i, desc(i * 10, i * 10 + 9), partition,
                        primary=(i % 2 == 0))
        store.store(1, desc(10, 19))  # duplicate re-store promotes
        store.remove(3, desc(30, 39), via="handoff")

    def recovered(self, data_dir) -> tuple[PeerStore, dict]:
        store = PeerStore(17)
        stats = PeerDurability(data_dir, fsync=False).recover(store)
        return store, stats

    def test_pure_wal_recovery(self, tmp_path):
        live = PeerStore(17)
        durability = PeerDurability(tmp_path, fsync=False)
        durability.attach(live)
        self.run_ops(live)
        durability.close()
        store, stats = self.recovered(tmp_path)
        assert state_of(store) == state_of(live)
        assert stats["snapshot_entries"] == 0
        assert stats["wal_records"] == 7
        assert stats["torn_records"] == 0

    def test_snapshot_plus_wal_recovery(self, tmp_path):
        live = PeerStore(17)
        durability = PeerDurability(tmp_path, fsync=False, compact_every=3)
        durability.attach(live)
        self.run_ops(live)
        durability.close()
        assert durability.compactions >= 1
        store, stats = self.recovered(tmp_path)
        assert state_of(store) == state_of(live)
        assert stats["snapshot_entries"] > 0
        # Compaction folded most records away; only the tail replays.
        assert stats["wal_records"] < 7

    def test_torn_tail_loses_only_the_final_record(self, tmp_path):
        live = PeerStore(17)
        durability = PeerDurability(tmp_path, fsync=False)
        durability.attach(live)
        for i in range(5):
            live.store(i, desc(i * 10, i * 10 + 9))
        durability.close()
        wal = Path(tmp_path) / PeerDurability.WAL_NAME
        with open(wal, "r+b") as handle:
            handle.truncate(wal.stat().st_size - 3)
        store, stats = self.recovered(tmp_path)
        assert stats["torn_records"] == 1
        assert stats["entries"] == 4  # the unacked final store is gone
        assert sorted(store.identifiers()) == [0, 1, 2, 3]

    def test_attach_repairs_torn_tail_before_appending(self, tmp_path):
        # Records appended after a torn region would be unreachable on
        # the *next* replay; attach must truncate the tail first.
        first = PeerStore(17)
        durability = PeerDurability(tmp_path, fsync=False)
        durability.attach(first)
        first.store(1, desc(0, 9))
        first.store(2, desc(10, 19))
        durability.close()
        wal = Path(tmp_path) / PeerDurability.WAL_NAME
        with open(wal, "r+b") as handle:
            handle.truncate(wal.stat().st_size - 2)
        second = PeerStore(17)
        durability = PeerDurability(tmp_path, fsync=False)
        durability.recover(second)
        durability.attach(second)
        second.store(3, desc(20, 29))  # journaled after the repair
        durability.close()
        store, stats = self.recovered(tmp_path)
        assert stats["torn_records"] == 0
        assert sorted(store.identifiers()) == [1, 3]

    def test_partial_snapshot_falls_back_to_wal(self, tmp_path):
        live = PeerStore(17)
        durability = PeerDurability(tmp_path, fsync=False)
        durability.attach(live)
        self.run_ops(live)
        durability.close()
        snapshot = Path(tmp_path) / PeerDurability.SNAPSHOT_NAME
        snapshot.write_text('{"format": 1, "entr', encoding="utf-8")
        store, stats = self.recovered(tmp_path)
        assert stats["snapshot_entries"] == 0
        assert state_of(store) == state_of(live)

    def test_crash_between_snapshot_and_truncate_is_idempotent(
        self, tmp_path, monkeypatch
    ):
        live = PeerStore(17)
        durability = PeerDurability(tmp_path, fsync=False)
        durability.attach(live)
        for i in range(6):
            live.store(i, desc(i * 10, i * 10 + 9))
        # Snapshot lands, journal truncation "crashes": the WAL keeps
        # records the snapshot already covers.
        monkeypatch.setattr(durability._writer, "truncate", lambda: None)
        durability.compact()
        live.store(99, desc(990, 999))
        durability.close()
        store, stats = self.recovered(tmp_path)
        assert state_of(store) == state_of(live)
        assert stats["snapshot_entries"] == 6
        assert stats["wal_records"] == 1  # seq <= wal_seq skipped

    def test_empty_data_dir_recovers_empty(self, tmp_path):
        store, stats = self.recovered(tmp_path)
        assert stats == {
            "snapshot_entries": 0, "wal_records": 0,
            "torn_records": 0, "entries": 0,
        }
        assert store.partition_count == 0

    def test_incarnation_round_trips(self, tmp_path):
        durability = PeerDurability(tmp_path, fsync=False)
        assert durability.load_incarnation() is None
        durability.store_incarnation(7)
        assert PeerDurability(tmp_path, fsync=False).load_incarnation() == 7

    def test_torn_meta_reads_as_absent(self, tmp_path):
        durability = PeerDurability(tmp_path, fsync=False)
        durability.meta_path.write_text('{"incarn', encoding="utf-8")
        assert durability.load_incarnation() is None

    def test_compact_every_must_be_positive(self, tmp_path):
        with pytest.raises(StorageError):
            PeerDurability(tmp_path, compact_every=0)


class TestHookIsObservational:
    """No ``--data-dir`` must mean byte-identical store behavior; the
    hook, when attached, must change nothing the caller can observe."""

    OPS = [
        ("store", 1, (0, 10), True),
        ("store", 2, (20, 30), False),
        ("store", 1, (0, 10), True),     # duplicate
        ("store", 3, (40, 50), True),
        ("store", 4, (60, 70), False),
        ("store", 5, (80, 90), True),    # overflows LRU capacity
        ("remove", 2, (20, 30), None),
        ("remove", 9, (0, 1), None),     # absent: no-op, no record
    ]

    def apply(self, store: PeerStore) -> list:
        outcomes = []
        for kind, identifier, (start, end), primary in self.OPS:
            if kind == "store":
                outcomes.append(
                    store.store(identifier, desc(start, end), primary=primary)
                )
            else:
                outcomes.append(store.remove(identifier, desc(start, end)))
        return outcomes

    def test_hooked_store_behaves_like_plain_store(self):
        plain = PeerStore(3, LRUEviction(4))
        hooked = PeerStore(3, LRUEviction(4))
        journal: list[dict] = []
        hooked.mutation_hook = journal.append
        assert self.apply(hooked) == self.apply(plain)
        assert state_of(hooked) == state_of(plain)
        # Evictions are journaled, absent removes are not.
        assert any(op["op"] == "remove" and op["via"] == "evict"
                   for op in journal)
        assert not any(op["identifier"] == 9 for op in journal)

    def test_default_store_has_no_hook(self):
        assert PeerStore(1).mutation_hook is None


# One durable lifetime: identifiers collide (duplicate re-stores), roles
# mix, capacity forces LRU evictions, and handoffs delete entries.
op_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),          # identifier
        st.integers(min_value=0, max_value=80),         # range start
        st.integers(min_value=1, max_value=40),         # range width
        st.booleans(),                                  # primary
        st.sampled_from(["store", "repair-push", "handoff"]),
    ),
    min_size=1,
    max_size=40,
)


@given(op_lists)
@settings(max_examples=30, deadline=None)
def test_wal_replay_reconstructs_store_exactly(ops):
    """ISSUE satellite: replaying a randomized op sequence through the
    WAL reconstructs a state identical to the in-memory store, including
    LRU access clocks and primary/replica ranks."""
    with tempfile.TemporaryDirectory() as data_dir:
        live = PeerStore(7, LRUEviction(8))
        durability = PeerDurability(data_dir, fsync=False, compact_every=9)
        durability.attach(live)
        for identifier, start, width, primary, kind in ops:
            descriptor = desc(start, start + width)
            if kind == "handoff":
                live.remove(identifier, descriptor, via="handoff")
            else:
                partition = (
                    Partition(descriptor=descriptor, rows=((start,),))
                    if primary else None
                )
                live.store(identifier, descriptor, partition,
                           primary=primary, via=kind)
        durability.close()
        recovered = PeerStore(7, LRUEviction(8))
        PeerDurability(data_dir, fsync=False).recover(recovered)
        assert state_of(recovered) == state_of(live)


class TestTolerantReaders:
    def test_parse_json_record_accepts_objects_only(self):
        assert parse_json_record('{"a": 1}') == {"a": 1}
        assert parse_json_record(b'{"a": 1}') == {"a": 1}
        assert parse_json_record('{"a": 1') is None        # truncated
        assert parse_json_record("[1, 2]") is None         # not an object
        assert parse_json_record("42") is None
        assert parse_json_record(b"\xff\xfe{}") is None    # bad utf-8

    def test_read_jsonl_tolerant_skips_torn_final_line(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        path.write_text('{"a": 1}\n{"b": 2}\n{"c": ', encoding="utf-8")
        records, skipped = read_jsonl_tolerant(str(path))
        assert records == [{"a": 1}, {"b": 2}]
        assert skipped == 1

    def test_flight_recorder_reader_is_the_shared_one(self):
        # The extraction must leave the historical import path working.
        from repro.obs.distributed import read_jsonl_tolerant as from_obs

        assert from_obs is read_jsonl_tolerant
