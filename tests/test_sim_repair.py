"""Tests for event-driven failover lookups and the anti-entropy repairer."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.net.latency import ConstantLatency
from repro.ranges.interval import IntRange
from repro.sim import AsyncQueryEngine, ReplicaRepairer, RetryPolicy
from repro.sim.repair import RepairStats


def make_engine(
    n_peers: int = 24, replicas: int = 3, store_on_miss: bool = False
) -> AsyncQueryEngine:
    system = RangeSelectionSystem(
        SystemConfig(
            n_peers=n_peers,
            replicas=replicas,
            store_on_miss=store_on_miss,
            seed=11,
        )
    )
    return AsyncQueryEngine(
        system,
        latency=ConstantLatency(10.0),
        policy=RetryPolicy(timeout_ms=200.0, max_retries=1),
        seed=11,
    )


class TestAsyncFailover:
    def test_crashed_owner_answered_by_replica(self):
        engine = make_engine()
        query = IntRange(100, 160)
        engine.system.store_partition(query)
        identifier = engine.system.identifiers_for(query)[0]
        victim = engine.system.replica_owners(identifier)[0]
        engine.crash_peer(victim)
        result = engine.run(query)
        assert result.found
        assert result.failovers >= 1
        assert result.timeouts == 0
        assert engine.net.stats.failovers >= 1
        served = next(c for c in result.chains if c.identifier == identifier)
        assert served.reply is not None
        assert served.reply.peer_id != victim
        assert served.failovers >= 1

    def test_failover_costs_waiting_time(self):
        engine = make_engine()
        query = IntRange(100, 160)
        engine.system.store_partition(query)
        healthy = engine.run(query)
        victim = engine.system.replica_owners(
            engine.system.identifiers_for(query)[0]
        )[0]
        engine.crash_peer(victim)
        degraded = engine.run(query)
        # The failed-over chain waits out the owner's full retry schedule.
        assert degraded.total_ms > healthy.total_ms + engine.policy.timeout_ms

    def test_default_failover_budget_is_single_attempt(self):
        engine = make_engine()
        assert engine.failover_policy.total_attempts == 1
        assert engine.failover_policy.timeout_ms == engine.policy.timeout_ms

    def test_unreplicated_chain_still_times_out(self):
        engine = make_engine(replicas=1)
        query = IntRange(100, 160)
        engine.system.store_partition(query)
        identifier = engine.system.identifiers_for(query)[0]
        engine.crash_peer(engine.system.replica_owners(identifier)[0])
        result = engine.run(query)
        assert result.failovers == 0
        assert result.timeouts >= 1
        assert engine.net.stats.failover_exhausted >= 1

    def test_store_on_miss_fans_out_to_replicas(self):
        engine = make_engine(store_on_miss=True)
        engine.run(IntRange(500, 580))
        system = engine.system
        assert sum(s.replica_count for s in system.stores.values()) > 0
        assert engine.net.stats.replica_stores > 0
        system.check_placement_invariant()


class TestReplicaRepairer:
    def test_round_restores_missing_copies(self):
        engine = make_engine()
        query = IntRange(200, 260)
        engine.system.store_partition(query)
        identifier = engine.system.identifiers_for(query)[0]
        engine.crash_peer(engine.system.replica_owners(identifier)[0])
        repairer = ReplicaRepairer(engine, interval_ms=1_000.0)
        created = engine.sim.run_until_complete(repairer.run_round())
        assert created > 0
        assert repairer.stats.copies_created == created
        assert repairer.stats.rounds == 1
        for target in engine.system.replica_targets(
            identifier, engine.net.is_alive
        ):
            assert engine.system.stores[target].bucket(identifier) is not None

    def test_round_with_nothing_to_do_resolves_zero(self):
        engine = make_engine()
        engine.system.store_partition(IntRange(200, 260))
        repairer = ReplicaRepairer(engine, interval_ms=1_000.0)
        assert engine.sim.run_until_complete(repairer.run_round()) == 0

    def test_unrepairable_loss_is_counted(self):
        engine = make_engine(replicas=1)
        query = IntRange(200, 260)
        engine.system.store_partition(query)
        for identifier in engine.system.identifiers_for(query):
            victim = engine.system.replica_owners(identifier)[0]
            if engine.net.is_alive(victim):
                engine.crash_peer(victim)
        repairer = ReplicaRepairer(engine, interval_ms=1_000.0)
        created = engine.sim.run_until_complete(repairer.run_round())
        assert created == 0
        assert repairer.stats.unrepairable > 0

    def test_periodic_rounds_run_while_queries_drive_the_clock(self):
        engine = make_engine()
        engine.system.store_partition(IntRange(200, 260))
        repairer = ReplicaRepairer(engine, interval_ms=50.0)
        repairer.start()
        assert repairer.running
        for _ in range(4):
            engine.run(IntRange(200, 259))
        repairer.stop()
        assert not repairer.running
        assert repairer.stats.rounds >= 1

    def test_start_stop_idempotent(self):
        engine = make_engine()
        repairer = ReplicaRepairer(engine, interval_ms=50.0)
        repairer.start()
        repairer.start()
        repairer.stop()
        repairer.stop()
        assert not repairer.running

    def test_rejects_bad_interval(self):
        engine = make_engine()
        with pytest.raises(ValueError):
            ReplicaRepairer(engine, interval_ms=0.0)

    def test_stats_describe(self):
        stats = RepairStats(rounds=2, copies_created=5)
        text = stats.describe()
        assert "2 rounds" in text and "5 copies" in text

    def test_repair_keeps_recall_after_waves_of_churn(self):
        engine = make_engine(n_peers=30)
        queries = [IntRange(s, s + 40) for s in range(0, 700, 80)]
        for query in queries:
            engine.system.store_partition(query)
        repairer = ReplicaRepairer(engine, interval_ms=1_000.0)
        node_ids = engine.system.router.node_ids
        doomed = node_ids[::5]  # 6 of 30 peers, spread around the ring
        for wave in range(2):
            for peer_id in doomed[wave::2]:
                engine.crash_peer(peer_id)
            engine.sim.run_until_complete(repairer.run_round())
        for query in queries:
            result = engine.run(IntRange(query.start + 1, query.end + 1))
            assert result.found
