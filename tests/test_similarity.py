"""Tests for similarity measures and LSH admissibility (Section 3.2)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ranges.interval import IntRange
from repro.similarity import (
    containment,
    dice,
    distance,
    find_triangle_violation,
    jaccard,
    overlap_coefficient,
    recall_of_match,
    satisfies_triangle_inequality,
    similarity_measure,
)


def int_ranges():
    return st.tuples(st.integers(0, 120), st.integers(0, 120)).map(
        lambda t: IntRange(min(t), max(t))
    )


class TestMeasures:
    def test_jaccard_known(self):
        assert jaccard(IntRange(0, 9), IntRange(5, 14)) == pytest.approx(5 / 15)

    def test_containment_known(self):
        assert containment(IntRange(0, 9), IntRange(5, 14)) == pytest.approx(0.5)

    def test_dice_known(self):
        assert dice(IntRange(0, 9), IntRange(5, 14)) == pytest.approx(10 / 20)

    def test_overlap_known(self):
        assert overlap_coefficient(IntRange(0, 9), IntRange(5, 7)) == 1.0

    def test_recall_of_match_none(self):
        assert recall_of_match(IntRange(0, 9), None) == 0.0

    def test_recall_of_match_partial(self):
        assert recall_of_match(IntRange(0, 9), IntRange(0, 4)) == pytest.approx(0.5)

    def test_registry_lookup(self):
        assert similarity_measure("jaccard") is jaccard
        with pytest.raises(KeyError):
            similarity_measure("cosine")

    @given(int_ranges(), int_ranges())
    def test_all_measures_bounded(self, a, b):
        for measure in (jaccard, containment, dice, overlap_coefficient):
            assert 0.0 <= measure(a, b) <= 1.0

    @given(int_ranges())
    def test_identity_scores_one(self, r):
        for measure in (jaccard, containment, dice, overlap_coefficient):
            assert measure(r, r) == 1.0


class TestTriangleInequality:
    """The paper's key theoretical point: Jaccard distance is a metric,
    containment distance is not — hence no LSH family for containment."""

    PROBES = [
        IntRange(0, 9),
        IntRange(0, 99),
        IntRange(50, 59),
        IntRange(200, 299),
        IntRange(0, 299),
        IntRange(5, 14),
        IntRange(90, 110),
    ]

    def test_jaccard_satisfies_triangle_inequality(self):
        assert satisfies_triangle_inequality(jaccard, self.PROBES)

    @given(st.lists(int_ranges(), min_size=3, max_size=6))
    def test_jaccard_satisfies_triangle_inequality_random(self, ranges):
        assert satisfies_triangle_inequality(jaccard, ranges)

    def test_containment_violates_triangle_inequality(self):
        # Witness from the structure the paper alludes to: a small range, a
        # huge range containing it, and a range disjoint from the small one
        # but inside the huge one.
        small = IntRange(0, 0)
        huge = IntRange(0, 999)
        other = IntRange(500, 500)
        # d(small, huge) = 0 (fully contained), d(huge, other) small? No:
        # containment is measured from the first argument.
        witness = find_triangle_violation(containment, [small, huge, other])
        assert witness is not None

    def test_violation_finder_returns_none_for_jaccard(self):
        assert find_triangle_violation(jaccard, self.PROBES) is None

    def test_distance_complements_similarity(self):
        a, b = IntRange(0, 9), IntRange(5, 14)
        assert distance(jaccard, a, b) == pytest.approx(1 - jaccard(a, b))
