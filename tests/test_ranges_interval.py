"""Tests for IntRange, including set-semantics property tests."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import InvalidRangeError
from repro.ranges.interval import IntRange


def int_ranges(low=-500, high=1500):
    """Strategy producing valid IntRanges."""
    return st.tuples(
        st.integers(low, high), st.integers(low, high)
    ).map(lambda t: IntRange(min(t), max(t)))


class TestConstruction:
    def test_valid_range(self):
        r = IntRange(3, 7)
        assert (r.start, r.end) == (3, 7)

    def test_singleton(self):
        assert len(IntRange(5, 5)) == 1

    def test_inverted_raises(self):
        with pytest.raises(InvalidRangeError):
            IntRange(10, 9)

    def test_non_integer_raises(self):
        with pytest.raises(InvalidRangeError):
            IntRange(1.5, 2.5)  # type: ignore[arg-type]

    def test_numpy_endpoints_normalized(self):
        import numpy as np

        r = IntRange(np.int64(3), np.int64(9))
        assert isinstance(r.start, int) and isinstance(r.end, int)
        assert r == IntRange(3, 9)
        assert hash(r) == hash(IntRange(3, 9))

    def test_ordering_is_lexicographic(self):
        assert IntRange(1, 5) < IntRange(2, 3)
        assert IntRange(1, 3) < IntRange(1, 5)


class TestSetView:
    def test_len_contains_iter(self):
        r = IntRange(30, 50)
        assert len(r) == 21
        assert 30 in r and 50 in r and 29 not in r
        assert list(r)[:3] == [30, 31, 32]

    def test_to_array_and_set(self):
        r = IntRange(2, 5)
        assert list(r.to_array()) == [2, 3, 4, 5]
        assert r.to_set() == {2, 3, 4, 5}


class TestArithmetic:
    def test_intersect_overlapping(self):
        assert IntRange(0, 10).intersect(IntRange(5, 15)) == IntRange(5, 10)

    def test_intersect_disjoint(self):
        assert IntRange(0, 4).intersect(IntRange(5, 9)) is None

    def test_touches_adjacent(self):
        assert IntRange(1, 3).touches(IntRange(4, 6))
        assert not IntRange(1, 3).touches(IntRange(5, 6))

    def test_hull(self):
        assert IntRange(1, 3).hull(IntRange(7, 9)) == IntRange(1, 9)

    def test_contains_range(self):
        assert IntRange(0, 10).contains_range(IntRange(3, 7))
        assert not IntRange(0, 10).contains_range(IntRange(3, 11))

    @given(int_ranges(), int_ranges())
    def test_intersection_size_matches_sets(self, a, b):
        assert a.intersection_size(b) == len(a.to_set() & b.to_set())

    @given(int_ranges(), int_ranges())
    def test_union_size_matches_sets(self, a, b):
        assert a.union_size(b) == len(a.to_set() | b.to_set())

    @given(int_ranges(), int_ranges())
    def test_overlap_symmetry(self, a, b):
        assert a.overlaps(b) == b.overlaps(a)
        assert a.intersection_size(b) == b.intersection_size(a)


class TestSimilarity:
    def test_jaccard_paper_example(self):
        # [30,50] vs [30,49]: 20 shared of 21 union values
        assert IntRange(30, 50).jaccard(IntRange(30, 49)) == pytest.approx(20 / 21)

    def test_jaccard_identical(self):
        r = IntRange(1, 9)
        assert r.jaccard(r) == 1.0

    def test_jaccard_disjoint(self):
        assert IntRange(0, 4).jaccard(IntRange(10, 14)) == 0.0

    def test_containment_is_asymmetric(self):
        q = IntRange(30, 50)
        r = IntRange(30, 60)
        assert q.containment(r) == 1.0  # r fully contains q
        assert r.containment(q) == pytest.approx(21 / 31)

    @given(int_ranges(), int_ranges())
    def test_jaccard_matches_set_definition(self, a, b):
        expected = len(a.to_set() & b.to_set()) / len(a.to_set() | b.to_set())
        assert a.jaccard(b) == pytest.approx(expected)

    @given(int_ranges(), int_ranges())
    def test_jaccard_bounded_and_symmetric(self, a, b):
        assert 0.0 <= a.jaccard(b) <= 1.0
        assert a.jaccard(b) == pytest.approx(b.jaccard(a))


class TestPadding:
    def test_pad_20_percent(self):
        # |Q| = 21, 20% of 21 = 4.2 -> rounds to 4 on each edge
        assert IntRange(30, 50).pad(0.2) == IntRange(26, 54)

    def test_pad_clamps_to_domain(self):
        assert IntRange(0, 10).pad(0.5, lower_bound=0, upper_bound=1000) == IntRange(
            0, 16
        )

    def test_pad_zero_is_identity(self):
        r = IntRange(5, 9)
        assert r.pad(0.0) == r

    def test_pad_negative_raises(self):
        with pytest.raises(InvalidRangeError):
            IntRange(0, 10).pad(-0.1)

    def test_pad_absolute(self):
        assert IntRange(10, 20).pad_absolute(3) == IntRange(7, 23)

    @given(int_ranges(0, 1000), st.floats(0, 1))
    def test_pad_always_contains_original(self, r, fraction):
        padded = r.pad(fraction, lower_bound=-10_000, upper_bound=10_000)
        assert padded.contains_range(r)


def test_str_format():
    assert str(IntRange(30, 50)) == "[30, 50]"


def test_from_predicate():
    assert IntRange.from_predicate(3, 9) == IntRange(3, 9)
