"""Tests for the overload-protection layer end to end.

Covers the bounded per-peer service queue (queueing delay, busy shed),
grey-failure injection, replies to crashed requesters, breaker-gated
requests, hedged lookups, partial-quorum completion, the open-loop
driver, and the passivity guarantee that protections default to off.
"""

from __future__ import annotations

import pytest

from repro.core.config import ConfigError, SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.errors import OpenCircuitError, PeerBusyError, RequestTimeoutError
from repro.net.latency import ConstantLatency, SeededLatency
from repro.ranges.interval import IntRange
from repro.sim import (
    AsyncNetwork,
    AsyncQueryEngine,
    CircuitBreaker,
    FaultInjector,
    RetryPolicy,
    Simulator,
)


def make_net(latency_ms: float = 10.0, **kwargs) -> tuple[Simulator, AsyncNetwork]:
    sim = Simulator()
    net = AsyncNetwork(sim, latency=ConstantLatency(latency_ms), **kwargs)
    return sim, net


class TestBoundedQueue:
    def test_queue_requires_positive_service_time(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            AsyncNetwork(sim, queue_capacity=2, service_time_ms=0.0)
        with pytest.raises(ValueError):
            AsyncNetwork(sim, queue_capacity=-1)
        with pytest.raises(ValueError):
            AsyncNetwork(sim, service_time_ms=-1.0)

    def test_service_time_serializes_concurrent_requests(self):
        sim, net = make_net(latency_ms=10.0, queue_capacity=4, service_time_ms=50.0)
        net.register(7, lambda msg: "pong")
        first = net.send(1, 7, "ping")
        second = net.send(2, 7, "ping")
        sim.run()
        # First: 10 out + 50 service + 10 back.  Second queues behind it:
        # served at t=110, back at 120.
        assert first.done and second.done
        assert sim.now == pytest.approx(120.0)

    def test_full_queue_sheds_with_busy_reply(self):
        sim, net = make_net(latency_ms=10.0, queue_capacity=1, service_time_ms=50.0)
        net.register(7, lambda msg: "pong")
        admitted = net.send(1, 7, "ping")
        shed = net.send(2, 7, "ping")  # arrives while the queue is full
        sim.run()
        assert admitted.result() == "pong"
        assert shed.failed
        assert isinstance(shed.exception(), PeerBusyError)
        assert net.stats.busy_shed == 1
        # Shed is not a timeout: the peer answered, with a refusal.
        assert net.stats.timeouts == 0
        assert "ping-busy" in net.stats.by_kind

    def test_busy_reply_consumes_retry_budget_not_timeout(self):
        sim, net = make_net(latency_ms=10.0, queue_capacity=1, service_time_ms=500.0)
        net.register(7, lambda msg: "pong")
        net.send(1, 7, "ping")  # occupy the only slot
        future = net.request(
            2, 7, "ping", policy=RetryPolicy(timeout_ms=100.0, max_retries=1)
        )
        with pytest.raises(PeerBusyError):
            sim.run_until_complete(future)
        assert net.stats.retries == 1
        assert net.stats.timeouts == 0

    def test_backlog_drains_and_is_introspectable(self):
        sim, net = make_net(latency_ms=10.0, queue_capacity=4, service_time_ms=50.0)
        net.register(7, lambda msg: "pong")
        for origin in (1, 2, 3):
            net.send(origin, 7, "ping")
        sim.run(until=15.0)
        assert net.queue_backlog(7) == 3
        sim.run()
        assert net.queue_backlog(7) == 0

    def test_zero_capacity_is_the_unqueued_model(self):
        sim, net = make_net(latency_ms=10.0)
        net.register(7, lambda msg: "pong")
        futures = [net.send(i, 7, "ping") for i in range(1, 6)]
        sim.run()
        assert sim.now == pytest.approx(20.0)  # all served concurrently
        assert all(f.result() == "pong" for f in futures)
        assert net.stats.busy_shed == 0


class TestGreyFailures:
    def test_drop_probability_setter_validates(self):
        faults = FaultInjector()
        faults.drop_probability = 0.25
        assert faults.drop_probability == 0.25
        with pytest.raises(ValueError):
            faults.drop_probability = 1.0
        with pytest.raises(ValueError):
            faults.drop_probability = -0.1
        assert faults.drop_probability == 0.25  # rejected writes don't stick

    def test_slow_factors_validate(self):
        faults = FaultInjector()
        with pytest.raises(ValueError):
            faults.slow(7, latency_factor=0.5)
        with pytest.raises(ValueError):
            faults.slow(7, service_factor=0.0)

    def test_slow_peer_inflates_both_legs(self):
        sim, net = make_net(latency_ms=10.0)
        net.register(7, lambda msg: "pong")
        net.faults.slow(7, latency_factor=4.0)
        future = net.send(1, 7, "ping")
        sim.run_until_complete(future)
        assert sim.now == pytest.approx(80.0)  # 4 * (10 + 10)
        assert net.faults.is_slow(7)
        net.faults.unslow(7)
        assert net.faults.link_factor(1, 7) == 1.0

    def test_service_factor_inflates_queue_service(self):
        sim, net = make_net(latency_ms=10.0, queue_capacity=2, service_time_ms=50.0)
        net.register(7, lambda msg: "pong")
        net.faults.slow(7, service_factor=4.0)
        sim.run_until_complete(net.send(1, 7, "ping"))
        assert sim.now == pytest.approx(10.0 + 200.0 + 10.0)

    def test_scheduled_grey_failure_and_recovery(self):
        sim, net = make_net(latency_ms=10.0)
        net.register(7, lambda msg: "pong")
        net.faults.schedule_slow(
            sim, 7, at_ms=5.0, latency_factor=10.0, recover_at_ms=500.0
        )
        slow = net.send(1, 7, "ping")  # sampled at t=0, before the slowdown
        sim.run(until=0.0)
        assert not slow.done
        sim.run(until=600.0)
        fast = net.send(1, 7, "ping")
        start = sim.now
        sim.run_until_complete(fast)
        assert sim.now - start == pytest.approx(20.0)

    def test_reply_to_crashed_requester_is_counted(self):
        sim, net = make_net(latency_ms=10.0)
        net.register(7, lambda msg: "pong")
        net.register(1, lambda msg: None)
        future = net.send(1, 7, "ping")
        # The requester dies while the reply is on the wire.
        sim.call_later(15.0, lambda: net.crash(1))
        sim.run()
        assert not future.done
        assert net.stats.replies_to_dead == 1
        assert net.stats.drops == 0  # not a network drop: the peer is gone


class TestBreakerIntegration:
    def make_breaker_net(self, threshold: int = 2):
        sim, net = make_net(latency_ms=10.0)
        net.breaker = CircuitBreaker(
            clock=lambda: sim.now, failure_threshold=threshold, cooldown_ms=1_000.0
        )
        return sim, net

    def test_open_breaker_fails_fast_without_messages(self):
        sim, net = self.make_breaker_net(threshold=2)
        net.register(7, lambda msg: "pong")
        net.crash(7)
        policy = RetryPolicy(timeout_ms=50.0, max_retries=0)
        for _ in range(2):
            with pytest.raises(RequestTimeoutError):
                sim.run_until_complete(net.request(1, 7, "ping", policy=policy))
        messages_before = net.stats.messages
        start = sim.now
        with pytest.raises(OpenCircuitError):
            sim.run_until_complete(net.request(1, 7, "ping", policy=policy))
        assert net.stats.messages == messages_before  # nothing hit the wire
        assert sim.now == start  # and no virtual time passed
        assert net.stats.timeouts == 2  # fast failures are not timeouts

    def test_breaker_refusal_emits_trace_event(self):
        sim, net = self.make_breaker_net(threshold=1)
        net.register(7, lambda msg: "pong")
        net.crash(7)
        policy = RetryPolicy(timeout_ms=50.0, max_retries=0)
        with pytest.raises(RequestTimeoutError):
            sim.run_until_complete(net.request(1, 7, "ping", policy=policy))
        events: list[str] = []
        with pytest.raises(OpenCircuitError):
            sim.run_until_complete(
                net.request(
                    1, 7, "ping", policy=policy,
                    observer=lambda name, attrs: events.append(name),
                )
            )
        assert events == ["breaker-open"]

    def test_successful_probe_recloses_after_recovery(self):
        sim, net = self.make_breaker_net(threshold=1)
        net.register(7, lambda msg: "pong")
        net.crash(7)
        policy = RetryPolicy(timeout_ms=50.0, max_retries=0)
        with pytest.raises(RequestTimeoutError):
            sim.run_until_complete(net.request(1, 7, "ping", policy=policy))
        net.recover(7)
        sim.run(until=sim.now + 2_000.0)  # past the cooldown
        assert sim.run_until_complete(net.request(1, 7, "ping", policy=policy)) == "pong"
        assert net.breaker.state(7) == "closed"


class TestAdaptiveRetryEdges:
    def test_backoff_one_keeps_timeouts_flat(self):
        policy = RetryPolicy(timeout_ms=100.0, max_retries=2, backoff=1.0)
        assert [policy.timeout_for(i) for i in range(3)] == [100.0, 100.0, 100.0]
        assert policy.worst_case_ms() == 300.0

    def test_zero_retries_is_a_single_attempt(self):
        policy = RetryPolicy(timeout_ms=250.0, max_retries=0)
        assert policy.total_attempts == 1
        assert policy.worst_case_ms() == 250.0
        sim, net = make_net(latency_ms=10.0)
        net.register(7, lambda msg: "pong")
        net.crash(7)
        with pytest.raises(RequestTimeoutError) as excinfo:
            sim.run_until_complete(net.request(1, 7, "ping", policy=policy))
        assert excinfo.value.attempts == 1
        assert net.stats.retries == 0

    def test_warm_adaptive_estimator_shortens_the_wait(self):
        from repro.sim import AdaptiveTimeout

        sim, net = make_net(latency_ms=10.0)
        net.adaptive = AdaptiveTimeout(warmup=3, floor_ms=50.0)
        net.register(7, lambda msg: "pong")
        policy = RetryPolicy(timeout_ms=10_000.0, max_retries=0)
        for _ in range(3):
            sim.run_until_complete(net.request(1, 7, "ping", policy=policy))
        assert net.adaptive.samples(7) == 3
        assert net.adaptive.timeout_ms(7) == pytest.approx(50.0)  # rttvar -> 0
        # Now the peer dies: the warm estimator times out at its own
        # clamped floor, not the static policy's 10 s.
        net.crash(7)
        start = sim.now
        with pytest.raises(RequestTimeoutError):
            sim.run_until_complete(net.request(1, 7, "ping", policy=policy))
        assert sim.now - start == pytest.approx(50.0)


class TestFutureCancellationPaths:
    def test_cancel_releases_the_timeout_timer(self):
        sim, net = make_net(latency_ms=10.0)
        net.register(7, lambda msg: "pong")
        net.crash(7)
        future = net.request(
            1, 7, "ping", policy=RetryPolicy(timeout_ms=5_000.0, max_retries=0)
        )
        before = sim.pending  # the delivery timer plus the timeout timer
        assert future.cancel()
        assert sim.pending == before - 1  # the timeout timer died with it
        sim.run()
        assert sim.now < 5_000.0  # and never fired

    def test_cancel_after_resolve_is_a_noop(self):
        sim, net = make_net(latency_ms=10.0)
        net.register(7, lambda msg: "pong")
        future = net.request(1, 7, "ping")
        sim.run_until_complete(future)
        assert not future.cancel()
        assert future.result() == "pong"

    def test_late_reply_to_cancelled_request_is_silent(self):
        sim, net = make_net(latency_ms=10.0)
        net.register(7, lambda msg: "pong")
        future = net.request(1, 7, "ping")
        future.cancel()
        sim.run()  # the reply still arrives; settling must not raise
        assert future.cancelled
        assert not future.failed or future.cancelled


class TestConfigValidation:
    def test_queue_needs_service_rate(self):
        with pytest.raises(ConfigError):
            SystemConfig(n_peers=10, peer_queue=4)

    def test_bounds(self):
        with pytest.raises(ConfigError):
            SystemConfig(n_peers=10, peer_queue=-1)
        with pytest.raises(ConfigError):
            SystemConfig(n_peers=10, service_rate=-1.0)
        with pytest.raises(ConfigError):
            SystemConfig(n_peers=10, quorum=-1)
        with pytest.raises(ConfigError):
            SystemConfig(n_peers=10, quorum=6)  # > l = 5
        with pytest.raises(ConfigError):
            SystemConfig(n_peers=10, quorum_threshold=0.0)
        with pytest.raises(ConfigError):
            SystemConfig(n_peers=10, quorum_threshold=1.5)


def make_engine(seed: int = 7, n_peers: int = 60, **config_kwargs) -> AsyncQueryEngine:
    config = SystemConfig(n_peers=n_peers, seed=seed, **config_kwargs)
    system = RangeSelectionSystem(config)
    return AsyncQueryEngine(
        system,
        latency=SeededLatency(10.0, 100.0, seed=seed),
        policy=RetryPolicy(timeout_ms=400.0, max_retries=1),
        seed=seed,
    )


class TestEngineProtections:
    def test_passivity_defaults_leave_protections_unbuilt(self):
        engine = make_engine()
        assert engine.net.queue_capacity == 0
        assert engine.net.adaptive is None
        assert engine.net.backoff is None
        assert engine.net.breaker is None
        assert engine.hedge is None
        assert engine.quorum_m == 0

    def test_protections_off_results_are_unchanged(self):
        """The gated code paths must not perturb a default run."""
        queries = [IntRange(100, 200), IntRange(100, 199), IntRange(300, 420)]
        plain = [
            (r.total_ms, r.matched, r.partial)
            for r in (make_engine(seed=5).run(q) for q in queries)
        ]
        again = [
            (r.total_ms, r.matched, r.partial)
            for r in (make_engine(seed=5).run(q) for q in queries)
        ]
        assert plain == again
        assert all(not partial for _, _, partial in plain)

    def test_hedged_lookup_beats_a_slow_owner(self):
        engine = make_engine(
            seed=7, replicas=3, peer_queue=8, service_rate=100.0, hedge=True
        )
        engine.run(IntRange(100, 200))  # populate (replicated)
        probe = engine.run(IntRange(100, 199))
        assert probe.found
        # Warm the hedge trigger on healthy chains.
        for _ in range(5):
            engine.run(IntRange(100, 199))
        assert engine.hedge.warm
        # Grey-slow every owner: the hedge to a replica should win.
        for chain in probe.chains:
            engine.slow_peer(chain.owner, latency_factor=20.0, service_factor=20.0)
        result = engine.run(IntRange(100, 199))
        assert result.found
        assert engine.net.stats.hedges > 0
        assert engine.net.stats.hedge_wins > 0
        assert any(chain.hedged for chain in result.chains)

    def test_quorum_completes_early_and_flags_partial(self):
        engine = make_engine(
            seed=7, replicas=3, quorum=3, quorum_threshold=0.9
        )
        engine.run(IntRange(100, 200))
        result = engine.run(IntRange(100, 199))
        assert result.found
        assert result.partial
        assert result.degraded  # partial is a degraded answer
        assert len([c for c in result.chains if c.reply is not None]) >= 3

    def test_quorum_never_fires_below_threshold(self):
        engine = make_engine(seed=7, quorum=1, quorum_threshold=1.0)
        result = engine.run(IntRange(100, 200))  # a miss: no match anywhere
        assert not result.partial

    def test_run_open_loop_preserves_issue_order(self):
        engine = make_engine(seed=9)
        queries = [IntRange(100 + i, 200 + i) for i in range(6)]
        results = engine.run_open_loop(queries, interval_ms=50.0)
        assert len(results) == 6
        assert [r.query for r in results] == queries
        with pytest.raises(ValueError):
            engine.run_open_loop(queries, interval_ms=-1.0)
        assert engine.run_open_loop([], interval_ms=10.0) == []

    def test_run_open_loop_is_deterministic(self):
        queries = [IntRange(100, 200), IntRange(100, 199), IntRange(50, 80)]

        def totals() -> list[float]:
            engine = make_engine(seed=9)
            return [r.total_ms for r in engine.run_open_loop(queries, 25.0)]

        assert totals() == totals()
