"""Tests for composite answers (Section 5.2's user-facing proposal)."""

from __future__ import annotations

import pytest

from repro.core.composite import compose_replies, query_composite
from repro.core.config import SystemConfig
from repro.core.system import LocateResult, MatchReply, RangeSelectionSystem
from repro.db.partition import PartitionDescriptor
from repro.ranges.interval import IntRange
from repro.ranges.rangeset import RangeSet


def reply(peer: int, identifier: int, start: int, end: int) -> MatchReply:
    descriptor = PartitionDescriptor("R", "value", IntRange(start, end))
    return MatchReply(peer, identifier, descriptor, 0.5)


def locate_result(query: IntRange, replies: list[MatchReply]) -> LocateResult:
    best = max(
        (r for r in replies if r.descriptor is not None),
        key=lambda r: r.score,
        default=None,
    )
    return LocateResult(
        query=query,
        identifiers=tuple(r.identifier for r in replies),
        owners=tuple(r.peer_id for r in replies),
        replies=tuple(replies),
        best=best,
        overlay_hops=7,
        peers_contacted=len({r.peer_id for r in replies}),
    )


class TestComposeReplies:
    def test_two_halves_cover_fully(self):
        query = IntRange(0, 99)
        located = locate_result(
            query, [reply(1, 10, 0, 49), reply(2, 20, 50, 120)]
        )
        answer = compose_replies(query, located)
        assert answer.complete
        assert answer.recall == 1.0
        assert answer.residual == RangeSet.empty()
        # Neither part alone covers the query (each covers half).
        assert answer.best_single_recall == pytest.approx(0.5)
        assert answer.gain_over_best_single == pytest.approx(0.5)

    def test_gap_reported_as_residual(self):
        query = IntRange(0, 99)
        located = locate_result(
            query, [reply(1, 10, 0, 29), reply(2, 20, 70, 99)]
        )
        answer = compose_replies(query, located)
        assert not answer.complete
        assert answer.residual == RangeSet.of((30, 69))
        assert answer.recall == pytest.approx(0.6)
        assert "missing" in answer.describe()

    def test_no_replies_means_zero_recall(self):
        query = IntRange(0, 9)
        located = LocateResult(
            query=query,
            identifiers=(1,),
            owners=(5,),
            replies=(MatchReply(5, 1, None, 0.0),),
            best=None,
            overlay_hops=2,
            peers_contacted=1,
        )
        answer = compose_replies(query, located)
        assert answer.recall == 0.0
        assert answer.residual == RangeSet.of((0, 9))

    def test_overlapping_parts_not_double_counted(self):
        query = IntRange(0, 99)
        located = locate_result(
            query, [reply(1, 10, 0, 60), reply(2, 20, 40, 99)]
        )
        answer = compose_replies(query, located)
        assert answer.recall == 1.0

    def test_describe_complete(self):
        query = IntRange(0, 9)
        located = locate_result(query, [reply(1, 10, 0, 9)])
        assert "fully covered" in compose_replies(query, located).describe()


class TestQueryComposite:
    def test_composite_never_below_best_single(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=80, seed=91))
        queries = [IntRange(i * 7 % 900, i * 7 % 900 + 60) for i in range(150)]
        for query in queries:
            answer = query_composite(system, query)
            assert answer.recall >= answer.best_single_recall - 1e-12

    def test_store_on_miss_still_happens(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=30, seed=92))
        query_composite(system, IntRange(100, 200))
        assert system.unique_partitions() == 1
        # An exact repeat is then complete.
        answer = query_composite(system, IntRange(100, 200))
        assert answer.complete

    def test_padding_override_applies(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=30, seed=93))
        query_composite(system, IntRange(100, 200), padding=0.2)
        stored = {
            entry.descriptor.range
            for store in system.stores.values()
            for _, entry in store.entries()
        }
        assert IntRange(100, 200).pad(0.2, 0, 1000) in stored
