"""Tests for matchers, the adaptive padding controller, and multi-attribute
queries."""

from __future__ import annotations

import pytest

from repro.core.adaptive import AdaptivePaddingController
from repro.core.config import SystemConfig
from repro.core.matcher import (
    ContainmentMatcher,
    JaccardMatcher,
    matcher_by_name,
)
from repro.core.multiattr import (
    MultiAttributeQuery,
    query_multi_attribute,
)
from repro.core.system import RangeSelectionSystem
from repro.db.partition import PartitionDescriptor
from repro.errors import ConfigError
from repro.ranges.interval import IntRange


def desc(start: int, end: int) -> PartitionDescriptor:
    return PartitionDescriptor("R", "value", IntRange(start, end))


class TestMatchers:
    def test_jaccard_matcher_scores(self):
        matcher = JaccardMatcher()
        assert matcher.score(IntRange(0, 9), desc(0, 9)) == 1.0
        assert matcher.score(IntRange(0, 9), desc(100, 110)) == 0.0

    def test_containment_matcher_prefers_full_coverage(self):
        matcher = ContainmentMatcher()
        query = IntRange(40, 60)
        # A huge containing partition beats a tight partial one under
        # containment; under Jaccard the preference flips.
        huge = desc(0, 1000)
        tight = desc(41, 60)
        assert matcher.score(query, huge) > matcher.score(query, tight)
        jac = JaccardMatcher()
        assert jac.score(query, huge) < jac.score(query, tight)

    def test_containment_tie_broken_by_jaccard(self):
        matcher = ContainmentMatcher()
        query = IntRange(40, 60)
        loose = desc(0, 1000)
        snug = desc(35, 65)
        assert matcher.score(query, snug) > matcher.score(query, loose)

    def test_registry(self):
        assert matcher_by_name("jaccard").name == "jaccard"
        assert matcher_by_name("containment").name == "containment"
        with pytest.raises(KeyError):
            matcher_by_name("cosine")


class TestAdaptivePadding:
    def test_widens_under_low_recall(self):
        controller = AdaptivePaddingController(target_recall=0.9, step=0.05)
        for _ in range(5):
            controller.observe(0.0)
        assert controller.padding == pytest.approx(0.25)

    def test_narrows_once_target_met(self):
        controller = AdaptivePaddingController(
            target_recall=0.5, initial_padding=0.3, step=0.1, ewma_alpha=1.0
        )
        controller.observe(1.0)
        assert controller.padding == pytest.approx(0.25)

    def test_padding_bounded(self):
        controller = AdaptivePaddingController(step=0.2, max_padding=0.3)
        for _ in range(10):
            controller.observe(0.0)
        assert controller.padding == pytest.approx(0.3)
        good = AdaptivePaddingController(initial_padding=0.0)
        good.observe(1.0)
        assert good.padding == 0.0  # never negative

    def test_ewma_tracks_recall(self):
        controller = AdaptivePaddingController(ewma_alpha=0.5)
        controller.observe(1.0)
        controller.observe(0.0)
        assert controller.recall_estimate == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigError):
            AdaptivePaddingController(target_recall=0.0)
        with pytest.raises(ConfigError):
            AdaptivePaddingController(step=-1)
        with pytest.raises(ConfigError):
            AdaptivePaddingController(initial_padding=0.9, max_padding=0.5)
        controller = AdaptivePaddingController()
        with pytest.raises(ConfigError):
            controller.observe(1.5)


class TestMultiAttribute:
    def test_query_construction(self):
        q = MultiAttributeQuery.of("Patient", age=IntRange(30, 50),
                                   patient_id=IntRange(0, 100))
        assert len(q.ranges) == 2

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(ConfigError):
            MultiAttributeQuery("R", (("a", IntRange(0, 1)), ("a", IntRange(2, 3))))

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            MultiAttributeQuery("R", ())

    def test_joint_recall_is_product(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=20, seed=50))
        q = MultiAttributeQuery.of(
            "Patient", age=IntRange(30, 50), height=IntRange(150, 180)
        )
        # Warm both attributes with the exact ranges.
        query_multi_attribute(system, q)
        warm = query_multi_attribute(system, q)
        assert warm.all_matched
        assert warm.joint_recall == pytest.approx(1.0)
        per_attr = dict(warm.per_attribute)
        assert per_attr["age"].exact and per_attr["height"].exact

    def test_partial_joint_recall(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=20, seed=51))
        query_multi_attribute(
            system,
            MultiAttributeQuery.of("R", a=IntRange(0, 99), b=IntRange(0, 99)),
        )
        result = query_multi_attribute(
            system,
            MultiAttributeQuery.of("R", a=IntRange(0, 199), b=IntRange(0, 99)),
        )
        # Attribute b repeats exactly (recall 1); attribute a is broader, so
        # joint recall equals a's recall.
        per_attr = dict(result.per_attribute)
        assert result.joint_recall == pytest.approx(per_attr["a"].recall)

    def test_attributes_are_namespaced(self):
        """The same range on different attributes must not cross-match."""
        system = RangeSelectionSystem(SystemConfig(n_peers=20, seed=52))
        system.query(IntRange(10, 20), relation="R", attribute="a")
        miss = system.query(IntRange(10, 20), relation="R", attribute="b")
        assert not miss.exact
