"""Tests for linear permutations pi(x) = (a*x + b) mod p."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HashFamilyError
from repro.lsh.linear import (
    MERSENNE_31,
    LinearFamily,
    LinearPermutation,
    is_probable_prime,
)
from repro.util.rng import derive_rng


class TestPrimality:
    def test_known_primes(self):
        for p in (2, 3, 5, 7, 1031, MERSENNE_31):
            assert is_probable_prime(p)

    def test_known_composites(self):
        for n in (0, 1, 4, 1001, 2**31 - 2, 561, 341):  # incl. pseudoprimes
            assert not is_probable_prime(n)


class TestValidation:
    def test_a_zero_rejected(self):
        with pytest.raises(HashFamilyError):
            LinearPermutation(0, 5)

    def test_composite_modulus_rejected(self):
        with pytest.raises(HashFamilyError):
            LinearPermutation(1, 0, p=1000)

    def test_b_out_of_range_rejected(self):
        with pytest.raises(HashFamilyError):
            LinearPermutation(1, MERSENNE_31, p=MERSENNE_31)


class TestSemantics:
    def test_known_values(self):
        perm = LinearPermutation(3, 4, p=7)
        assert [perm.apply(x) for x in range(7)] == [4, 0, 3, 6, 2, 5, 1]

    def test_bijective_small_prime(self):
        perm = LinearPermutation(5, 2, p=11)
        assert {perm.apply(x) for x in range(11)} == set(range(11))

    def test_inverse(self):
        perm = LinearPermutation(12345, 6789, p=MERSENNE_31)
        for x in (0, 1, 99999, MERSENNE_31 - 1):
            assert perm.inverse(perm.apply(x)) == x

    def test_apply_array_matches_scalar(self, rng):
        perm = LinearFamily().sample(rng)
        xs = np.arange(0, 2000, dtype=np.uint64)
        fast = perm.apply_array(xs)
        slow = np.array([perm.apply(int(x)) for x in xs], dtype=np.uint64)
        assert (fast == slow).all()

    def test_apply_array_no_overflow_at_domain_edge(self, rng):
        perm = LinearPermutation(MERSENNE_31 - 1, MERSENNE_31 - 1)
        xs = np.array([MERSENNE_31 - 1], dtype=np.uint64)
        assert int(perm.apply_array(xs)[0]) == perm.apply(MERSENNE_31 - 1)

    @given(st.integers(1, 10**6), st.integers(0, 10**6))
    @settings(max_examples=25)
    def test_bijectivity_property(self, a, b):
        perm = LinearPermutation(a, b, p=MERSENNE_31)
        xs = list(range(0, 500))
        images = {perm.apply(x) for x in xs}
        assert len(images) == len(xs)

    def test_family_sampling_deterministic(self):
        x = LinearFamily().sample(derive_rng(5, "lin"))
        y = LinearFamily().sample(derive_rng(5, "lin"))
        assert (x.a, x.b) == (y.a, y.b)

    def test_family_rejects_composite(self):
        with pytest.raises(HashFamilyError):
            LinearFamily(p=100)
