"""Tests for system-level churn: join/leave with partition handoff."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.errors import ConfigError
from repro.ranges.interval import IntRange
from repro.workloads.generators import UniformRangeWorkload


def warmed_system(n_peers: int = 40, n_queries: int = 200) -> RangeSelectionSystem:
    system = RangeSelectionSystem(SystemConfig(n_peers=n_peers, seed=61))
    workload = UniformRangeWorkload(system.config.domain, n_queries, seed=62)
    for query in workload:
        system.query(query)
    return system


class TestJoin:
    def test_join_preserves_placement_invariant(self):
        system = warmed_system()
        before = system.total_placements()
        system.join_peer("late-arrival-1")
        system.check_placement_invariant()
        assert system.total_placements() == before  # nothing lost

    def test_join_then_queries_still_resolve(self):
        system = warmed_system()
        system.query(IntRange(100, 200))
        system.join_peer("late-arrival-2")
        repeat = system.query(IntRange(100, 200))
        assert repeat.exact  # the migrated partition is still findable

    def test_joined_peer_can_receive_load(self):
        system = warmed_system(n_peers=5)
        node = system.join_peer("late-arrival-3")
        # Store more data; some of it may land on the new peer.  At minimum
        # the new peer participates in routing without errors.
        for start in range(0, 900, 30):
            system.query(IntRange(start, start + 40))
        system.check_placement_invariant()
        assert node.node_id in system.stores


class TestLeave:
    def test_leave_hands_over_partitions(self):
        system = warmed_system()
        victim = system.ring.node_ids[0]
        held = system.stores[victim].partition_count
        before = system.total_placements()
        moved = system.leave_peer(victim)
        assert moved == held
        assert system.total_placements() == before
        system.check_placement_invariant()

    def test_leave_then_exact_queries_still_hit(self):
        system = warmed_system()
        system.query(IntRange(300, 400))
        # Remove whichever peers currently hold that partition.
        holders = {
            store.peer_id
            for store in system.stores.values()
            for _, entry in store.entries()
            if entry.descriptor.range == IntRange(300, 400)
        }
        for victim in list(holders)[:2]:
            system.leave_peer(victim)
        repeat = system.query(IntRange(300, 400))
        assert repeat.exact

    def test_cannot_remove_last_peer(self):
        system = RangeSelectionSystem(SystemConfig(n_peers=1, seed=63))
        with pytest.raises(ConfigError):
            system.leave_peer(system.ring.node_ids[0])


class TestRebalance:
    def test_rebalance_idempotent(self):
        system = warmed_system()
        system.join_peer("extra")
        assert system.rebalance() == 0  # join already rebalanced

    def test_invariant_violation_detected(self):
        system = warmed_system(n_peers=10, n_queries=30)
        # Manually misplace an entry at the wrong peer.
        holder = next(
            store for store in system.stores.values() if store.partition_count
        )
        identifier, entry = next(iter(holder.entries()))
        owner = system.ring.successor_of(system._place(identifier))
        wrong = next(nid for nid in system.ring.node_ids if nid != owner)
        holder.remove(identifier, entry.descriptor)
        system.stores[wrong].store(identifier, entry.descriptor, entry.partition)
        with pytest.raises(ConfigError):
            system.check_placement_invariant()
        assert system.rebalance() == 1
        system.check_placement_invariant()
