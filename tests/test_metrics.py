"""Tests for metrics: query logs, recall aggregation, text reports."""

from __future__ import annotations

import pytest

from repro.core.system import RangeQueryResult
from repro.db.partition import PartitionDescriptor
from repro.errors import ConfigError
from repro.metrics.collector import QueryLog, QueryRecord
from repro.metrics.recall import (
    RECALL_GRID,
    fraction_at_least,
    fraction_fully_answered,
    recall_cdf,
    recall_comparison,
)
from repro.metrics.report import (
    format_histogram,
    format_recall_cdf,
    format_series,
    format_table,
)
from repro.ranges.interval import IntRange
from repro.util.stats import Histogram


def result(similarity=0.9, recall=0.8, found=True, exact=False, hops=3):
    return RangeQueryResult(
        query=IntRange(0, 10),
        hashed_query=IntRange(0, 10),
        matched=PartitionDescriptor("R", "value", IntRange(0, 12)) if found else None,
        similarity=similarity if found else 0.0,
        recall=recall if found else 0.0,
        matcher_score=similarity,
        exact=exact,
        stored=not exact,
        overlay_hops=hops,
        peers_contacted=5,
    )


class TestQueryLog:
    def test_records_accumulate(self):
        log = QueryLog()
        log.add(result())
        log.add(result(found=False))
        assert len(log) == 2

    def test_warmup_drops_prefix(self):
        log = QueryLog()
        for _ in range(10):
            log.add(result())
        assert len(log.measured(0.2)) == 8
        assert len(log.measured(0.0)) == 10

    def test_warmup_validation(self):
        with pytest.raises(ConfigError):
            QueryLog().measured(1.0)

    def test_similarity_histogram_counts_misses(self):
        log = QueryLog()
        for _ in range(4):
            log.add(result(similarity=0.95))
        log.add(result(found=False))
        hist = log.similarity_histogram(warmup_fraction=0.0)
        assert hist.misses == 1
        assert hist.counts[9] == 4

    def test_recall_values_zero_for_misses(self):
        log = QueryLog()
        log.add(result(found=False))
        assert log.recall_values(0.0) == [0.0]

    def test_exact_fraction(self):
        log = QueryLog()
        log.add(result(exact=True))
        log.add(result(exact=False))
        assert log.exact_fraction(0.0) == 0.5

    def test_hop_values(self):
        log = QueryLog()
        log.add(result(hops=7))
        assert log.hop_values() == [7]

    def test_record_projection(self):
        record = QueryRecord.from_result(result(similarity=0.5, recall=0.4))
        assert record.similarity == 0.5
        assert record.recall == 0.4
        assert record.found


class TestRecallAggregation:
    def test_grid_spans_unit_interval_descending(self):
        assert RECALL_GRID[0] == 1.0
        assert RECALL_GRID[-1] == 0.0
        assert list(RECALL_GRID) == sorted(RECALL_GRID, reverse=True)

    def test_recall_cdf_values(self):
        points = dict(recall_cdf([1.0, 0.5, 0.5, 0.0], grid=[1.0, 0.5, 0.0]))
        assert points[1.0] == 25.0
        assert points[0.5] == 75.0
        assert points[0.0] == 100.0

    def test_fraction_helpers(self):
        recalls = [1.0, 1.0, 0.8, 0.2]
        assert fraction_fully_answered(recalls) == 50.0
        assert fraction_at_least(recalls, 0.8) == 75.0
        assert fraction_fully_answered([]) == 0.0

    def test_recall_comparison_paired(self):
        base = [0.5, 0.5, 1.0]
        variant = [1.0, 0.4, 1.0]
        stats = recall_comparison(base, variant)
        assert stats["improved_pct"] == pytest.approx(100 / 3)
        assert stats["worsened_pct"] == pytest.approx(100 / 3)
        assert stats["unchanged_pct"] == pytest.approx(100 / 3)
        assert stats["variant_full_pct"] == pytest.approx(200 / 3)

    def test_recall_comparison_validates(self):
        with pytest.raises(ValueError):
            recall_comparison([0.5], [0.5, 0.6])
        with pytest.raises(ValueError):
            recall_comparison([], [])


class TestReports:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.50" in text  # floats rendered with 2 decimals

    def test_format_series(self):
        text = format_series("x", "y", [(1.0, 2.0)])
        assert "x" in text and "y" in text

    def test_format_histogram_shows_misses(self):
        hist = Histogram(n_bins=2)
        hist.add(0.9)
        hist.add_miss()
        text = format_histogram(hist, title="H")
        assert "no match" in text
        assert "50.00%" in text

    def test_format_recall_cdf_requires_shared_grid(self):
        a = [(1.0, 50.0), (0.5, 75.0)]
        b = [(1.0, 60.0), (0.4, 80.0)]
        with pytest.raises(ValueError):
            format_recall_cdf({"a": a, "b": b})
        text = format_recall_cdf({"a": a, "a2": a})
        assert "recall >=" in text

    def test_format_recall_cdf_empty_rejected(self):
        with pytest.raises(ValueError):
            format_recall_cdf({})
