"""Tests for the overlay router abstraction and overlay-backed systems."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.overlays import CanRouter, ChordRouter, build_overlay
from repro.core.system import RangeSelectionSystem
from repro.errors import ConfigError
from repro.metrics.collector import QueryLog
from repro.ranges.interval import IntRange
from repro.workloads.generators import UniformRangeWorkload


class TestBuildOverlay:
    def test_chord_router(self):
        router = build_overlay("chord", 50)
        assert isinstance(router, ChordRouter)
        assert len(router.node_ids) == 50

    def test_can_router(self):
        router = build_overlay("can", 50)
        assert isinstance(router, CanRouter)
        assert len(router.node_ids) == 50

    def test_unknown_overlay(self):
        with pytest.raises(ConfigError):
            build_overlay("pastry", 50)


class TestRouterContract:
    @pytest.mark.parametrize("kind", ["chord", "can"])
    def test_lookup_owner_consistency(self, kind, rng):
        router = build_overlay(kind, 40, seed=3)
        ids = router.node_ids
        for _ in range(100):
            key = int(rng.integers(0, 2**32))
            start = ids[int(rng.integers(len(ids)))]
            owner, hops = router.lookup(key, start_id=start)
            assert owner == router.owner_of(key)
            assert hops >= 0

    @pytest.mark.parametrize("kind", ["chord", "can"])
    def test_ownership_deterministic(self, kind):
        a = build_overlay(kind, 40, seed=3)
        b = build_overlay(kind, 40, seed=3)
        for key in (0, 123456, 2**31, 2**32 - 1):
            assert a.owner_of(key) == b.owner_of(key)


class TestOverlayIndependence:
    def test_match_results_identical_across_overlays(self):
        """Identifiers and buckets do not depend on the overlay, so two
        systems differing only in DHT must make identical match decisions."""
        logs = {}
        for kind in ("chord", "can"):
            system = RangeSelectionSystem(
                SystemConfig(n_peers=40, seed=19, overlay=kind)
            )
            workload = UniformRangeWorkload(system.config.domain, 400, seed=5)
            log = QueryLog()
            for query in workload:
                log.add(system.query(query))
            logs[kind] = [(r.similarity, r.recall, r.exact) for r in log.records]
        assert logs["chord"] == logs["can"]

    def test_can_system_basic_flow(self):
        system = RangeSelectionSystem(
            SystemConfig(n_peers=30, seed=20, overlay="can", can_dimensions=3)
        )
        system.query(IntRange(10, 60))
        assert system.query(IntRange(10, 60)).exact

    def test_churn_helpers_chord_only(self):
        system = RangeSelectionSystem(
            SystemConfig(n_peers=10, seed=21, overlay="can")
        )
        with pytest.raises(ConfigError):
            system.join_peer("x")
        with pytest.raises(ConfigError):
            system.leave_peer(system.router.node_ids[0])

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            SystemConfig(overlay="kademlia")
        with pytest.raises(ConfigError):
            SystemConfig(can_dimensions=0)
