"""Tests for the experiment harness (quick-scale runs, shape assertions).

These run each figure's experiment at CI scale and assert the *qualitative*
shapes the paper reports, not absolute numbers.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import (
    AdaptivePaddingExperiment,
    ContainmentMatchingExperiment,
    HashTimingExperiment,
    IdealFamilyAblation,
    LoadBalanceExperiment,
    LocalIndexExperiment,
    MatchQualityExperiment,
    PaddingExperiment,
    PathLengthExperiment,
    RecallExperiment,
)


class TestFig5Timing:
    def test_ordering_linear_fastest_minwise_slowest(self):
        outcome = HashTimingExperiment.quick().run()
        assert outcome.mean_ms("linear") < outcome.mean_ms("approx-min-wise")
        assert outcome.mean_ms("approx-min-wise") < outcome.mean_ms("min-wise")

    def test_time_grows_with_range_size(self):
        outcome = HashTimingExperiment.quick().run()
        for family, points in outcome.series.items():
            times = [ms for _, ms in points]
            assert times[0] < times[-1], family

    def test_speedup_factors_at_least(self):
        outcome = HashTimingExperiment.quick().run()
        assert outcome.speedup("linear", "min-wise") > 10
        assert outcome.speedup("approx-min-wise", "min-wise") > 2

    def test_report_renders(self):
        text = HashTimingExperiment.quick().run().report()
        assert "Figure 5" in text and "speedups" in text


class TestFig6And7Quality:
    @pytest.fixture(scope="class")
    def outcomes(self):
        trace = None
        results = {}
        for family in ("min-wise", "approx-min-wise", "linear"):
            exp = MatchQualityExperiment.quick(family)
            if trace is None:
                trace = exp.workload()
            exp.trace = trace
            results[family] = exp.run()
        return results

    def test_minwise_concentrates_at_high_similarity(self, outcomes):
        hist = outcomes["min-wise"].histogram
        top_bin_pct = hist.percentages()[-1]
        assert top_bin_pct > 20.0  # mass concentrated in [0.9, 1.0]

    def test_minwise_has_substantial_miss_mass(self, outcomes):
        assert outcomes["min-wise"].miss_percentage() > 10.0

    def test_strictness_ordering_minwise_to_linear(self, outcomes):
        """The paper's selectivity story: min-wise imitates the ideal step
        (so it refuses mediocre matches and misses most), approx is looser,
        and linear permutations match almost anything."""
        assert (
            outcomes["min-wise"].miss_percentage()
            > outcomes["approx-min-wise"].miss_percentage()
            > outcomes["linear"].miss_percentage()
        )

    def test_linear_still_finds_identical_matches(self, outcomes):
        # Identical queries exist (repetitions) and linear must catch them.
        assert outcomes["linear"].exact_fraction >= 0.0

    def test_report_renders(self, outcomes):
        assert "Match quality" in outcomes["min-wise"].report()


class TestFig8Recall:
    def test_full_answer_ordering(self):
        outcome = RecallExperiment.quick().run()
        # Paper Fig 8: linear answers the most queries completely (its loose
        # matching lands on broad containing partitions), min-wise the least.
        linear = outcome.fully_answered("linear")
        approx = outcome.fully_answered("approx-min-wise")
        minwise = outcome.fully_answered("min-wise")
        assert linear > minwise
        assert approx > minwise
        assert linear >= approx * 0.9

    def test_cdf_monotone(self):
        outcome = RecallExperiment.quick().run()
        for family in outcome.outcomes:
            ys = [y for _, y in outcome.cdf(family)]
            assert ys == sorted(ys)

    def test_report_renders(self):
        assert "Figure 8" in RecallExperiment.quick().run().report()


class TestFig9Containment:
    def test_containment_improves_full_answers(self):
        outcome = ContainmentMatchingExperiment.quick().run()
        stats = outcome.comparison()
        assert stats["variant_full_pct"] > stats["baseline_full_pct"]

    def test_most_queries_not_worse(self):
        outcome = ContainmentMatchingExperiment.quick().run()
        stats = outcome.comparison()
        assert stats["improved_pct"] + stats["unchanged_pct"] > 50.0

    def test_report_renders(self):
        assert "Figure 9" in ContainmentMatchingExperiment.quick().run().report()


class TestFig10Padding:
    def test_padding_improves_full_answers(self):
        outcome = PaddingExperiment.quick().run()
        stats = outcome.comparison()
        assert stats["variant_full_pct"] > stats["baseline_full_pct"]

    def test_padding_hurts_some_queries(self):
        """The paper's trade-off: padding lowers recall for a minority."""
        outcome = PaddingExperiment.quick().run()
        stats = outcome.comparison()
        assert stats["worsened_pct"] > 0.0

    def test_report_renders(self):
        assert "Figure 10" in PaddingExperiment.quick().run().report()


class TestFig11Load:
    @pytest.fixture(scope="class")
    def outcome(self):
        return LoadBalanceExperiment.quick().run()

    def test_mean_load_inversely_proportional_to_peers(self, outcome):
        means = {n: stats.mean for n, stats in outcome.by_peers}
        ns = sorted(means)
        for a, b in zip(ns, ns[1:]):
            assert means[a] == pytest.approx(means[b] * b / a, rel=0.01)

    def test_mean_load_proportional_to_partitions(self, outcome):
        means = [stats.mean for _, stats in outcome.by_partitions]
        totals = [total for total, _ in outcome.by_partitions]
        for (m1, t1), (m2, t2) in zip(
            zip(means, totals), zip(means[1:], totals[1:])
        ):
            assert m2 / m1 == pytest.approx(t2 / t1, rel=0.01)

    def test_p99_band_present_but_bounded(self, outcome):
        for _, stats in outcome.by_peers:
            assert stats.p99 >= stats.mean
            assert stats.p99 < stats.mean * 25  # no pathological hot spot

    def test_report_renders(self, outcome):
        text = outcome.report()
        assert "Figure 11a" in text and "Figure 11b" in text


class TestFig12PathLength:
    @pytest.fixture(scope="class")
    def outcome(self):
        return PathLengthExperiment.quick().run()

    def test_mean_hops_near_half_log2(self, outcome):
        for n, stats in outcome.by_peers:
            expected = 0.5 * math.log2(n)
            assert expected - 1.0 <= stats.mean <= expected + 2.5

    def test_hops_grow_with_system_size(self, outcome):
        means = [stats.mean for _, stats in outcome.by_peers]
        assert means[0] < means[-1]

    def test_pdf_is_normalized(self, outcome):
        assert sum(outcome.pdf.probabilities().values()) == pytest.approx(1.0)

    def test_report_renders(self, outcome):
        text = outcome.report()
        assert "Figure 12a" in text and "Figure 12b" in text


class TestExtensions:
    @pytest.fixture(scope="class")
    def local_index_outcome(self):
        return LocalIndexExperiment.quick().run()

    def test_local_index_never_hurts(self, local_index_outcome):
        for _, bucket_only, local_index in local_index_outcome.rows:
            assert local_index >= bucket_only - 1.0  # allow tiny noise

    def test_local_index_best_with_one_peer(self, local_index_outcome):
        by_peers = {n: local for n, _, local in local_index_outcome.rows}
        assert by_peers[1] >= max(by_peers.values()) - 1.0

    def test_adaptive_padding_beats_no_padding(self):
        outcome = AdaptivePaddingExperiment.quick().run()
        rows = {name: full for name, full, _ in outcome.rows}
        assert rows["adaptive"] >= rows["fixed 0%"] - 1.0

    def test_ideal_family_has_fewer_misses_than_linear(self):
        outcome = IdealFamilyAblation(
            families=("table", "approx-min-wise"), scale="quick"
        ).run()
        table = outcome.outcomes["table"]
        assert table.good_match_percentage() > 0.0
        assert "Ablation" in outcome.report()


class TestMoreExtensions:
    def test_composite_answers_never_lose_recall(self):
        from repro.experiments.ext_composite import CompositeAnswerExperiment

        outcome = CompositeAnswerExperiment.quick().run()
        assert outcome.mean_gain >= 0.0
        assert all(
            c >= s - 1e-12
            for s, c in zip(outcome.single_recalls, outcome.composite_recalls)
        )
        assert "composing" in outcome.report()

    def test_overlay_comparison_quick(self):
        from repro.experiments.ext_overlay_compare import (
            OverlayComparisonExperiment,
        )

        outcome = OverlayComparisonExperiment.quick().run()
        # Quality is overlay-independent by construction.
        assert outcome.quality["chord"] == pytest.approx(
            outcome.quality["can"], abs=1e-9
        )
        assert "Chord vs CAN" in outcome.report()

    def test_churn_recall_replication_beats_unreplicated(self):
        from repro.experiments.ext_churn_recall import ChurnRecallExperiment

        experiment = ChurnRecallExperiment.quick()
        outcome = experiment.run()
        worst = max(experiment.crash_fractions)
        assert outcome.recall_drop("r=1", worst) > 0.0
        assert outcome.recall_drop("r=3+repair", worst) < 0.05
        assert outcome.cell("r=3+repair", worst).failovers > 0
        assert "recall under churn" in outcome.report()

    def test_overload_protections_degrade_gracefully(self):
        from repro.experiments.ext_overload import OverloadExperiment

        experiment = OverloadExperiment(
            n_peers=60, timed_queries=60, warmup_queries=40
        )
        outcome = experiment.run()
        heavy = max(experiment.load_factors)
        slow = max(experiment.slow_fractions)
        protected = outcome.cell(True, heavy, slow)
        unprotected = outcome.cell(False, heavy, slow)
        # The protections engage under stress and cut the tail...
        assert protected.hedges > 0 and protected.hedge_wins > 0
        assert protected.partial_queries > 0
        assert protected.p99_ms < unprotected.p99_ms
        # ...without giving up answers.
        assert protected.mean_recall >= outcome.baseline().mean_recall - 0.05
        assert "overload protection" in outcome.report()

    def test_linear_catches_up_under_repetition(self):
        """Section 5.1: "As the system evolves, the probability that
        identical queries had been asked earlier goes higher and linear
        permutations will tend to produce better results."  Under a skewed
        (repeating) workload, linear's exact-match fraction rises to meet
        the stronger families'."""
        from repro.core.config import SystemConfig
        from repro.core.system import RangeSelectionSystem
        from repro.metrics.collector import QueryLog
        from repro.workloads.generators import ZipfRangeWorkload

        results = {}
        domain = SystemConfig().domain
        trace = ZipfRangeWorkload(domain, 800, seed=66, pool_size=120).ranges()
        for family in ("linear", "min-wise"):
            system = RangeSelectionSystem(
                SystemConfig(n_peers=60, family=family, seed=67)
            )
            log = QueryLog()
            for query in trace:
                log.add(system.query(query))
            results[family] = log.exact_fraction()
        assert results["linear"] >= results["min-wise"] * 0.95
        assert results["linear"] > 0.3


class TestQualityInternals:
    def test_shared_trace_is_actually_shared(self):
        exp = MatchQualityExperiment.quick("linear")
        trace = exp.workload()
        exp2 = MatchQualityExperiment.quick("min-wise")
        exp2.trace = trace
        assert list(exp2.workload()) == list(trace)

    def test_good_match_percentage_counts_misses_in_denominator(self):
        outcome = MatchQualityExperiment.quick("approx-min-wise").run()
        assert outcome.good_match_percentage() <= 100.0 - outcome.miss_percentage()
