"""Tests for circular identifier-space arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.chord.idspace import IdSpace

SPACE = IdSpace(m=8)  # small space: every case easy to reason about
ids = st.integers(0, 255)


class TestBasics:
    def test_size(self):
        assert IdSpace(8).size == 256
        assert IdSpace(32).size == 1 << 32

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            IdSpace(0)
        with pytest.raises(ValueError):
            IdSpace(65)

    def test_wrap(self):
        assert SPACE.wrap(256) == 0
        assert SPACE.wrap(-1) == 255

    def test_distance(self):
        assert SPACE.distance(10, 20) == 10
        assert SPACE.distance(250, 5) == 11  # wraps through 0
        assert SPACE.distance(5, 5) == 0


class TestIntervals:
    def test_open_no_wrap(self):
        assert SPACE.in_open(5, 1, 10)
        assert not SPACE.in_open(1, 1, 10)
        assert not SPACE.in_open(10, 1, 10)

    def test_open_wrapping(self):
        assert SPACE.in_open(250, 200, 10)
        assert SPACE.in_open(5, 200, 10)
        assert not SPACE.in_open(100, 200, 10)

    def test_open_full_circle(self):
        # a == b denotes the whole circle minus the endpoint.
        assert SPACE.in_open(5, 7, 7)
        assert not SPACE.in_open(7, 7, 7)

    def test_half_open_no_wrap(self):
        assert SPACE.in_half_open(10, 1, 10)
        assert not SPACE.in_half_open(1, 1, 10)

    def test_half_open_wrapping(self):
        assert SPACE.in_half_open(10, 200, 10)
        assert SPACE.in_half_open(255, 200, 10)
        assert not SPACE.in_half_open(200, 200, 10)

    def test_half_open_full_circle(self):
        assert SPACE.in_half_open(42, 9, 9)
        assert SPACE.in_half_open(9, 9, 9)

    @given(ids, ids, ids)
    def test_open_subset_of_half_open(self, x, a, b):
        if SPACE.in_open(x, a, b):
            assert SPACE.in_half_open(x, a, b)

    @given(ids, ids)
    def test_half_open_contains_endpoint(self, a, b):
        assert SPACE.in_half_open(b, a, b)

    @given(ids, ids, ids)
    def test_rotation_invariance(self, x, a, b):
        """Interval membership is invariant under rotating all points."""
        shift = 37
        assert SPACE.in_half_open(x, a, b) == SPACE.in_half_open(
            x + shift, a + shift, b + shift
        )


class TestFingers:
    def test_finger_start_values(self):
        assert SPACE.finger_start(0, 0) == 1
        assert SPACE.finger_start(0, 7) == 128
        assert SPACE.finger_start(200, 7) == (200 + 128) % 256

    def test_finger_index_bounds(self):
        with pytest.raises(ValueError):
            SPACE.finger_start(0, 8)
        with pytest.raises(ValueError):
            SPACE.finger_start(0, -1)
