"""Tests for grouped LSH identifiers (l groups x k functions)."""

from __future__ import annotations

import pytest

from repro.errors import HashFamilyError
from repro.lsh import (
    ApproxMinWiseFamily,
    LinearFamily,
    LSHIdentifierScheme,
    MinWiseFamily,
    family_by_name,
)
from repro.lsh.groups import DEFAULT_K, DEFAULT_L, combine_hashes_xor
from repro.ranges.interval import IntRange

import numpy as np


class TestConstruction:
    def test_paper_defaults(self):
        assert (DEFAULT_K, DEFAULT_L) == (20, 5)
        scheme = LSHIdentifierScheme.from_family(ApproxMinWiseFamily())
        assert scheme.l == 5 and scheme.k == 20
        assert len(scheme.all_functions()) == 100

    def test_invalid_parameters(self):
        with pytest.raises(HashFamilyError):
            LSHIdentifierScheme.from_family(ApproxMinWiseFamily(), l=0)
        with pytest.raises(HashFamilyError):
            LSHIdentifierScheme.from_family(ApproxMinWiseFamily(), k=0)
        with pytest.raises(HashFamilyError):
            LSHIdentifierScheme([], id_bits=32)

    def test_family_registry(self):
        for name in ("min-wise", "approx-min-wise", "linear", "table"):
            assert family_by_name(name).name == name
        with pytest.raises(KeyError):
            family_by_name("sha1")


class TestDeterminism:
    def test_two_peers_agree_on_identifiers(self):
        """All peers share the global hash functions: building the scheme
        twice from the same seed must yield identical identifiers."""
        a = LSHIdentifierScheme.from_family(MinWiseFamily(), seed=4)
        b = LSHIdentifierScheme.from_family(MinWiseFamily(), seed=4)
        for r in (IntRange(30, 50), IntRange(0, 1000), IntRange(7, 7)):
            assert a.identifiers(r) == b.identifiers(r)

    def test_different_seeds_differ(self):
        # Note the range must avoid 0: pi(0) = 0 for *every* bit-position
        # permutation, so any range containing 0 hashes to identifier 0
        # under all seeds (a real degeneracy of the Figure 3 construction).
        a = LSHIdentifierScheme.from_family(MinWiseFamily(), seed=4)
        b = LSHIdentifierScheme.from_family(MinWiseFamily(), seed=5)
        assert a.identifiers(IntRange(5, 500)) != b.identifiers(IntRange(5, 500))

    def test_families_use_independent_streams(self):
        a = LSHIdentifierScheme.from_family(MinWiseFamily(), seed=4)
        b = LSHIdentifierScheme.from_family(ApproxMinWiseFamily(), seed=4)
        assert a.identifiers(IntRange(5, 500)) != b.identifiers(IntRange(5, 500))

    def test_zero_degeneracy_of_bit_shuffle(self):
        """pi(0) = 0 for every bit-position permutation, so every range
        containing 0 gets identifier 0 in every group.  Documented
        behaviour of the paper's construction (not of linear or table
        permutations)."""
        shuffle = LSHIdentifierScheme.from_family(MinWiseFamily(), seed=4)
        assert shuffle.identifiers(IntRange(0, 500)) == [0] * 5
        linear = LSHIdentifierScheme.from_family(LinearFamily(), seed=4)
        assert linear.identifiers(IntRange(0, 500)) != [0] * 5


class TestIdentifiers:
    def test_produces_l_identifiers_in_range(self):
        scheme = LSHIdentifierScheme.from_family(LinearFamily(), l=5, k=20, seed=1)
        ids = scheme.identifiers(IntRange(30, 50))
        assert len(ids) == 5
        assert all(0 <= i < (1 << 32) for i in ids)

    def test_identical_ranges_share_all_identifiers(self):
        scheme = LSHIdentifierScheme.from_family(ApproxMinWiseFamily(), seed=2)
        assert scheme.identifiers(IntRange(5, 99)) == scheme.identifiers(
            IntRange(5, 99)
        )

    def test_slow_path_equals_fast_path(self):
        scheme = LSHIdentifierScheme.from_family(MinWiseFamily(), l=2, k=3, seed=3)
        for r in (IntRange(30, 50), IntRange(0, 20)):
            assert scheme.identifiers(r) == scheme.identifiers_slow(r)

    def test_xor_combination_rule(self):
        """The group identifier is the XOR of its k min-hashes, as in the
        paper's querying-peer pseudocode."""
        scheme = LSHIdentifierScheme.from_family(LinearFamily(), l=1, k=3, seed=6)
        r = IntRange(10, 40)
        expected = 0
        for fn in scheme.groups[0].functions:
            expected ^= fn.hash_range(r)
        assert scheme.identifiers(r) == [expected & 0xFFFFFFFF]

    def test_id_bits_mask(self):
        scheme = LSHIdentifierScheme.from_family(
            LinearFamily(), l=3, k=2, seed=6, id_bits=8
        )
        assert all(0 <= i < 256 for i in scheme.identifiers(IntRange(0, 100)))

    def test_combine_hashes_xor_helper(self):
        values = np.array([1, 2, 4, 8, 16, 32], dtype=np.uint64)
        out = combine_hashes_xor(values, l=2, k=3, mask=0xFF)
        assert list(out) == [1 ^ 2 ^ 4, 8 ^ 16 ^ 32]


class TestTheoryHook:
    def test_match_probability_endpoints(self):
        scheme = LSHIdentifierScheme.from_family(ApproxMinWiseFamily(), seed=0)
        assert scheme.match_probability(0.0) == 0.0
        assert scheme.match_probability(1.0) == 1.0

    def test_match_probability_step_at_09(self):
        """The paper's (k=20, l=5): near-zero below ~0.7, near-one at 0.97."""
        scheme = LSHIdentifierScheme.from_family(ApproxMinWiseFamily(), seed=0)
        assert scheme.match_probability(0.5) < 0.01
        assert scheme.match_probability(0.97) > 0.9

    def test_describe(self):
        scheme = LSHIdentifierScheme.from_family(ApproxMinWiseFamily(), seed=0)
        assert "l=5" in scheme.describe() and "k=20" in scheme.describe()
