"""Tests for relations, predicates and partitions."""

from __future__ import annotations

import pytest

from repro.db.partition import Partition, PartitionDescriptor
from repro.db.predicates import EqualityPredicate, RangePredicate, TruePredicate
from repro.db.relation import Relation
from repro.db.schema import Attribute, AttrType, RelationSchema
from repro.errors import SchemaError
from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange

SCHEMA = RelationSchema(
    "Patient",
    (
        Attribute("patient_id", AttrType.INT, Domain("pid", 0, 10**6)),
        Attribute("name", AttrType.STRING),
        Attribute("age", AttrType.INT, Domain("age", 0, 120)),
    ),
)


def sample_relation() -> Relation:
    relation = Relation(SCHEMA)
    for pid, age in enumerate((25, 30, 35, 40, 45, 50, 55)):
        relation.insert({"patient_id": pid, "name": f"p{pid}", "age": age})
    return relation


class TestRelation:
    def test_insert_and_len(self):
        assert len(sample_relation()) == 7

    def test_select_range(self):
        rows = sample_relation().select_range("age", IntRange(30, 50))
        assert [r[2] for r in rows] == [30, 35, 40, 45, 50]

    def test_select_with_predicate(self):
        pred = RangePredicate("Patient", "age", IntRange(30, 50))
        assert len(sample_relation().select(pred)) == 5

    def test_select_wrong_relation_predicate(self):
        pred = RangePredicate("Doctor", "age", IntRange(0, 1))
        with pytest.raises(SchemaError):
            sample_relation().select(pred)

    def test_project(self):
        rows = sample_relation().project(["age", "name"])
        assert rows[0] == (25, "p0")

    def test_insert_encoded_arity_check(self):
        relation = sample_relation()
        with pytest.raises(SchemaError):
            relation.insert_encoded((1, "x"))

    def test_insert_many(self):
        relation = Relation(SCHEMA)
        n = relation.insert_many(
            {"patient_id": i, "name": "x", "age": 20} for i in range(3)
        )
        assert n == 3 and len(relation) == 3

    def test_decoded_rows(self):
        relation = Relation(SCHEMA)
        relation.insert({"patient_id": 1, "name": "a", "age": 30})
        assert relation.decoded_rows() == [
            {"patient_id": 1, "name": "a", "age": 30}
        ]


class TestPredicates:
    def test_range_predicate_matches(self):
        pred = RangePredicate("Patient", "age", IntRange(30, 50))
        row = SCHEMA.encode_row({"patient_id": 1, "name": "x", "age": 30})
        assert pred.matches(row, SCHEMA)
        row2 = SCHEMA.encode_row({"patient_id": 1, "name": "x", "age": 29})
        assert not pred.matches(row2, SCHEMA)

    def test_range_predicate_validation(self):
        pred = RangePredicate("Patient", "name", IntRange(0, 1))
        with pytest.raises(SchemaError):
            pred.validate_against(SCHEMA)

    def test_range_predicate_widen_clamps(self):
        pred = RangePredicate("Patient", "age", IntRange(0, 50))
        widened = pred.widen(0.2, SCHEMA)
        assert widened.range.start == 0  # clamped at the domain floor
        assert widened.range.end == 60

    def test_equality_predicate(self):
        pred = EqualityPredicate("Patient", "name", "p3")
        row = SCHEMA.encode_row({"patient_id": 3, "name": "p3", "age": 40})
        assert pred.matches(row, SCHEMA)

    def test_equality_as_point_range(self):
        pred = EqualityPredicate("Patient", "age", 30)
        point = pred.as_point_range(SCHEMA)
        assert point is not None and point.range == IntRange(30, 30)
        assert EqualityPredicate("Patient", "name", "x").as_point_range(SCHEMA) is None

    def test_true_predicate(self):
        row = SCHEMA.encode_row({"patient_id": 1, "name": "x", "age": 30})
        assert TruePredicate("Patient").matches(row, SCHEMA)

    def test_describe_strings(self):
        assert "30" in RangePredicate("P", "age", IntRange(30, 50)).describe()
        assert "Glaucoma" in EqualityPredicate("D", "d", "Glaucoma").describe()


class TestPartition:
    def test_descriptor_similarities(self):
        desc = PartitionDescriptor("Patient", "age", IntRange(30, 50))
        assert desc.jaccard_to(IntRange(30, 49)) == pytest.approx(20 / 21)
        assert desc.containment_of(IntRange(35, 45)) == 1.0
        assert desc.answers_exactly(IntRange(30, 50))
        assert desc.can_answer(IntRange(31, 49))
        assert not desc.can_answer(IntRange(29, 49))

    def test_restrict_trims_rows(self):
        relation = sample_relation()
        rows = relation.select_range("age", IntRange(25, 55))
        partition = Partition.from_rows("Patient", "age", IntRange(25, 55), rows)
        narrowed = partition.restrict(IntRange(30, 50), SCHEMA.position("age"))
        assert [r[2] for r in narrowed.rows] == [30, 35, 40, 45, 50]
        assert narrowed.descriptor.range == IntRange(30, 50)

    def test_restrict_disjoint_yields_empty(self):
        partition = Partition.from_rows("Patient", "age", IntRange(25, 30), [])
        empty = partition.restrict(IntRange(90, 95), SCHEMA.position("age"))
        assert empty.rows == ()

    def test_size_bytes_grows_with_rows(self):
        small = Partition.from_rows("P", "age", IntRange(0, 1), [(1, "a", 30)])
        large = Partition.from_rows(
            "P", "age", IntRange(0, 1), [(i, "a", 30) for i in range(10)]
        )
        assert large.size_bytes > small.size_bytes

    def test_descriptor_ordering_and_str(self):
        a = PartitionDescriptor("A", "x", IntRange(0, 1))
        b = PartitionDescriptor("B", "x", IntRange(0, 1))
        assert a < b
        assert str(a) == "A.x[0, 1]"
