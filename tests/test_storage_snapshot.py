"""Tests for system snapshots (save / restore)."""

from __future__ import annotations

import pytest

from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.errors import StorageError
from repro.ranges.interval import IntRange
from repro.storage.snapshot import (
    load_system,
    restore_system,
    save_system,
    snapshot_system,
)
from repro.workloads.generators import UniformRangeWorkload


def warmed_system() -> RangeSelectionSystem:
    system = RangeSelectionSystem(SystemConfig(n_peers=30, seed=71))
    for query in UniformRangeWorkload(system.config.domain, 120, seed=72):
        system.query(query)
    return system


class TestRoundTrip:
    def test_placements_survive(self):
        original = warmed_system()
        restored = restore_system(snapshot_system(original))
        assert restored.total_placements() == original.total_placements()
        assert restored.unique_partitions() == original.unique_partitions()

    def test_load_distribution_identical(self):
        original = warmed_system()
        restored = restore_system(snapshot_system(original))
        assert restored.load_distribution() == original.load_distribution()

    def test_restored_system_answers_like_original(self):
        original = warmed_system()
        restored = restore_system(snapshot_system(original))
        probes = UniformRangeWorkload(original.config.domain, 60, seed=73)
        for query in probes:
            a = original.query(query)
            b = restored.query(query)
            assert (a.similarity, a.recall, a.exact) == (
                b.similarity,
                b.recall,
                b.exact,
            )

    def test_file_round_trip(self, tmp_path):
        original = warmed_system()
        path = tmp_path / "snapshot.json"
        save_system(original, path)
        restored = load_system(path)
        assert restored.total_placements() == original.total_placements()

    def test_rows_preserved(self, tmp_path):
        from repro.db.partition import Partition, PartitionDescriptor

        system = RangeSelectionSystem(SystemConfig(n_peers=10, seed=74))
        descriptor = PartitionDescriptor("R", "value", IntRange(5, 9))
        partition = Partition(descriptor=descriptor, rows=((5, "a"), (7, "b")))
        system.store_partition(
            IntRange(5, 9), "R", "value", partition=partition
        )
        path = tmp_path / "rows.json"
        save_system(system, path)
        restored = load_system(path)
        stored_rows = [
            entry.partition.rows
            for store in restored.stores.values()
            for _, entry in store.entries()
            if entry.partition is not None
        ]
        assert ((5, "a"), (7, "b")) in stored_rows

    def test_placement_invariant_after_restore(self):
        restored = restore_system(snapshot_system(warmed_system()))
        restored.check_placement_invariant()


class TestValidation:
    def test_unknown_format_rejected(self):
        with pytest.raises(StorageError):
            restore_system({"format": 99, "config": {}, "entries": []})

    def test_config_round_trips_exactly(self):
        system = RangeSelectionSystem(
            SystemConfig(n_peers=12, seed=75, matcher="containment", padding=0.2)
        )
        restored = restore_system(snapshot_system(system))
        assert restored.config == system.config
