"""Tests for the event-driven transport: delay, loss, crashes, retries."""

from __future__ import annotations

import pytest

from repro.errors import RequestTimeoutError, UnknownPeerError
from repro.net.latency import ConstantLatency
from repro.sim import AsyncNetwork, FaultInjector, RetryPolicy, Simulator


def make_net(drop: float = 0.0, latency_ms: float = 10.0, seed: int = 0):
    sim = Simulator()
    net = AsyncNetwork(
        sim, latency=ConstantLatency(latency_ms), drop_probability=drop, seed=seed
    )
    return sim, net


class TestDelivery:
    def test_round_trip_takes_two_link_delays(self):
        sim, net = make_net(latency_ms=25.0)
        net.register(7, lambda msg: ("echo", msg.payload))
        future = net.send(1, 7, "ping", payload=42)
        assert not future.done
        result = sim.run_until_complete(future)
        assert result == ("echo", 42)
        assert sim.now == 50.0

    def test_unknown_recipient_rejects(self):
        _sim, net = make_net()
        future = net.send(1, 99, "ping")
        assert future.failed
        assert isinstance(future.exception(), UnknownPeerError)

    def test_both_legs_are_counted(self):
        sim, net = make_net(latency_ms=5.0)
        net.register(7, lambda msg: None)
        sim.run_until_complete(net.send(1, 7, "ping"))
        assert net.stats.messages == 2
        assert net.stats.by_kind == {"ping": 1, "ping-reply": 1}
        assert net.stats.latency_ms == pytest.approx(10.0)

    def test_concurrent_sends_interleave(self):
        sim, net = make_net(latency_ms=10.0)
        order: list[str] = []
        net.register(7, lambda msg: order.append(msg.payload))
        net.send(1, 7, "m", payload="first")
        sim.call_later(3, lambda: net.send(1, 7, "m", payload="second"))
        sim.run()
        assert order == ["first", "second"]


class TestFaults:
    def test_crashed_recipient_swallows_message(self):
        sim, net = make_net()
        handled: list[object] = []
        net.register(7, handled.append)
        net.crash(7)
        future = net.send(1, 7, "ping")
        sim.run()
        assert handled == []
        assert not future.done
        assert net.stats.drops == 1
        assert not net.is_alive(7)

    def test_recover_restores_delivery(self):
        sim, net = make_net()
        net.register(7, lambda msg: "pong")
        net.crash(7)
        net.recover(7)
        assert sim.run_until_complete(net.send(1, 7, "ping")) == "pong"

    def test_drop_probability_loses_messages(self):
        sim, net = make_net(drop=0.5, seed=3)
        net.register(7, lambda msg: "pong")
        futures = [net.send(1, 7, "ping") for _ in range(40)]
        sim.run()
        delivered = sum(1 for f in futures if f.done)
        assert 0 < delivered < 40
        assert net.stats.drops > 0

    def test_injector_validates_probability(self):
        with pytest.raises(ValueError):
            FaultInjector(drop_probability=1.0)

    def test_scheduled_crash_and_recovery(self):
        sim, net = make_net(latency_ms=10.0)
        net.register(7, lambda msg: "pong")
        net.faults.schedule_crash(sim, 7, at_ms=5.0, recover_at_ms=15.0)
        lost = net.send(1, 7, "ping")  # delivery at t=10, inside the outage
        sim.run(until=12.0)
        assert not lost.done
        answered = net.send(1, 7, "ping")  # delivery at t=22, after recovery
        assert sim.run_until_complete(answered) == "pong"


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout_ms=0)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)

    def test_backoff_schedule(self):
        policy = RetryPolicy(timeout_ms=100, max_retries=2, backoff=2.0)
        assert policy.total_attempts == 3
        assert [policy.timeout_for(i) for i in range(3)] == [100, 200, 400]
        assert policy.worst_case_ms() == 700


class TestRequest:
    def test_plain_request_resolves(self):
        sim, net = make_net(latency_ms=10.0)
        net.register(7, lambda msg: "pong")
        assert sim.run_until_complete(net.request(1, 7, "ping")) == "pong"

    def test_drop_then_retry_succeeds(self):
        """First attempt is lost to an outage; the retry gets through."""
        sim, net = make_net(latency_ms=10.0)
        net.register(7, lambda msg: "pong")
        net.crash(7)
        # Recovery lands after the first attempt's delivery (t=10) but
        # before the retry fires (t=100), so attempt two succeeds.
        sim.call_later(50.0, lambda: net.recover(7))
        future = net.request(
            1, 7, "ping", policy=RetryPolicy(timeout_ms=100.0, max_retries=2)
        )
        assert sim.run_until_complete(future) == "pong"
        assert net.stats.retries == 1
        assert net.stats.timeouts == 0
        assert net.stats.drops == 1
        assert sim.now == pytest.approx(120.0)  # retry at 100 + round trip

    def test_retry_exhaustion_raises_typed_timeout(self):
        sim, net = make_net(latency_ms=10.0)
        net.register(7, lambda msg: "pong")
        net.crash(7)
        policy = RetryPolicy(timeout_ms=100.0, max_retries=2, backoff=2.0)
        future = net.request(1, 7, "ping", policy=policy)
        with pytest.raises(RequestTimeoutError) as excinfo:
            sim.run_until_complete(future)
        assert isinstance(excinfo.value, TimeoutError)  # typed subclass
        assert excinfo.value.recipient == 7
        assert excinfo.value.attempts == policy.total_attempts
        assert excinfo.value.waited_ms == pytest.approx(policy.worst_case_ms())
        assert net.stats.timeouts == 1
        assert net.stats.retries == 2

    def test_stats_reset_clears_fault_counters(self):
        sim, net = make_net()
        net.register(7, lambda msg: None)
        net.crash(7)
        with pytest.raises(RequestTimeoutError):
            sim.run_until_complete(
                net.request(1, 7, "ping", policy=RetryPolicy(timeout_ms=10, max_retries=0))
            )
        net.stats.reset()
        assert net.stats.timeouts == 0
        assert net.stats.drops == 0
        assert net.stats.retries == 0
