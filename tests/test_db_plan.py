"""Tests for the planner and executor."""

from __future__ import annotations

import pytest

from repro.db.catalog import medical_catalog
from repro.db.plan.executor import SourceProvider, execute_plan
from repro.db.plan.nodes import ColumnEqualsFilter, JoinNode, LeafSelection, ProjectNode
from repro.db.plan.planner import plan_select
from repro.db.predicates import EqualityPredicate, RangePredicate
from repro.db.sql.parser import parse_select
from repro.errors import PlanningError, UnsupportedQueryError
from repro.ranges.interval import IntRange


CATALOG = medical_catalog(n_patients=300, n_physicians=10)
SCHEMA = CATALOG.schema


def plan(sql: str) -> ProjectNode:
    return plan_select(parse_select(sql), SCHEMA)


def run(sql: str):
    return execute_plan(plan(sql), SCHEMA, SourceProvider(CATALOG))


class TestPlanner:
    def test_selection_pushdown_shape(self):
        p = plan(
            "SELECT Prescription.prescription FROM Patient, Diagnosis, Prescription "
            "WHERE age BETWEEN 30 AND 50 AND diagnosis = 'Glaucoma' "
            "AND Patient.patient_id = Diagnosis.patient_id "
            "AND Diagnosis.prescription_id = Prescription.prescription_id"
        )
        assert isinstance(p, ProjectNode)
        top = p.child
        assert isinstance(top, JoinNode)
        # The leaves carry the pushed-down selections.
        leaves = _collect_leaves(p)
        patient = leaves["Patient"]
        assert isinstance(patient.primary, RangePredicate)
        assert patient.primary.range == IntRange(30, 50)
        diagnosis = leaves["Diagnosis"]
        assert isinstance(diagnosis.primary, EqualityPredicate)

    def test_unqualified_column_resolution(self):
        p = plan("SELECT * FROM Patient WHERE age >= 100")
        leaf = _collect_leaves(p)["Patient"]
        assert leaf.primary is not None
        assert leaf.primary.relation == "Patient"

    def test_ambiguous_column_rejected(self):
        # Both Patient and Physician declare "age".
        with pytest.raises(PlanningError):
            plan(
                "SELECT * FROM Patient, Physician "
                "WHERE age >= 30 AND Patient.patient_id = Physician.physician_id"
            )

    def test_unknown_relation_rejected(self):
        with pytest.raises(PlanningError):
            plan("SELECT * FROM Nurse")

    def test_unknown_column_rejected(self):
        with pytest.raises(PlanningError):
            plan("SELECT * FROM Patient WHERE weight >= 3")

    def test_disconnected_join_graph_rejected(self):
        with pytest.raises(PlanningError):
            plan("SELECT * FROM Patient, Prescription WHERE age >= 30")

    def test_contradictory_range_rejected(self):
        with pytest.raises(PlanningError):
            plan("SELECT * FROM Patient WHERE age >= 50 AND age <= 30")

    def test_two_range_attributes_rejected(self):
        """The paper's restriction: one selection attribute per relation."""
        with pytest.raises(UnsupportedQueryError):
            plan(
                "SELECT * FROM Patient "
                "WHERE age >= 30 AND patient_id <= 100"
            )

    def test_strict_inequalities_tighten_range(self):
        p = plan("SELECT * FROM Patient WHERE age > 30 AND age < 50")
        leaf = _collect_leaves(p)["Patient"]
        assert isinstance(leaf.primary, RangePredicate)
        assert leaf.primary.range == IntRange(31, 49)

    def test_star_projection_covers_all_columns(self):
        p = plan("SELECT * FROM Patient")
        assert ("Patient", "age") in p.columns
        assert len(p.columns) == 3

    def test_redundant_join_becomes_filter(self):
        p = plan(
            "SELECT * FROM Patient, Diagnosis "
            "WHERE Patient.patient_id = Diagnosis.patient_id "
            "AND Diagnosis.patient_id = Patient.patient_id"
        )
        assert isinstance(p.child, ColumnEqualsFilter)

    def test_pretty_renders_all_nodes(self):
        text = plan(
            "SELECT name FROM Patient WHERE age BETWEEN 30 AND 50"
        ).pretty()
        assert "Project" in text and "Select" in text


class TestExecutor:
    def test_single_relation_selection(self):
        result = run("SELECT age FROM Patient WHERE age BETWEEN 30 AND 50")
        assert len(result) > 0
        assert all(30 <= row[0] <= 50 for row in result.rows)

    def test_matches_manual_count(self):
        result = run("SELECT * FROM Patient WHERE age >= 90")
        expected = CATALOG.relation("Patient").select_range(
            "age", IntRange(90, 120)
        )
        assert len(result) == len(expected)

    def test_join_correctness_against_nested_loop(self):
        result = run(
            "SELECT Patient.patient_id, diagnosis FROM Patient, Diagnosis "
            "WHERE age BETWEEN 30 AND 60 "
            "AND Patient.patient_id = Diagnosis.patient_id"
        )
        # Naive reference: nested loops over the base data.
        patients = {
            row[0]: row
            for row in CATALOG.relation("Patient").scan()
            if 30 <= row[2] <= 60
        }
        expected = [
            (row[0], row[1])
            for row in CATALOG.relation("Diagnosis").scan()
            if row[0] in patients
        ]
        assert sorted(result.rows) == sorted(expected)

    def test_three_way_paper_query_runs(self):
        result = run(
            "SELECT Prescription.prescription FROM Patient, Diagnosis, Prescription "
            "WHERE age BETWEEN 30 AND 50 AND diagnosis = 'Glaucoma' "
            "AND Patient.patient_id = Diagnosis.patient_id "
            "AND date BETWEEN DATE '2000-01-01' AND DATE '2002-12-31' "
            "AND Diagnosis.prescription_id = Prescription.prescription_id"
        )
        assert result.stats.min_coverage == 1.0
        # Every result must actually be a Glaucoma prescription in range.
        diagnosis_by_rx = {
            row[3]: row[1] for row in CATALOG.relation("Diagnosis").scan()
        }
        assert all(row for row in result.rows)
        for row in result.rows:
            assert isinstance(row[0], str)
        assert set(result.stats.leaf_origins.values()) == {"source"}
        assert diagnosis_by_rx  # sanity: data exists

    def test_decoded_rows_convert_dates(self):
        import datetime as dt

        result = run(
            "SELECT date FROM Prescription "
            "WHERE date BETWEEN DATE '2000-01-01' AND DATE '2000-12-31'"
        )
        decoded = result.decoded_rows(SCHEMA)
        assert all(isinstance(row[0], dt.date) for row in decoded)

    def test_bare_scan_counts_source_access(self):
        before = CATALOG.source_accesses
        run("SELECT * FROM Physician")
        assert CATALOG.source_accesses == before + 1

    def test_redundant_join_filter_executes(self):
        result = run(
            "SELECT Patient.patient_id FROM Patient, Diagnosis "
            "WHERE Patient.patient_id = Diagnosis.patient_id "
            "AND Diagnosis.patient_id = Patient.patient_id"
        )
        assert len(result) == 300  # one diagnosis per patient


def _collect_leaves(node) -> dict[str, LeafSelection]:
    out: dict[str, LeafSelection] = {}

    def walk(n):
        if isinstance(n, LeafSelection):
            out[n.relation] = n
        elif isinstance(n, JoinNode):
            walk(n.left)
            walk(n.right)
        elif isinstance(n, (ProjectNode, ColumnEqualsFilter)):
            walk(n.child)

    walk(node)
    return out


class TestOrderByLimitExecution:
    def test_order_by_ascending(self):
        result = run(
            "SELECT age FROM Patient WHERE age BETWEEN 30 AND 60 ORDER BY age"
        )
        ages = [row[0] for row in result.rows]
        assert ages == sorted(ages)

    def test_order_by_descending_with_limit(self):
        result = run(
            "SELECT age FROM Patient ORDER BY age DESC LIMIT 5"
        )
        ages = [row[0] for row in result.rows]
        assert len(ages) == 5
        assert ages == sorted(ages, reverse=True)
        top = max(row[2] for row in CATALOG.relation("Patient").scan())
        assert ages[0] == top

    def test_order_by_non_projected_column(self):
        result = run(
            "SELECT name FROM Patient WHERE age BETWEEN 30 AND 40 "
            "ORDER BY age DESC"
        )
        # The projection drops age but ordering by it must still apply:
        # reconstruct ages by name to verify.
        age_by_name = {
            row[1]: row[2] for row in CATALOG.relation("Patient").scan()
        }
        ages = [age_by_name[row[0]] for row in result.rows]
        assert ages == sorted(ages, reverse=True)

    def test_multi_key_ordering_is_stable(self):
        result = run(
            "SELECT age, patient_id FROM Patient ORDER BY age, patient_id DESC "
            "LIMIT 50"
        )
        rows = result.rows
        assert rows == sorted(rows, key=lambda r: (r[0], -r[1]))

    def test_limit_zero(self):
        assert len(run("SELECT * FROM Patient LIMIT 0")) == 0

    def test_plan_prints_order_and_limit(self):
        text = plan("SELECT age FROM Patient ORDER BY age DESC LIMIT 3").pretty()
        assert "ORDER BY Patient.age DESC" in text
        assert "LIMIT 3" in text
