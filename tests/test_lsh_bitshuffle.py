"""Tests for the full bit-shuffle (min-wise) permutation network."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HashFamilyError
from repro.lsh.base import MinHash
from repro.lsh.bitshuffle import (
    BitShufflePermutation,
    MinWiseFamily,
    bit_position_map,
    shuffle_once,
)
from repro.ranges.interval import IntRange
from repro.util.rng import derive_rng


class TestShuffleOnce:
    def test_paper_8bit_semantics(self):
        """One iteration: key-1 bits to the upper half in order, key-0 bits
        to the lower half in order (Figure 3a)."""
        width = 8
        key = 0b01010101  # ones at even positions
        x = 0b11110000
        out = shuffle_once(x, key, width, width)
        # ones of key: positions 0,2,4,6 carry bits (0,0,1,1) -> upper half
        # zeros of key: positions 1,3,5,7 carry bits (0,0,1,1) -> lower half
        assert out == 0b11001100

    def test_identity_on_zero(self):
        assert shuffle_once(0, 0b01010101, 8, 8) == 0

    def test_all_ones_invariant(self):
        assert shuffle_once(0xFF, 0b00110101, 8, 8) == 0xFF

    def test_blockwise_application(self):
        # With block size 4 over an 8-bit word, both nibbles use the key.
        width, block = 8, 4
        key = 0b0011
        x = 0b0011_0011
        out = shuffle_once(x, key, block, width)
        # ones of key: positions 0,1 (values 1,1) -> upper half of block
        assert out == 0b1100_1100


class TestBitPositionMap:
    def test_map_agrees_with_iterated_shuffle(self, rng):
        family = MinWiseFamily(width=32)
        for _ in range(5):
            perm = family.sample(rng)
            for x in [0, 1, 255, 1000, 123456, (1 << 32) - 1]:
                assert perm.apply(x) == perm.apply_via_map(x)

    def test_map_is_permutation_of_positions(self, rng):
        family = MinWiseFamily(width=16)
        perm = family.sample(rng)
        mapping = bit_position_map(perm.width, perm.keys)
        assert sorted(mapping) == list(range(16))


class TestBitShufflePermutation:
    def test_key_count_validation(self):
        with pytest.raises(HashFamilyError):
            BitShufflePermutation([0b1100], width=8)  # needs 3 keys

    def test_key_popcount_validation(self):
        # level keys for width 8: 8-bit with 4 ones, 4-bit with 2, 2-bit with 1
        with pytest.raises(HashFamilyError):
            BitShufflePermutation([0b11100000, 0b0011, 0b01], width=8)
        BitShufflePermutation([0b11110000, 0b0011, 0b01], width=8)  # valid

    def test_key_range_validation(self):
        with pytest.raises(HashFamilyError):
            BitShufflePermutation([1 << 9, 0b0011, 0b01], width=8)

    def test_width_validation(self):
        with pytest.raises(HashFamilyError):
            MinWiseFamily(width=12)
        with pytest.raises(HashFamilyError):
            MinWiseFamily(width=1)

    def test_bijective_on_8bit_space(self, rng):
        family = MinWiseFamily(width=8)
        perm = family.sample(rng)
        images = {perm.apply(x) for x in range(256)}
        assert images == set(range(256))

    def test_apply_array_matches_scalar(self, rng):
        perm = MinWiseFamily(width=32).sample(rng)
        xs = np.arange(0, 5000, 7, dtype=np.uint64)
        fast = perm.apply_array(xs)
        slow = np.array([perm.apply(int(x)) for x in xs], dtype=np.uint64)
        assert (fast == slow).all()

    def test_input_validation(self, rng):
        perm = MinWiseFamily(width=8).sample(rng)
        with pytest.raises(ValueError):
            perm.apply(256)
        with pytest.raises(ValueError):
            perm.apply(-1)

    @given(st.integers(0, (1 << 32) - 1))
    @settings(max_examples=30)
    def test_popcount_preserved(self, x):
        """A bit-position permutation never changes the number of set bits."""
        perm = MinWiseFamily(width=32).sample(derive_rng(3, "popcount"))
        assert bin(perm.apply(x)).count("1") == bin(x).count("1")


class TestMinHash:
    def test_hash_range_matches_slow_path(self, rng):
        mh = MinHash(MinWiseFamily(width=32).sample(rng))
        for r in [IntRange(0, 100), IntRange(30, 50), IntRange(999, 1000)]:
            assert mh.hash_range(r) == mh.hash_range_slow(r)

    def test_min_is_attained(self, rng):
        mh = MinHash(MinWiseFamily(width=32).sample(rng))
        r = IntRange(10, 30)
        images = [mh.permutation.apply(v) for v in r]
        assert mh.hash_range(r) == min(images)

    def test_subset_min_dominates(self, rng):
        """min over a superset is <= min over a subset."""
        mh = MinHash(MinWiseFamily(width=32).sample(rng))
        assert mh.hash_range(IntRange(0, 100)) <= mh.hash_range(IntRange(20, 80))

    def test_identical_ranges_always_collide(self, rng):
        mh = MinHash(MinWiseFamily(width=32).sample(rng))
        assert mh.hash_range(IntRange(5, 25)) == mh.hash_range(IntRange(5, 25))

    def test_sampling_is_seed_deterministic(self):
        a = MinWiseFamily().sample(derive_rng(7, "s"))
        b = MinWiseFamily().sample(derive_rng(7, "s"))
        assert a.keys == b.keys
