"""Deterministic random-stream management.

Every stochastic component of the library takes a seed (or an
``numpy.random.Generator``).  To keep experiments reproducible while letting
subsystems draw independently, we derive child generators from a root seed
with *named* streams: the same ``(seed, name)`` pair always yields the same
stream, and distinct names yield statistically independent streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_rng", "spawn_rngs", "SeedSequenceFactory"]


def _name_to_entropy(name: str) -> int:
    """Map a stream name to a stable 64-bit integer via SHA-256."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(seed: int, name: str = "") -> np.random.Generator:
    """Return a generator for stream ``name`` derived from ``seed``.

    The derivation is stable across processes and Python versions: the name
    is hashed with SHA-256 and mixed into a ``SeedSequence`` alongside the
    root seed.

    >>> a = derive_rng(7, "chord")
    >>> b = derive_rng(7, "chord")
    >>> int(a.integers(1 << 30)) == int(b.integers(1 << 30))
    True
    """
    entropy = [int(seed)]
    if name:
        entropy.append(_name_to_entropy(name))
    return np.random.default_rng(np.random.SeedSequence(entropy))


def spawn_rngs(seed: int, names: list[str]) -> dict[str, np.random.Generator]:
    """Derive one independent generator per name in ``names``."""
    return {name: derive_rng(seed, name) for name in names}


class SeedSequenceFactory:
    """Hands out numbered child generators from one root seed.

    Useful when a component needs an unbounded sequence of independent
    streams (for example, one per sampled hash function) and only the order
    matters.
    """

    def __init__(self, seed: int, name: str = "") -> None:
        self._seed = int(seed)
        self._name = name
        self._counter = 0

    def next_rng(self) -> np.random.Generator:
        """Return the next generator in the deterministic sequence."""
        stream = f"{self._name}#{self._counter}"
        self._counter += 1
        return derive_rng(self._seed, stream)

    @property
    def issued(self) -> int:
        """Number of generators issued so far."""
        return self._counter
