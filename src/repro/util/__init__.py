"""Shared utilities: deterministic RNG streams, bit operations, statistics.

These helpers are deliberately dependency-light; every other subpackage may
import from here, but ``repro.util`` imports nothing from the rest of the
library.
"""

from repro.util.bitops import (
    bit_length_of_space,
    extract_bits,
    is_power_of_two,
    ones_positions,
    popcount,
    random_key_with_ones,
    reverse_bits,
)
from repro.util.rng import SeedSequenceFactory, derive_rng, spawn_rngs
from repro.util.stats import (
    DiscretePdf,
    Histogram,
    SummaryStats,
    cdf_points,
    percentile,
    summarize,
)
from repro.util.timer import Timer, time_call
from repro.util.tolerant import parse_json_record, read_jsonl_tolerant

__all__ = [
    "SeedSequenceFactory",
    "derive_rng",
    "spawn_rngs",
    "popcount",
    "ones_positions",
    "extract_bits",
    "reverse_bits",
    "is_power_of_two",
    "bit_length_of_space",
    "random_key_with_ones",
    "percentile",
    "summarize",
    "SummaryStats",
    "Histogram",
    "DiscretePdf",
    "cdf_points",
    "Timer",
    "time_call",
    "parse_json_record",
    "read_jsonl_tolerant",
]
