"""Small statistics toolkit for experiment reporting.

The paper reports means with 1st/99th percentiles (Figs 11-12), binned
similarity histograms (Figs 6-7) and recall CDFs (Figs 8-10); the helpers
here compute exactly those summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "percentile",
    "SummaryStats",
    "summarize",
    "Histogram",
    "DiscretePdf",
    "cdf_points",
]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) of ``values`` by linear interpolation."""
    if not 0 <= q <= 100:
        raise ValueError("percentile q must be within [0, 100]")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot take a percentile of an empty sequence")
    return float(np.percentile(arr, q))


@dataclass(frozen=True)
class SummaryStats:
    """Mean plus the percentile band the paper plots (1st and 99th)."""

    count: int
    mean: float
    p01: float
    p50: float
    p99: float
    minimum: float
    maximum: float

    def as_row(self) -> tuple[float, float, float]:
        """(1st percentile, mean, 99th percentile) — the paper's error bars."""
        return (self.p01, self.mean, self.p99)


def summarize(values: Iterable[float]) -> SummaryStats:
    """Compute :class:`SummaryStats` over ``values``."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sequence")
    return SummaryStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        p01=float(np.percentile(arr, 1)),
        p50=float(np.percentile(arr, 50)),
        p99=float(np.percentile(arr, 99)),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
    )


@dataclass
class Histogram:
    """Fixed-bin histogram over [0, 1] used for similarity distributions.

    ``n_bins`` equal bins partition [0, 1]; the value 1.0 lands in the last
    bin.  Percentages are relative to the number of *observations added*,
    including any recorded misses, mirroring "percentage of total queried
    partitions" on the paper's y-axes.
    """

    n_bins: int = 10
    counts: list[int] = field(default_factory=list)
    misses: int = 0

    def __post_init__(self) -> None:
        if self.n_bins <= 0:
            raise ValueError("histogram needs at least one bin")
        if not self.counts:
            self.counts = [0] * self.n_bins

    def add(self, value: float) -> None:
        """Record an observation in [0, 1]."""
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"histogram value {value} outside [0, 1]")
        idx = min(int(value * self.n_bins), self.n_bins - 1)
        self.counts[idx] += 1

    def add_miss(self) -> None:
        """Record a query that found no match at all."""
        self.misses += 1

    @property
    def total(self) -> int:
        """Observations recorded, including misses."""
        return sum(self.counts) + self.misses

    def bin_edges(self) -> list[tuple[float, float]]:
        """The (low, high) edges of every bin."""
        step = 1.0 / self.n_bins
        return [(i * step, (i + 1) * step) for i in range(self.n_bins)]

    def percentages(self) -> list[float]:
        """Percentage of all observations falling in each bin."""
        total = self.total
        if total == 0:
            return [0.0] * self.n_bins
        return [100.0 * c / total for c in self.counts]

    def miss_percentage(self) -> float:
        """Percentage of observations that were misses."""
        total = self.total
        return 100.0 * self.misses / total if total else 0.0


@dataclass
class DiscretePdf:
    """Probability distribution over small non-negative integers (Fig 12b)."""

    counts: dict[int, int] = field(default_factory=dict)

    def add(self, value: int) -> None:
        """Record an integer observation (e.g. a hop count)."""
        if value < 0:
            raise ValueError("DiscretePdf values must be non-negative")
        self.counts[value] = self.counts.get(value, 0) + 1

    @property
    def total(self) -> int:
        """Number of observations recorded."""
        return sum(self.counts.values())

    def probabilities(self) -> dict[int, float]:
        """Map value -> empirical probability."""
        total = self.total
        if total == 0:
            return {}
        return {v: c / total for v, c in sorted(self.counts.items())}

    def mean(self) -> float:
        """Empirical mean of the distribution."""
        total = self.total
        if total == 0:
            raise ValueError("empty distribution has no mean")
        return sum(v * c for v, c in self.counts.items()) / total


def cdf_points(
    values: Sequence[float], grid: Sequence[float]
) -> list[tuple[float, float]]:
    """Percentage of ``values`` >= g for each g in ``grid``.

    This is the paper's recall-plot convention: the x-axis runs from 1.0 down
    to 0.0 and the y-axis is "percentage of queries answered up to a given
    portion", i.e. with recall at least x.
    """
    arr = np.asarray(list(values), dtype=float)
    out: list[tuple[float, float]] = []
    for g in grid:
        if arr.size == 0:
            out.append((float(g), 0.0))
        else:
            out.append((float(g), float(100.0 * np.mean(arr >= g))))
    return out
