"""Bit-level helpers used by the min-wise permutation networks.

All functions operate on plain Python ints interpreted as fixed-width
unsigned words; widths are explicit arguments so the same code serves the
8-bit worked example from the paper's Figure 3 and the 32-bit identifier
space used by the system.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "popcount",
    "ones_positions",
    "extract_bits",
    "reverse_bits",
    "is_power_of_two",
    "bit_length_of_space",
    "random_key_with_ones",
]


def popcount(x: int) -> int:
    """Number of set bits in ``x`` (``x`` must be non-negative)."""
    if x < 0:
        raise ValueError("popcount requires a non-negative integer")
    return int(x).bit_count()


def ones_positions(x: int, width: int) -> list[int]:
    """Positions (LSB = 0) of the set bits of ``x`` within ``width`` bits.

    >>> ones_positions(0b1010, 4)
    [1, 3]
    """
    return [i for i in range(width) if (x >> i) & 1]


def extract_bits(x: int, positions: list[int]) -> int:
    """Pack the bits of ``x`` found at ``positions`` into a compact int.

    Bit ``positions[i]`` of ``x`` becomes bit ``i`` of the result, so order
    is preserved ("in order" in the paper's shuffle description).

    >>> bin(extract_bits(0b1100, [2, 3]))
    '0b11'
    """
    out = 0
    for i, pos in enumerate(positions):
        out |= ((x >> pos) & 1) << i
    return out


def reverse_bits(x: int, width: int) -> int:
    """Reverse the ``width`` low bits of ``x``."""
    out = 0
    for _ in range(width):
        out = (out << 1) | (x & 1)
        x >>= 1
    return out


def is_power_of_two(n: int) -> bool:
    """True when ``n`` is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def bit_length_of_space(size: int) -> int:
    """Number of bits needed to index a space of ``size`` values."""
    if size <= 0:
        raise ValueError("space size must be positive")
    return max(1, (size - 1).bit_length())


def random_key_with_ones(width: int, ones: int, rng: np.random.Generator) -> int:
    """Sample a ``width``-bit key with exactly ``ones`` bits set.

    This is how the paper samples shuffle keys: "an 8-bit key that has
    exactly 4 random bits set to 1".
    """
    if not 0 <= ones <= width:
        raise ValueError(f"cannot set {ones} bits in a {width}-bit key")
    positions = rng.choice(width, size=ones, replace=False)
    key = 0
    for pos in positions:
        key |= 1 << int(pos)
    return key
