"""Wall-clock timing helpers for the hashing-cost experiment (Figure 5)."""

from __future__ import annotations

import time
from typing import Any, Callable

__all__ = ["Timer", "time_call"]


class Timer:
    """Context manager measuring elapsed wall-clock time in milliseconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed_ms >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed_ms = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed_ms = (time.perf_counter() - self._start) * 1000.0


def time_call(fn: Callable[[], Any], repeats: int = 1) -> float:
    """Average wall-clock milliseconds of ``fn()`` over ``repeats`` calls."""
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    with Timer() as t:
        for _ in range(repeats):
            fn()
    return t.elapsed_ms / repeats
