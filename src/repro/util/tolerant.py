"""Crash-tolerant readers for append-only record files.

Processes in this project die by SIGKILL on purpose — chaos drills kill
live peers mid-write — so every append-only file format (flight-recorder
JSONL, the storage WAL) must be readable after a torn final record.  The
policy is uniform: a record that does not decode is *skipped and
counted*, never raised.  The reader's job is to salvage what survived.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = ["parse_json_record", "read_jsonl_tolerant"]


def parse_json_record(raw: "str | bytes") -> "dict[str, Any] | None":
    """Decode one JSON object from a torn-write-prone source.

    Returns the dict, or None when the bytes are truncated, malformed,
    or decode to something other than an object.
    """
    try:
        if isinstance(raw, bytes):
            raw = raw.decode("utf-8", errors="strict")
        doc = json.loads(raw)
    except ValueError:
        return None
    return doc if isinstance(doc, dict) else None


def read_jsonl_tolerant(path: str) -> tuple[list[dict[str, Any]], int]:
    """Read JSONL produced by a process that may have died mid-write.

    A SIGKILL can leave the final line truncated (or interleave a torn
    write); those lines are *skipped and counted*, never raised.  Returns
    ``(records, skipped)``.
    """
    records: list[dict[str, Any]] = []
    skipped = 0
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            doc = parse_json_record(line)
            if doc is None:
                skipped += 1
            else:
                records.append(doc)
    return records, skipped
