"""Stdlib logging, wired per subsystem.

The library logs under the ``repro`` namespace — one child logger per
subsystem (``repro.core``, ``repro.sim``, ``repro.obs.health`` …) so a
host application can dial subsystems up or down independently.  The
library itself only attaches a :class:`logging.NullHandler` (the
standard library-package idiom), so nothing reaches stderr until a host
configures handlers; the CLI does that via :func:`configure_logging`
(driven by ``-v``/``-vv``).
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "configure_logging"]

#: Root of the library's logger namespace.
ROOT_NAME = "repro"

#: Marker attribute set on handlers we attach, so repeated CLI
#: invocations in one process (tests drive ``main()`` directly) don't
#: stack duplicate handlers.
_HANDLER_MARK = "_repro_cli_handler"

LOG_FORMAT = "%(levelname)s %(name)s: %(message)s"

# Keep the library silent (no logging.lastResort stderr spill) until a
# host explicitly configures handlers.
logging.getLogger(ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(subsystem: str = "") -> logging.Logger:
    """The logger for one subsystem (``repro.<subsystem>``).

    An empty name returns the library root logger.
    """
    if not subsystem:
        return logging.getLogger(ROOT_NAME)
    return logging.getLogger(f"{ROOT_NAME}.{subsystem}")


def configure_logging(verbosity: int = 0) -> logging.Logger:
    """Attach a stderr handler to the ``repro`` logger at a level chosen
    by ``verbosity`` (0 → WARNING, 1 → INFO, 2+ → DEBUG).

    Idempotent: calling again only adjusts the level.  Returns the
    configured root library logger.
    """
    if verbosity <= 0:
        level = logging.WARNING
    elif verbosity == 1:
        level = logging.INFO
    else:
        level = logging.DEBUG
    logger = logging.getLogger(ROOT_NAME)
    logger.setLevel(level)
    if not any(getattr(h, _HANDLER_MARK, False) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(LOG_FORMAT))
        setattr(handler, _HANDLER_MARK, True)
        logger.addHandler(handler)
    for handler in logger.handlers:
        if getattr(handler, _HANDLER_MARK, False):
            handler.setLevel(level)
    return logger
