"""Structured query-lifecycle tracing.

The paper's evaluation is entirely about per-query cost — hops to the
``l`` identifier owners, match quality at each contacted bucket, the
store-on-miss fan-out — but the counters only ever exposed *totals*.  A
:class:`QueryTrace` records one query end to end as a tree of spans with
timestamped events: the hashing of each of the ``l`` groups, each lookup
chain hop by hop (with the finger-table edge that produced the hop),
every match reply and its score, failover steps down the successor list,
retry/timeout waits on the event-driven transport, and each store-on-miss
placement.  Both query paths emit the same span vocabulary, so a trace
from the synchronous :meth:`~repro.core.system.RangeSelectionSystem.query`
and one from the event-driven
:meth:`~repro.sim.query.AsyncQueryEngine.run` diff cleanly.

Span vocabulary::

    query                     the root span (one per trace)
      hash                    group hashing; one "group" event per identifier
      locate                  the l concurrent (or sequential) lookups
        chain                 one identifier's lookup; attrs: identifier, owner
          route-hop events    one per overlay edge, with the routing detail
          attempt events      one per replica asked, with the outcome
          failover events     successor-list steps after a dead owner
          net events          send/retry/timeout/reply (event-driven path)
          match-reply event   the answering peer's descriptor and score
      fetch                   winning partition retrieval (when enabled)
      store                   store-on-miss fan-out; one "placement" event
                              per (identifier, replica) target

Timestamps come from the trace's ``clock`` — the simulator's virtual
``now`` on the event-driven path, the transport's cumulative simulated
wire time on the synchronous path, or a plain monotonically increasing
step counter when neither is bound.
"""

from __future__ import annotations

import json
import os
import random
from itertools import count
from typing import Any, Callable, Iterator

__all__ = ["TraceEvent", "Span", "QueryTrace", "NULL_TRACE", "new_span_id"]

#: Process-unique prefix for span ids.  Span ids only have to be unique
#: *within one stitched trace*, whose fragments come from a handful of
#: OS processes — pid plus 16 random bits makes cross-process collisions
#: negligible without dragging uuid4 into every span construction.
_SPAN_PREFIX = f"{os.getpid():x}{random.getrandbits(16):04x}"
_SPAN_SEQUENCE = count(1)


def new_span_id() -> str:
    """A cheap process-unique span id (``<pid><rand>-<seq>``)."""
    return f"{_SPAN_PREFIX}-{next(_SPAN_SEQUENCE):x}"


class TraceEvent:
    """One timestamped point event inside a span."""

    __slots__ = ("name", "at_ms", "attrs")

    def __init__(self, name: str, at_ms: float, attrs: dict[str, Any]) -> None:
        self.name = name
        self.at_ms = at_ms
        self.attrs = attrs

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "at_ms": self.at_ms, "attrs": self.attrs}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TraceEvent({self.name!r}, at_ms={self.at_ms}, attrs={self.attrs!r})"


class Span:
    """One named, timed region of a query's lifecycle.

    Spans nest (``span.span(...)``) and carry point events
    (``span.event(...)``).  They work both as context managers — the
    synchronous path uses ``with`` — and as explicitly ``end()``-ed
    objects held across callbacks, which is what the event-driven path
    needs.
    """

    __slots__ = (
        "name", "attrs", "start_ms", "end_ms", "events", "children",
        "_clock", "span_id",
    )

    def __init__(
        self,
        name: str,
        clock: Callable[[], float],
        attrs: dict[str, Any] | None = None,
    ) -> None:
        self.name = name
        self._clock = clock
        self.attrs: dict[str, Any] = dict(attrs or {})
        self.start_ms = float(clock())
        self.end_ms: float | None = None
        self.events: list[TraceEvent] = []
        self.children: list["Span"] = []
        #: Identifies this span in distributed trace context propagation:
        #: a request sent while this span is open carries ``span_id`` as
        #: its parent, and the server's span fragment stitches back under
        #: it (:mod:`repro.obs.distributed`).
        self.span_id = new_span_id()

    # -- recording -----------------------------------------------------

    def event(self, name: str, **attrs: Any) -> TraceEvent:
        """Record a point event at the current clock reading."""
        event = TraceEvent(name, float(self._clock()), attrs)
        self.events.append(event)
        return event

    def span(self, name: str, **attrs: Any) -> "Span":
        """Open a child span starting now."""
        child = Span(name, self._clock, attrs)
        self.children.append(child)
        return child

    def end(self, **attrs: Any) -> "Span":
        """Close the span (idempotent); extra attrs are merged in."""
        if attrs:
            self.attrs.update(attrs)
        if self.end_ms is None:
            self.end_ms = float(self._clock())
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end()

    # -- inspection ----------------------------------------------------

    @property
    def duration_ms(self) -> float:
        """Span length; an un-ended span reads as zero-length."""
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    def find(self, name: str) -> list["Span"]:
        """Every descendant span (self included) named ``name``."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def events_named(self, name: str) -> list[TraceEvent]:
        """This span's own events named ``name``."""
        return [event for event in self.events if event.name == name]

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over self and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "attrs": self.attrs,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "duration_ms": self.duration_ms,
            "events": [event.to_dict() for event in self.events],
            "spans": [child.to_dict() for child in self.children],
        }


class QueryTrace:
    """The full record of one query's lifecycle.

    ``clock`` supplies timestamps in milliseconds; when omitted the trace
    counts steps (0, 1, 2, ...), which preserves ordering without
    pretending to measure time.  Use
    :meth:`RangeSelectionSystem.start_trace` /
    :meth:`AsyncQueryEngine.start_trace` to get a trace bound to the
    right clock for each path.
    """

    def __init__(
        self,
        name: str = "query",
        clock: Callable[[], float] | None = None,
        trace_id: str | None = None,
        **attrs: Any,
    ) -> None:
        if clock is None:
            steps = count()
            clock = lambda: float(next(steps))  # noqa: E731
        self.clock = clock
        #: Cluster-unique id carried on the wire when this trace's query
        #: fans out to remote peers (:mod:`repro.obs.distributed`); traces
        #: that never leave the process don't need one.
        self.trace_id = trace_id
        self.root = Span(name, clock, attrs)

    # -- recording (delegates to the root span) ------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a top-level child span."""
        return self.root.span(name, **attrs)

    def event(self, name: str, **attrs: Any) -> TraceEvent:
        """Record a point event on the root span."""
        return self.root.event(name, **attrs)

    def end(self, **attrs: Any) -> "QueryTrace":
        """Close the root span."""
        self.root.end(**attrs)
        return self

    # -- inspection / export -------------------------------------------

    @property
    def ended(self) -> bool:
        return self.root.end_ms is not None

    def find(self, name: str) -> list[Span]:
        """Every span named ``name`` anywhere in the trace."""
        return self.root.find(name)

    def to_dict(self) -> dict[str, Any]:
        doc = self.root.to_dict()
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
        return doc

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)


class _NullTrace:
    """The do-nothing trace: every span is itself, every event a no-op.

    Instrumented code paths write ``trace = trace or NULL_TRACE`` once and
    then record unconditionally; with the null trace each call is one
    cheap method dispatch and no allocation.
    """

    __slots__ = ()

    #: The null trace never propagates context: code asking an (optional)
    #: trace for its distributed identity gets ``None`` and sends nothing.
    trace_id = None
    span_id = None

    def span(self, name: str, **attrs: Any) -> "_NullTrace":
        return self

    def event(self, name: str, **attrs: Any) -> None:
        return None

    def end(self, **attrs: Any) -> "_NullTrace":
        return self

    def __enter__(self) -> "_NullTrace":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def __bool__(self) -> bool:
        return False


NULL_TRACE = _NullTrace()
