"""Observability: tracing, the unified metrics registry, and ring health.

``repro.obs`` is the one place per-query cost and system health become
visible.  The :class:`QueryTrace` records a single query end to end —
group hashing, each of the ``l`` lookup chains hop by hop, match scores,
failovers, retries and the store-on-miss fan-out — on both the
synchronous (:mod:`repro.core.system`) and event-driven
(:mod:`repro.sim.query`) paths.  The :class:`MetricsRegistry` unifies the
formerly disjoint counter objects (``TrafficStats``, ``SystemCounters``,
``LatencyCollector``) behind one export surface: JSON/JSONL dumps and
the ``repro metrics`` CLI report.  The :mod:`repro.obs.health` module
adds continuous visibility: a :class:`TelemetrySampler` writing ring
time series, a :class:`RingAuditor` checking overlay invariants, and
load-skew analytics over per-node load.
"""

from repro.obs.health import (
    AuditFinding,
    AuditReport,
    HealthReport,
    RingAuditor,
    SkewStats,
    TelemetrySampler,
    gini,
    health_check,
    hot_identifiers,
    load_histogram,
    max_mean_ratio,
    skew_stats,
)
from repro.obs.distributed import (
    FlightRecorder,
    SpanFragment,
    StitchReport,
    TraceContext,
    format_trace,
    new_trace_id,
    read_jsonl_tolerant,
    stitch_trace,
)
from repro.obs.log import configure_logging, get_logger
from repro.obs.registry import (
    Counter,
    Gauge,
    HistogramMetric,
    LabeledCounterDict,
    MetricsRegistry,
    RegistryBackedCounters,
    TimeSeriesMetric,
    registry_field,
    write_jsonl,
)
from repro.obs.trace import NULL_TRACE, QueryTrace, Span, TraceEvent

__all__ = [
    "Counter",
    "Gauge",
    "HistogramMetric",
    "TimeSeriesMetric",
    "LabeledCounterDict",
    "MetricsRegistry",
    "RegistryBackedCounters",
    "registry_field",
    "write_jsonl",
    "NULL_TRACE",
    "QueryTrace",
    "Span",
    "TraceEvent",
    "FlightRecorder",
    "SpanFragment",
    "StitchReport",
    "TraceContext",
    "format_trace",
    "new_trace_id",
    "read_jsonl_tolerant",
    "stitch_trace",
    "AuditFinding",
    "AuditReport",
    "HealthReport",
    "RingAuditor",
    "SkewStats",
    "TelemetrySampler",
    "configure_logging",
    "get_logger",
    "gini",
    "health_check",
    "hot_identifiers",
    "load_histogram",
    "max_mean_ratio",
    "skew_stats",
]
