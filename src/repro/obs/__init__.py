"""Observability: query-lifecycle tracing and the unified metrics registry.

``repro.obs`` is the one place per-query cost becomes visible.  The
:class:`QueryTrace` records a single query end to end — group hashing,
each of the ``l`` lookup chains hop by hop, match scores, failovers,
retries and the store-on-miss fan-out — on both the synchronous
(:mod:`repro.core.system`) and event-driven (:mod:`repro.sim.query`)
paths.  The :class:`MetricsRegistry` unifies the formerly disjoint
counter objects (``TrafficStats``, ``SystemCounters``,
``LatencyCollector``) behind one export surface: JSON/JSONL dumps and
the ``repro metrics`` CLI report.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    HistogramMetric,
    LabeledCounterDict,
    MetricsRegistry,
    RegistryBackedCounters,
    registry_field,
    write_jsonl,
)
from repro.obs.trace import NULL_TRACE, QueryTrace, Span, TraceEvent

__all__ = [
    "Counter",
    "Gauge",
    "HistogramMetric",
    "LabeledCounterDict",
    "MetricsRegistry",
    "RegistryBackedCounters",
    "registry_field",
    "write_jsonl",
    "NULL_TRACE",
    "QueryTrace",
    "Span",
    "TraceEvent",
]
