"""Ring health telemetry: sampler, invariant auditor, load-skew analytics.

Figure 11 of the paper looks at load balance once, at the end of one run.
This module turns that one-shot view into continuous visibility while the
system runs under churn:

* :class:`TelemetrySampler` — samples per-node gauges (bucket occupancy
  and bytes, queries/stores served, messages in/out, successor-list
  fullness, replica deficit, alive/degraded/crashed state, sim queue
  depth) into fixed-capacity ring-buffer time series registered in the
  system's :class:`~repro.obs.MetricsRegistry`.  It runs either as a
  periodic task on the event-driven kernel or snapshot-on-demand against
  the synchronous system.
* :class:`RingAuditor` — walks the overlay and the stored placements,
  checking structural invariants (successor/predecessor agreement,
  successor-list consistency, finger reachability; CAN zone tiling and
  neighbour symmetry), replica placement and deficits, and bucket LRU
  clock sanity, emitting a severity-graded :class:`AuditReport`.
* skew analytics — :func:`gini`, :func:`max_mean_ratio`,
  :func:`load_histogram` and :func:`hot_identifiers` over per-node loads,
  generalizing the Fig 11 experiment into a reusable module.

Everything here is a pure *read* of system state: sampling and auditing
send no messages, draw no randomness and touch no eviction clock, so a
system observed by this module behaves byte-for-byte like one that is
not (the same null-object discipline as :data:`~repro.obs.NULL_TRACE`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.obs.log import get_logger

if TYPE_CHECKING:  # imported for typing only: core.system imports repro.obs
    from repro.core.system import RangeSelectionSystem
    from repro.sim.kernel import Simulator

__all__ = [
    "TelemetrySampler",
    "AuditFinding",
    "AuditReport",
    "RingAuditor",
    "SkewStats",
    "gini",
    "max_mean_ratio",
    "skew_stats",
    "load_histogram",
    "hot_identifiers",
    "HealthReport",
    "health_check",
    "NODE_GAUGES",
    "STATE_ALIVE",
    "STATE_DEGRADED",
    "STATE_CRASHED",
]

logger = get_logger("obs.health")

#: Node state as sampled into ``health.node.state``.
STATE_ALIVE = 0
#: Alive but under-replicated: some copy this node should hold is missing.
STATE_DEGRADED = 1
STATE_CRASHED = 2

#: The per-node gauges the sampler writes, as ``health.node.<gauge>``
#: time series labeled ``node=<id>``.
NODE_GAUGES: tuple[str, ...] = (
    "partitions",
    "buckets",
    "bytes",
    "primaries",
    "replicas",
    "queries",
    "stores",
    "msgs_out",
    "msgs_in",
    "successors",
    "deficit",
    "state",
)

#: Severity grades, most severe first.
SEVERITIES: tuple[str, ...] = ("critical", "warning", "info")


# ----------------------------------------------------------------------
# Telemetry sampler
# ----------------------------------------------------------------------


class TelemetrySampler:
    """Samples per-node health gauges into registry time series.

    Two modes share one code path:

    * **snapshot-on-demand** — call :meth:`sample_once` whenever the
      synchronous system should be observed (the ``repro health`` CLI
      does this once; experiments call it between phases);
    * **periodic** — bind a :class:`~repro.sim.kernel.Simulator` and
      :meth:`start`; a sample is taken every ``interval_ms`` of virtual
      time until :meth:`stop` (the :class:`~repro.sim.repair.ReplicaRepairer`
      scheduling pattern).

    Timestamps are the simulator's virtual clock when one is bound,
    otherwise the transport's cumulative wire time — both non-decreasing,
    so every series is monotone in time.
    """

    def __init__(
        self,
        system: "RangeSelectionSystem",
        sim: "Simulator | None" = None,
        is_alive: Callable[[int], bool] | None = None,
        interval_ms: float = 500.0,
        capacity: int | None = None,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError("sample interval must be positive")
        self.system = system
        self.sim = sim
        self.interval_ms = interval_ms
        self.capacity = capacity
        self._is_alive = is_alive
        self._timer = None
        self._running = False
        #: Samples recorded so far (each tick appends one point per series).
        self.samples_taken = 0

    # -- liveness and clock --------------------------------------------

    @property
    def is_alive(self) -> Callable[[int], bool]:
        """The liveness predicate in effect (defaults to the synchronous
        transport's; the event-driven engine passes its network's)."""
        if self._is_alive is not None:
            return self._is_alive
        return self.system.network.is_alive

    def now(self) -> float:
        """The sampler's clock: virtual ms when a simulator is bound,
        else cumulative simulated wire ms."""
        if self.sim is not None:
            return self.sim.now
        return float(self.system.network.stats.latency_ms)

    # -- scheduling (event-driven mode) --------------------------------

    @property
    def running(self) -> bool:
        """Whether periodic sampling is currently scheduled."""
        return self._running

    def start(self) -> None:
        """Begin periodic sampling on the bound simulator (idempotent)."""
        if self.sim is None:
            raise ValueError("periodic sampling requires a simulator")
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        """Cancel the pending sample (idempotent)."""
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _schedule_next(self) -> None:
        assert self.sim is not None
        self._timer = self.sim.call_later(self.interval_ms, self._tick)

    def _tick(self) -> None:
        if not self._running:
            return
        self.sample_once()
        self._schedule_next()

    # -- sampling -------------------------------------------------------

    def _series(self, suffix: str, help: str = ""):
        return self.system.metrics.timeseries(
            f"health.{suffix}", help, capacity=self.capacity
        )

    def _messages_by_peer(self) -> tuple[dict[int, float], dict[int, float]]:
        """(sent, received) per peer, summed over the synchronous and
        event-driven transport namespaces."""
        sent: dict[int, float] = {}
        received: dict[int, float] = {}
        registry = self.system.metrics
        for namespace in ("net", "sim.net"):
            for counter_name, into in (
                ("sent_by_peer", sent),
                ("received_by_peer", received),
            ):
                metric = registry.get(f"{namespace}.{counter_name}")
                if metric is None:
                    continue
                for labels, value in metric.items():
                    peer = labels.get("peer")
                    if peer is None:
                        continue
                    into[peer] = into.get(peer, 0) + value
        return sent, received

    def _successor_fullness(self, node_id: int) -> int:
        """Successor-list length (Chord) or neighbour count (CAN)."""
        system = self.system
        if system.ring is not None:
            return len(system.ring.node(node_id).successor_list)
        overlay = getattr(system.router, "overlay", None)
        if overlay is not None:
            return len(overlay.node(node_id).neighbor_ids)
        return 0

    def sample_once(self, now: float | None = None) -> float:
        """Record one sample of every gauge; returns the timestamp used.

        A pure read: no messages, no RNG, no eviction-clock movement.
        """
        t = self.now() if now is None else now
        system = self.system
        alive = self.is_alive
        deficit_by_target: dict[int, int] = {}
        total_deficit = 0
        for _identifier, _desc, _src, _part, target, _primary in (
            system.replication_deficits(alive)
        ):
            total_deficit += 1
            deficit_by_target[target] = deficit_by_target.get(target, 0) + 1
        sent, received = self._messages_by_peer()
        series = {gauge: self._series(f"node.{gauge}") for gauge in NODE_GAUGES}
        crashed = 0
        partitions_total = 0
        for node_id in system.router.node_ids:
            store = system.stores[node_id]
            node_alive = alive(node_id)
            deficit = deficit_by_target.get(node_id, 0)
            if not node_alive:
                crashed += 1
                state = STATE_CRASHED
            elif deficit:
                state = STATE_DEGRADED
            else:
                state = STATE_ALIVE
            partitions = store.partition_count
            partitions_total += partitions
            values = {
                "partitions": partitions,
                "buckets": store.bucket_count,
                "bytes": store.stored_bytes,
                "primaries": store.primary_count,
                "replicas": store.replica_count,
                "queries": store.queries_served,
                "stores": store.stores_served,
                "msgs_out": sent.get(node_id, 0),
                "msgs_in": received.get(node_id, 0),
                "successors": self._successor_fullness(node_id),
                "deficit": deficit,
                "state": state,
            }
            for gauge, value in values.items():
                series[gauge].append(t, value, node=node_id)
        self._series("replica_deficit").append(t, total_deficit)
        self._series("crashed").append(t, crashed)
        self._series("partitions_total").append(t, partitions_total)
        if self.sim is not None:
            self._series("sim.pending_events").append(t, self.sim.pending)
        self.samples_taken += 1
        logger.debug(
            "sampled %d nodes at t=%.1f (deficit=%d crashed=%d)",
            len(system.router.node_ids), t, total_deficit, crashed,
        )
        return t


# ----------------------------------------------------------------------
# Invariant auditor
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AuditFinding:
    """One invariant violation (or informational note)."""

    severity: str  # "critical" | "warning" | "info"
    check: str  # e.g. "chord.successor", "replica-deficit"
    subject: str  # what the finding is about ("node 123", "identifier 7")
    message: str

    def describe(self) -> str:
        """One-line rendering for reports."""
        return f"[{self.severity}] {self.check}: {self.subject} — {self.message}"


@dataclass
class AuditReport:
    """The outcome of one auditor walk."""

    findings: list[AuditFinding] = field(default_factory=list)
    nodes_checked: int = 0
    entries_checked: int = 0
    crashed_peers: int = 0

    @property
    def ok(self) -> bool:
        """True when no critical or warning finding exists (informational
        notes — e.g. stale surplus copies — don't fail an audit)."""
        return not any(f.severity in ("critical", "warning") for f in self.findings)

    @property
    def counts(self) -> dict[str, int]:
        """Findings per severity grade (every grade present, maybe 0)."""
        out = {severity: 0 for severity in SEVERITIES}
        for finding in self.findings:
            out[finding.severity] = out.get(finding.severity, 0) + 1
        return out

    def by_check(self) -> dict[str, int]:
        """Findings per check name."""
        out: dict[str, int] = {}
        for finding in self.findings:
            out[finding.check] = out.get(finding.check, 0) + 1
        return out

    def findings_for(self, check: str) -> list[AuditFinding]:
        """All findings of one check."""
        return [f for f in self.findings if f.check == check]

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form."""
        return {
            "ok": self.ok,
            "nodes_checked": self.nodes_checked,
            "entries_checked": self.entries_checked,
            "crashed_peers": self.crashed_peers,
            "counts": self.counts,
            "findings": [
                {
                    "severity": f.severity,
                    "check": f.check,
                    "subject": f.subject,
                    "message": f.message,
                }
                for f in self.findings
            ],
        }

    def report(self, max_findings: int = 20) -> str:
        """Fixed-width text rendering."""
        counts = self.counts
        header = (
            f"Audit: {'OK' if self.ok else 'VIOLATIONS'} — "
            f"{self.nodes_checked} nodes, {self.entries_checked} entries, "
            f"{self.crashed_peers} crashed; "
            + ", ".join(f"{counts[s]} {s}" for s in SEVERITIES)
        )
        lines = [header]
        ordered = sorted(
            self.findings, key=lambda f: (SEVERITIES.index(f.severity), f.check)
        )
        for finding in ordered[:max_findings]:
            lines.append("  " + finding.describe())
        if len(ordered) > max_findings:
            lines.append(f"  … and {len(ordered) - max_findings} more")
        return "\n".join(lines)


class RingAuditor:
    """Walks overlay structure and replica placement, grading violations.

    Checks (severity in parentheses):

    * Chord ring structure — successor/predecessor agreement,
      successor-list consistency, finger reachability and correctness
      (critical, via :meth:`ChordRing.audit`); under CAN, zone tiling and
      neighbour symmetry (critical, via :meth:`CanOverlay.audit`).
    * Replica placement — every stored copy sits inside its identifier's
      nominal replica set or current alive target set (critical when
      not; surplus copies further down the successor chain left by
      earlier repair epochs are informational ``stale-copy`` notes);
      primary/replica flags match ownership, checked only while no peer
      is crashed, since failover placements legitimately skew flags
      (warning).
    * Replica deficits — identifiers missing copies on their alive
      targets, the same plan :meth:`replication_deficits` feeds the
      repair loop (warning); identifiers whose every copy sits on
      crashed peers are unrepairable (critical).
    * Bucket LRU clocks — each entry's ``access_clock`` must be positive
      and no later than its store's clock (warning).

    Crashes are transport-level events, so a crash by itself never
    trips a structural check — only the replica checks react, which is
    what lets an audit distinguish "ring is broken" from "data is
    under-replicated".
    """

    def __init__(
        self,
        system: "RangeSelectionSystem",
        is_alive: Callable[[int], bool] | None = None,
    ) -> None:
        self.system = system
        self._is_alive = is_alive

    @property
    def is_alive(self) -> Callable[[int], bool]:
        """The liveness predicate in effect."""
        if self._is_alive is not None:
            return self._is_alive
        return self.system.network.is_alive

    def audit(self) -> AuditReport:
        """One full walk; returns the graded report."""
        system = self.system
        alive = self.is_alive
        report = AuditReport()
        node_ids = system.router.node_ids
        report.nodes_checked = len(node_ids)
        report.crashed_peers = sum(1 for nid in node_ids if not alive(nid))
        self._audit_overlay(report)
        self._audit_placement(report, alive)
        self._audit_deficits(report, alive)
        self._audit_lru_clocks(report)
        if report.ok:
            logger.info(
                "audit clean: %d nodes, %d entries",
                report.nodes_checked, report.entries_checked,
            )
        else:
            logger.warning("audit found violations: %s", report.by_check())
        return report

    # -- overlay structure ---------------------------------------------

    def _audit_overlay(self, report: AuditReport) -> None:
        system = self.system
        if system.ring is not None:
            for check, node_id, message in system.ring.audit():
                report.findings.append(
                    AuditFinding(
                        "critical", f"chord.{check}", f"node {node_id}", message
                    )
                )
            return
        overlay = getattr(system.router, "overlay", None)
        if overlay is not None:
            for check, node_id, message in overlay.audit():
                subject = f"node {node_id}" if node_id >= 0 else "overlay"
                report.findings.append(
                    AuditFinding("critical", f"can.{check}", subject, message)
                )

    # -- replica placement ---------------------------------------------

    def _audit_placement(
        self, report: AuditReport, alive: Callable[[int], bool]
    ) -> None:
        system = self.system
        none_crashed = report.crashed_peers == 0
        # Repair rounds at earlier churn epochs may have legitimately
        # placed copies on successors beyond today's target set (targets
        # shift as more peers crash, and repair never deletes).  Any peer
        # within the first ``replicas + crashed`` chain positions is a
        # placement some epoch could have chosen: surplus, not a bug.
        chain_depth = system.config.replicas + report.crashed_peers
        allowed_cache: dict[int, tuple[set[int], set[int], int]] = {}
        for store in system.stores.values():
            for identifier, entry in store.entries():
                report.entries_checked += 1
                cached = allowed_cache.get(identifier)
                if cached is None:
                    owners = system.replica_owners(identifier)
                    allowed = set(owners)
                    allowed.update(system.replica_targets(identifier, alive))
                    chain = set(
                        system.router.replica_set(
                            system.place_identifier(identifier), chain_depth
                        )
                    )
                    cached = (allowed, chain | allowed, owners[0] if owners else -1)
                    allowed_cache[identifier] = cached
                allowed, chain_allowed, owner = cached
                if store.peer_id not in allowed:
                    if store.peer_id in chain_allowed:
                        report.findings.append(
                            AuditFinding(
                                "info",
                                "stale-copy",
                                f"identifier {identifier}",
                                f"surplus copy at {store.peer_id}, beyond the "
                                f"current replica set (left by an earlier "
                                f"repair epoch)",
                            )
                        )
                    else:
                        report.findings.append(
                            AuditFinding(
                                "critical",
                                "replica-placement",
                                f"identifier {identifier}",
                                f"copy held by {store.peer_id}, outside replica "
                                f"set {sorted(allowed)}",
                            )
                        )
                elif none_crashed and entry.primary != (store.peer_id == owner):
                    report.findings.append(
                        AuditFinding(
                            "warning",
                            "primary-flag",
                            f"identifier {identifier}",
                            f"copy at {store.peer_id} has "
                            f"primary={entry.primary}, owner is {owner}",
                        )
                    )

    # -- replica deficits ----------------------------------------------

    def _audit_deficits(
        self, report: AuditReport, alive: Callable[[int], bool]
    ) -> None:
        system = self.system
        missing: dict[int, int] = {}
        for identifier, _desc, _src, _part, _target, _primary in (
            system.replication_deficits(alive)
        ):
            missing[identifier] = missing.get(identifier, 0) + 1
        for identifier, count in sorted(missing.items()):
            report.findings.append(
                AuditFinding(
                    "warning",
                    "replica-deficit",
                    f"identifier {identifier}",
                    f"{count} cop{'y' if count == 1 else 'ies'} missing from "
                    f"alive targets",
                )
            )
        # Entries held only on crashed peers: no alive source remains.
        alive_held: set[tuple[int, object]] = set()
        all_held: set[tuple[int, object]] = set()
        for store in system.stores.values():
            for identifier, entry in store.entries():
                key = (identifier, entry.descriptor)
                all_held.add(key)
                if alive(store.peer_id):
                    alive_held.add(key)
        for identifier, descriptor in sorted(
            all_held - alive_held, key=lambda k: (k[0], str(k[1]))
        ):
            report.findings.append(
                AuditFinding(
                    "critical",
                    "replica-loss",
                    f"identifier {identifier}",
                    f"every copy of {descriptor} sits on crashed peers",
                )
            )

    # -- LRU clock sanity ----------------------------------------------

    def _audit_lru_clocks(self, report: AuditReport) -> None:
        for store in self.system.stores.values():
            for identifier, entry in store.entries():
                if not (0 < entry.access_clock <= store.clock):
                    report.findings.append(
                        AuditFinding(
                            "warning",
                            "lru-clock",
                            f"identifier {identifier}",
                            f"entry at {store.peer_id} has access_clock="
                            f"{entry.access_clock}, store clock is "
                            f"{store.clock}",
                        )
                    )


# ----------------------------------------------------------------------
# Load-skew analytics
# ----------------------------------------------------------------------


def gini(values: Iterable[float]) -> float:
    """Gini coefficient of a non-negative load distribution.

    0.0 means perfectly even (every node carries the same load), 1.0
    means one node carries everything.  Empty and all-zero inputs are
    defined as 0.0.
    """
    vals = sorted(float(v) for v in values)
    n = len(vals)
    total = sum(vals)
    if n == 0 or total == 0:
        return 0.0
    weighted = sum((index + 1) * value for index, value in enumerate(vals))
    return (2.0 * weighted) / (n * total) - (n + 1) / n


def max_mean_ratio(values: Iterable[float]) -> float:
    """Peak-to-mean load ratio (1.0 = perfectly balanced; 0.0 when the
    distribution is empty or all-zero)."""
    vals = [float(v) for v in values]
    if not vals:
        return 0.0
    mean = sum(vals) / len(vals)
    if mean == 0:
        return 0.0
    return max(vals) / mean


@dataclass(frozen=True)
class SkewStats:
    """Summary of one load distribution."""

    count: int
    total: float
    mean: float
    minimum: float
    maximum: float
    max_mean: float
    gini: float

    def describe(self) -> str:
        """One-line summary for reports."""
        return (
            f"{self.count} nodes, total {self.total:g}, mean {self.mean:.2f}, "
            f"min {self.minimum:g}, max {self.maximum:g}, "
            f"max/mean {self.max_mean:.2f}, gini {self.gini:.3f}"
        )


def skew_stats(values: Iterable[float]) -> SkewStats:
    """Compute :class:`SkewStats` for one distribution."""
    vals = [float(v) for v in values]
    if not vals:
        return SkewStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    total = sum(vals)
    return SkewStats(
        count=len(vals),
        total=total,
        mean=total / len(vals),
        minimum=min(vals),
        maximum=max(vals),
        max_mean=max_mean_ratio(vals),
        gini=gini(vals),
    )


def load_histogram(
    values: Iterable[float], bins: int = 10
) -> list[tuple[float, float, int]]:
    """Equal-width histogram of a load distribution.

    Returns ``(low, high, count)`` triples covering ``[min, max]``; the
    last bin is closed on both sides.  Flat distributions collapse to a
    single bin.
    """
    if bins < 1:
        raise ValueError("need at least one bin")
    vals = [float(v) for v in values]
    if not vals:
        return []
    lo, hi = min(vals), max(vals)
    if lo == hi:
        return [(lo, hi, len(vals))]
    width = (hi - lo) / bins
    counts = [0] * bins
    for value in vals:
        index = min(int((value - lo) / width), bins - 1)
        counts[index] += 1
    return [
        (lo + i * width, lo + (i + 1) * width, counts[i]) for i in range(bins)
    ]


def hot_identifiers(
    system: "RangeSelectionSystem", top_n: int = 5
) -> list[tuple[int, int]]:
    """The identifiers with the most stored copies system-wide.

    Returns ``(identifier, copies)`` pairs, hottest first — the
    concentration the paper's direct-placement mode induces and rehash
    placement is meant to avoid.
    """
    copies: dict[int, int] = {}
    for store in system.stores.values():
        for identifier, _entry in store.entries():
            copies[identifier] = copies.get(identifier, 0) + 1
    ranked = sorted(copies.items(), key=lambda kv: (-kv[1], kv[0]))
    return ranked[: max(0, top_n)]


# ----------------------------------------------------------------------
# The combined health check
# ----------------------------------------------------------------------


@dataclass
class HealthReport:
    """Audit + skew + hot identifiers, one document."""

    n_peers: int
    crashed_peers: int
    audit: AuditReport
    skew: SkewStats
    loads: list[int]
    hot: list[tuple[int, int]]

    @property
    def ok(self) -> bool:
        """True when the audit found nothing."""
        return self.audit.ok

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (the ``repro health --json`` payload)."""
        return {
            "ok": self.ok,
            "n_peers": self.n_peers,
            "crashed_peers": self.crashed_peers,
            "audit": self.audit.to_dict(),
            "skew": {
                "count": self.skew.count,
                "total": self.skew.total,
                "mean": self.skew.mean,
                "min": self.skew.minimum,
                "max": self.skew.maximum,
                "max_mean": self.skew.max_mean,
                "gini": self.skew.gini,
            },
            "loads": list(self.loads),
            "hot_identifiers": [
                {"identifier": identifier, "copies": copies}
                for identifier, copies in self.hot
            ],
        }

    def report(self) -> str:
        """Fixed-width text rendering with ASCII sparklines."""
        from repro.metrics.report import format_table, sparkline

        sections: list[str] = []
        sections.append(
            f"Health: {'OK' if self.ok else 'VIOLATIONS'} — "
            f"{self.n_peers} peers ({self.crashed_peers} crashed)"
        )
        sections.append(self.audit.report())
        sections.append("Load skew: " + self.skew.describe())
        if self.loads:
            ordered = sorted(self.loads)
            sections.append(
                "Load by node (sorted): " + sparkline(ordered)
            )
            histogram = load_histogram(self.loads)
            peak = max((count for _, _, count in histogram), default=0)
            rows = [
                [
                    f"{low:.0f}..{high:.0f}",
                    count,
                    "█" * (round(20 * count / peak) if peak else 0),
                ]
                for low, high, count in histogram
            ]
            if rows:
                sections.append(
                    format_table(
                        ["load", "nodes", ""], rows, title="Load histogram"
                    )
                )
        if self.hot:
            sections.append(
                format_table(
                    ["identifier", "copies"],
                    [[identifier, copies] for identifier, copies in self.hot],
                    title="Hot identifiers",
                )
            )
        return "\n\n".join(sections)


def health_check(
    system: "RangeSelectionSystem",
    is_alive: Callable[[int], bool] | None = None,
    top_n: int = 5,
) -> HealthReport:
    """Audit the overlay, summarize load skew, rank hot identifiers."""
    auditor = RingAuditor(system, is_alive=is_alive)
    audit = auditor.audit()
    loads = system.load_distribution()
    return HealthReport(
        n_peers=len(system.router.node_ids),
        crashed_peers=audit.crashed_peers,
        audit=audit,
        skew=skew_stats(loads),
        loads=loads,
        hot=hot_identifiers(system, top_n=top_n),
    )
