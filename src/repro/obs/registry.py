"""The unified metrics registry.

Before this module existed the system's accounting was split across three
disjoint objects — :class:`~repro.net.transport.TrafficStats` on each
transport, :class:`~repro.core.system.SystemCounters` on the system, and
:class:`~repro.metrics.latency.LatencyCollector` in the experiments — each
with its own fields, reset semantics and rendering.  The registry gives
them one home: named counters, gauges and histograms (optionally labeled,
Prometheus-style) that every layer writes into and one export surface
reads out of — a JSON/JSONL dump for tooling and a fixed-width text report
for the CLI.

The legacy objects remain as typed facades: their scalar fields are
properties over registry counters (see :class:`RegistryBackedCounters`),
so ``stats.messages += 1`` and ``registry.counter("net.messages").get()``
are the same number by construction.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable, Iterable, Iterator, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "HistogramMetric",
    "TimeSeriesMetric",
    "MetricsRegistry",
    "RegistryBackedCounters",
    "LabeledCounterDict",
    "registry_field",
    "write_jsonl",
]

#: Label sets are keyed by their sorted (name, value) pairs so the same
#: labels always address the same series regardless of keyword order.
LabelKey = tuple[tuple[str, Any], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class _Metric:
    """Common shape of one named metric family."""

    kind = "metric"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help

    def snapshot(self) -> dict[str, Any]:
        """JSON-able description of this metric's current state."""
        raise NotImplementedError

    def clear(self) -> None:
        """Drop every recorded series."""
        raise NotImplementedError


def _series_list(values: dict[LabelKey, Any]) -> list[dict[str, Any]]:
    return [
        {"labels": {k: v for k, v in key}, "value": value}
        for key, value in sorted(values.items(), key=lambda kv: repr(kv[0]))
    ]


class Counter(_Metric):
    """A monotonically *usable* numeric series per label set.

    ``inc`` is the ordinary path; ``set`` exists so facade objects can keep
    supporting ``stats.field = 0`` resets and ``stats.field += n``
    read-modify-write updates without the registry fighting them.
    """

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, Any] = {}

    def inc(self, amount: float = 1, **labels: Any) -> None:
        """Add ``amount`` to the series selected by ``labels``."""
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def set(self, value: float, **labels: Any) -> None:
        """Overwrite the series selected by ``labels``."""
        self._values[_label_key(labels)] = value

    def get(self, **labels: Any) -> float:
        """Current value of one series (0 when never touched)."""
        return self._values.get(_label_key(labels), 0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._values.values()) if self._values else 0

    def items(self) -> Iterator[tuple[dict[str, Any], Any]]:
        """(labels, value) pairs for every series."""
        for key, value in self._values.items():
            yield ({k: v for k, v in key}, value)

    def clear(self) -> None:
        self._values.clear()

    def snapshot(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "series": _series_list(self._values),
        }


class Gauge(Counter):
    """A value that goes up and down (current load, queue depth, clock)."""

    kind = "gauge"


class HistogramMetric(_Metric):
    """Bucketed sample distribution per label set.

    Buckets follow the registry's shared edge convention: ``counts[i]``
    counts samples in ``(edges[i-1], edges[i]]`` with the first bucket
    open below and a final overflow bucket above ``edges[-1]``.  Count,
    sum and max are tracked exactly, so means are exact and percentiles
    are bucket-resolution approximations.
    """

    kind = "histogram"

    #: 1-2-5 ladder over five decades; suits millisecond latencies.
    DEFAULT_EDGES: tuple[float, ...] = tuple(
        base * 10**exp for exp in range(5) for base in (1.0, 2.0, 5.0)
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        edges: Sequence[float] | None = None,
    ) -> None:
        super().__init__(name, help)
        self.edges: tuple[float, ...] = (
            tuple(edges) if edges is not None else self.DEFAULT_EDGES
        )
        if list(self.edges) != sorted(self.edges):
            raise ValueError("histogram edges must be ascending")
        self._series: dict[LabelKey, dict[str, Any]] = {}

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self.edges)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.edges[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def observe(self, value: float, **labels: Any) -> None:
        """Record one sample into the series selected by ``labels``."""
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = {
                "counts": [0] * (len(self.edges) + 1),
                "count": 0,
                "sum": 0.0,
                "max": 0.0,
            }
            self._series[key] = series
        series["counts"][self._bucket_index(value)] += 1
        series["count"] += 1
        series["sum"] += value
        series["max"] = max(series["max"], value)

    def count(self, **labels: Any) -> int:
        """Samples recorded into one series."""
        series = self._series.get(_label_key(labels))
        return series["count"] if series is not None else 0

    def sum(self, **labels: Any) -> float:
        """Sum of samples recorded into one series."""
        series = self._series.get(_label_key(labels))
        return series["sum"] if series is not None else 0.0

    def mean(self, **labels: Any) -> float:
        """Exact mean of one series (0.0 when empty)."""
        series = self._series.get(_label_key(labels))
        if series is None or series["count"] == 0:
            return 0.0
        return series["sum"] / series["count"]

    def items(self) -> Iterator[tuple[dict[str, Any], dict[str, Any]]]:
        """(labels, series-state) pairs for every series."""
        for key, series in self._series.items():
            yield ({k: v for k, v in key}, series)

    def clear(self) -> None:
        self._series.clear()

    def snapshot(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "edges": list(self.edges),
            "series": [
                {
                    "labels": {k: v for k, v in key},
                    "count": series["count"],
                    "sum": series["sum"],
                    "max": series["max"],
                    "counts": list(series["counts"]),
                }
                for key, series in sorted(
                    self._series.items(), key=lambda kv: repr(kv[0])
                )
            ],
        }


class TimeSeriesMetric(_Metric):
    """Fixed-capacity ring buffer of ``(t, value)`` samples per label set.

    This is what the health sampler writes: one series per node per gauge,
    appended at every sampling tick.  Capacity bounds memory no matter how
    long a simulation runs — once full, the oldest sample falls off the
    front.  Timestamps are whatever clock the writer uses (virtual ms for
    the event-driven path, cumulative wire ms for the synchronous one);
    appends are expected in non-decreasing time order but not enforced, so
    a misbehaving sampler shows up in the data instead of crashing the run.
    """

    kind = "timeseries"

    DEFAULT_CAPACITY = 512

    def __init__(
        self, name: str, help: str = "", capacity: int | None = None
    ) -> None:
        super().__init__(name, help)
        self.capacity = capacity if capacity is not None else self.DEFAULT_CAPACITY
        if self.capacity < 1:
            raise ValueError("time series capacity must be positive")
        self._series: dict[LabelKey, deque[tuple[float, float]]] = {}

    def append(self, t: float, value: float, **labels: Any) -> None:
        """Record one ``(t, value)`` sample into the selected series."""
        key = _label_key(labels)
        series = self._series.get(key)
        if series is None:
            series = deque(maxlen=self.capacity)
            self._series[key] = series
        series.append((float(t), float(value)))

    def points(self, **labels: Any) -> list[tuple[float, float]]:
        """All retained samples of one series, oldest first."""
        series = self._series.get(_label_key(labels))
        return list(series) if series is not None else []

    def last(self, **labels: Any) -> tuple[float, float] | None:
        """The most recent sample of one series, or None when empty."""
        series = self._series.get(_label_key(labels))
        return series[-1] if series else None

    def values(self, **labels: Any) -> list[float]:
        """Just the sample values of one series, oldest first."""
        return [v for _, v in self.points(**labels)]

    def items(self) -> Iterator[tuple[dict[str, Any], list[tuple[float, float]]]]:
        """(labels, points) pairs for every series."""
        for key, series in self._series.items():
            yield ({k: v for k, v in key}, list(series))

    def __len__(self) -> int:
        return len(self._series)

    def clear(self) -> None:
        self._series.clear()

    def snapshot(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "capacity": self.capacity,
            "series": [
                {
                    "labels": {k: v for k, v in key},
                    "points": [[t, v] for t, v in series],
                }
                for key, series in sorted(
                    self._series.items(), key=lambda kv: repr(kv[0])
                )
            ],
        }


class MetricsRegistry:
    """All metric families of one system, addressable by name.

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same object, which is how independent
    components (the transport, the system counters, a latency collector)
    end up sharing one export surface.  Asking for an existing name with a
    different kind is an error — silent kind drift would corrupt exports.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    # -- construction --------------------------------------------------

    def _get_or_create(self, name: str, factory: Callable[[], _Metric]) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
            return metric
        wanted = factory()
        if metric.kind != wanted.kind:
            raise ValueError(
                f"metric {name!r} is a {metric.kind}, not a {wanted.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter named ``name``."""
        metric = self._get_or_create(name, lambda: Counter(name, help))
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge named ``name``."""
        metric = self._get_or_create(name, lambda: Gauge(name, help))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self, name: str, help: str = "", edges: Sequence[float] | None = None
    ) -> HistogramMetric:
        """Get or create the histogram named ``name``."""
        metric = self._get_or_create(
            name, lambda: HistogramMetric(name, help, edges=edges)
        )
        assert isinstance(metric, HistogramMetric)
        return metric

    def timeseries(
        self, name: str, help: str = "", capacity: int | None = None
    ) -> TimeSeriesMetric:
        """Get or create the ring-buffer time series named ``name``."""
        metric = self._get_or_create(
            name, lambda: TimeSeriesMetric(name, help, capacity=capacity)
        )
        assert isinstance(metric, TimeSeriesMetric)
        return metric

    # -- access --------------------------------------------------------

    def get(self, name: str) -> _Metric | None:
        """The metric named ``name``, if registered."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        """Zero every metric (families stay registered)."""
        for metric in self._metrics.values():
            metric.clear()

    # -- export --------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Every metric's current state as one JSON-able document."""
        return {
            "metrics": [
                self._metrics[name].snapshot() for name in sorted(self._metrics)
            ]
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The snapshot as a JSON string."""
        return json.dumps(self.snapshot(), indent=indent, default=str)

    def to_jsonl(self) -> str:
        """One JSON document per metric family, newline-delimited."""
        return "\n".join(
            json.dumps(self._metrics[name].snapshot(), default=str)
            for name in sorted(self._metrics)
        )

    def report(self, title: str = "Metrics") -> str:
        """Fixed-width text rendering of every non-empty metric."""
        from repro.metrics.report import format_table, sparkline

        scalar_rows: list[list[object]] = []
        labeled_rows: list[list[object]] = []
        histogram_rows: list[list[object]] = []
        series_rows: list[list[object]] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, TimeSeriesMetric):
                for labels, points in sorted(
                    metric.items(), key=lambda kv: repr(kv[0])
                ):
                    values = [v for _, v in points]
                    series_rows.append(
                        [
                            _series_name(name, labels),
                            len(points),
                            _format_value(values[-1]) if values else "-",
                            sparkline(values),
                        ]
                    )
            elif isinstance(metric, HistogramMetric):
                for labels, series in sorted(
                    metric.items(), key=lambda kv: repr(kv[0])
                ):
                    mean = series["sum"] / series["count"] if series["count"] else 0.0
                    histogram_rows.append(
                        [
                            _series_name(name, labels),
                            series["count"],
                            f"{mean:.1f}",
                            f"{series['max']:.1f}",
                        ]
                    )
            elif isinstance(metric, Counter):
                for labels, value in sorted(
                    metric.items(), key=lambda kv: repr(kv[0])
                ):
                    row = [_series_name(name, labels), _format_value(value)]
                    (labeled_rows if labels else scalar_rows).append(row)
        sections: list[str] = []
        if scalar_rows:
            sections.append(
                format_table(["metric", "value"], scalar_rows, title=title)
            )
        if labeled_rows:
            sections.append(
                format_table(["series", "value"], labeled_rows, title="Labeled series")
            )
        if histogram_rows:
            sections.append(
                format_table(
                    ["histogram", "n", "mean", "max"],
                    histogram_rows,
                    title="Histograms",
                )
            )
        if series_rows:
            sections.append(
                format_table(
                    ["series", "n", "last", "trend"],
                    series_rows,
                    title="Time series",
                )
            )
        if not sections:
            return f"{title}\n(no metrics recorded)"
        return "\n\n".join(sections)


def _series_name(name: str, labels: dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


# ----------------------------------------------------------------------
# Facade support: legacy counter objects served from a registry
# ----------------------------------------------------------------------


class LabeledCounterDict(dict):
    """A dict facade over one labeled counter series.

    The legacy stats objects expose per-key tallies as plain dicts
    (``stats.by_kind["match-request"] += 1``); this subclass keeps that
    call surface — including equality with ordinary dicts and
    ``defaultdict(int)``-style zero-on-missing reads — while writing every
    update through to the registry counter, one label set per key.
    """

    def __init__(self, counter: Counter, label: str) -> None:
        super().__init__()
        self._counter = counter
        self._label = label

    def __missing__(self, key: Any) -> int:
        return 0

    def __setitem__(self, key: Any, value: Any) -> None:
        super().__setitem__(key, value)
        self._counter.set(value, **{self._label: key})

    def __delitem__(self, key: Any) -> None:
        super().__delitem__(key)
        self._counter.set(0, **{self._label: key})

    def clear(self) -> None:
        for key in list(self):
            self._counter.set(0, **{self._label: key})
        super().clear()


def registry_field(field_name: str) -> property:
    """A property whose storage is a registry counter.

    Classes deriving from :class:`RegistryBackedCounters` declare their
    scalar fields with this: reads and writes (``+=`` included) go to the
    counter the instance bound at construction, so the legacy attribute
    API and the registry can never disagree.
    """

    def getter(self: "RegistryBackedCounters") -> Any:
        return self._scalars[field_name].get()

    def setter(self: "RegistryBackedCounters", value: Any) -> None:
        self._scalars[field_name].set(value)

    return property(getter, setter, doc=f"registry-backed field {field_name!r}")


class RegistryBackedCounters:
    """Base for stats facades whose fields live in a :class:`MetricsRegistry`.

    Subclasses set ``SCALAR_FIELDS`` (attribute names declared with
    :func:`registry_field`) and call :meth:`_bind` with a registry and a
    namespace; each field becomes the counter ``<namespace>.<field>``.
    When no registry is passed the facade creates a private one, so
    standalone construction (tests, ad-hoc scripts) keeps working.
    """

    SCALAR_FIELDS: tuple[str, ...] = ()

    def _bind(self, registry: MetricsRegistry | None, namespace: str) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.namespace = namespace
        self._scalars: dict[str, Counter] = {
            field: self.registry.counter(f"{namespace}.{field}")
            for field in self.SCALAR_FIELDS
        }

    def _labeled(self, name: str, label: str) -> LabeledCounterDict:
        return LabeledCounterDict(
            self.registry.counter(f"{self.namespace}.{name}"), label
        )

    def scalar_values(self) -> dict[str, Any]:
        """Every scalar field's current value (for reports and tests)."""
        return {field: self._scalars[field].get() for field in self.SCALAR_FIELDS}


def write_jsonl(path: str, documents: Iterable[dict[str, Any]]) -> int:
    """Write one JSON document per line; returns the number written."""
    written = 0
    with open(path, "w", encoding="utf-8") as handle:
        for document in documents:
            handle.write(json.dumps(document, default=str))
            handle.write("\n")
            written += 1
    return written
