"""Distributed tracing and cluster telemetry primitives.

The paper's query is a fan-out: ``l`` independent lookup chains, each
O(log N) hops, each hop a real TCP request since the live transport
landed.  A client-side :class:`~repro.obs.trace.QueryTrace` sees only its
half of every exchange — the send, the wait, the reply — while the work
that actually costs time (queue wait, match scoring, store placement)
happens inside another OS process.  This module carries trace identity
across that boundary and back:

``TraceContext``
    The W3C-traceparent-shaped envelope (trace id, parent span id,
    sampling flag) that rides as an *optional* field on wire requests.
    Old peers ignore unknown fields; new peers treat a missing or
    garbled context as "untraced" — propagation can only ever add
    information, never break a query.

``SpanFragment``
    One server-side span, recorded in *wall-clock* milliseconds (the
    only clock two processes share) and tagged with the trace context it
    served.  Fragments are plain JSON-able records so they survive the
    telemetry RPC and flight-recorder dumps unchanged.

``FlightRecorder``
    A bounded ring buffer of recent fragments and point events on every
    server — cheap enough to run always-on, rich enough to dump to JSONL
    the moment a breaker opens or SWIM evicts a member.

``stitch_trace``
    Grafts collected fragments back into the client's trace tree under
    the spans that issued the requests, mapping server wall time onto
    the client's trace clock via the wall anchor the client recorded at
    trace start, and flagging cross-node clock skew when a child span
    claims to run outside its parent's window.

The telemetry-merge helpers at the bottom turn per-node registry
snapshots (shape: :meth:`repro.obs.registry.MetricsRegistry.snapshot`)
into cluster-level aggregates: summed counters, merged histogram buckets
with p50/p95/p99, and Gini load skew over per-node request counts —
reusing :func:`repro.obs.health.gini` so the live cluster and the
simulator report skew on the same scale.
"""

from __future__ import annotations

import json
import time
import uuid
from collections import deque
from typing import Any, Callable, Iterable, Iterator

from repro.obs.trace import QueryTrace, Span
from repro.util.tolerant import read_jsonl_tolerant

__all__ = [
    "TraceContext",
    "SpanFragment",
    "FlightRecorder",
    "StitchReport",
    "new_trace_id",
    "wall_ms",
    "stitch_trace",
    "read_jsonl_tolerant",
    "counter_total",
    "counter_series",
    "merge_histogram_series",
    "bucket_quantile",
    "histogram_quantiles",
    "cluster_histogram",
    "load_skew",
    "format_trace",
]


def new_trace_id() -> str:
    """A cluster-unique trace id (16 hex chars is plenty for one run)."""
    return uuid.uuid4().hex[:16]


def wall_ms() -> float:
    """Wall-clock milliseconds — the only clock shared across processes."""
    return time.time() * 1000.0


class TraceContext:
    """Trace identity carried on the wire alongside a request.

    Wire form (the optional ``"trace"`` envelope field)::

        {"id": "<trace id>", "span": "<parent span id>", "sampled": true}

    The codec is deliberately forgiving: :meth:`from_wire` returns
    ``None`` for anything that is not a dict carrying a string id —
    a garbled envelope degrades the request to untraced, it never
    errors (wire-compat rule, DESIGN §14).
    """

    __slots__ = ("trace_id", "parent_span_id", "sampled")

    def __init__(
        self,
        trace_id: str,
        parent_span_id: str | None = None,
        sampled: bool = True,
    ) -> None:
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id
        self.sampled = sampled

    def child(self, parent_span_id: str | None) -> "TraceContext":
        """The same trace identity re-parented under another span."""
        return TraceContext(self.trace_id, parent_span_id, self.sampled)

    def to_wire(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"id": self.trace_id, "sampled": self.sampled}
        if self.parent_span_id is not None:
            doc["span"] = self.parent_span_id
        return doc

    @classmethod
    def from_wire(cls, doc: Any) -> "TraceContext | None":
        """Decode a wire envelope; anything malformed reads as untraced."""
        if not isinstance(doc, dict):
            return None
        trace_id = doc.get("id")
        if not isinstance(trace_id, str) or not trace_id:
            return None
        span = doc.get("span")
        if span is not None and not isinstance(span, str):
            span = None
        return cls(trace_id, span, bool(doc.get("sampled", True)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TraceContext({self.trace_id!r}, span={self.parent_span_id!r}, "
            f"sampled={self.sampled})"
        )


class SpanFragment:
    """One server-side span, timed in wall-clock ms and JSON-able.

    Fragments are what the telemetry RPC ships and the flight recorder
    dumps; :func:`stitch_trace` turns them back into :class:`Span` nodes
    under the client spans that issued the requests.
    """

    __slots__ = (
        "name", "node", "trace_id", "parent_span_id", "span_id",
        "start_wall_ms", "end_wall_ms", "attrs", "events",
    )

    def __init__(
        self,
        name: str,
        node: str,
        trace_id: str | None = None,
        parent_span_id: str | None = None,
        span_id: str | None = None,
        start_wall_ms: float | None = None,
        end_wall_ms: float | None = None,
        attrs: dict[str, Any] | None = None,
        events: list[dict[str, Any]] | None = None,
    ) -> None:
        self.name = name
        self.node = node
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id
        self.span_id = span_id or f"frag-{uuid.uuid4().hex[:12]}"
        self.start_wall_ms = wall_ms() if start_wall_ms is None else start_wall_ms
        self.end_wall_ms = end_wall_ms
        self.attrs: dict[str, Any] = dict(attrs or {})
        self.events: list[dict[str, Any]] = list(events or [])

    def event(self, name: str, **attrs: Any) -> None:
        """Record a wall-clock point event on this fragment."""
        self.events.append({"name": name, "at_wall_ms": wall_ms(), "attrs": attrs})

    def end(self, **attrs: Any) -> "SpanFragment":
        """Close the fragment (idempotent); extra attrs merge in."""
        if attrs:
            self.attrs.update(attrs)
        if self.end_wall_ms is None:
            self.end_wall_ms = wall_ms()
        return self

    @property
    def duration_ms(self) -> float:
        if self.end_wall_ms is None:
            return 0.0
        return self.end_wall_ms - self.start_wall_ms

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "node": self.node,
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
            "span_id": self.span_id,
            "start_wall_ms": self.start_wall_ms,
            "end_wall_ms": self.end_wall_ms,
            "attrs": self.attrs,
            "events": self.events,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "SpanFragment":
        return cls(
            name=str(doc.get("name", "span")),
            node=str(doc.get("node", "?")),
            trace_id=doc.get("trace_id"),
            parent_span_id=doc.get("parent_span_id"),
            span_id=doc.get("span_id"),
            start_wall_ms=float(doc.get("start_wall_ms", 0.0)),
            end_wall_ms=doc.get("end_wall_ms"),
            attrs=doc.get("attrs") or {},
            events=doc.get("events") or [],
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SpanFragment({self.name!r}, node={self.node!r}, "
            f"trace={self.trace_id!r})"
        )


class FlightRecorder:
    """Bounded ring buffer of recent span fragments and point events.

    Every server runs one, always-on: recording is an O(1) deque append,
    memory is capped by ``capacity``, and the whole buffer dumps to JSONL
    in one pass when something goes wrong (breaker opens, SWIM evicts a
    member) — the black box you read *after* the crash.
    """

    DEFAULT_CAPACITY = 256

    def __init__(self, node: str, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("flight recorder capacity must be positive")
        self.node = node
        self.capacity = capacity
        self._entries: deque[dict[str, Any]] = deque(maxlen=capacity)
        self.recorded = 0
        self.dumps = 0

    def __len__(self) -> int:
        return len(self._entries)

    def record_span(self, fragment: SpanFragment) -> SpanFragment:
        """Retain one (finished or still-open) span fragment."""
        self._entries.append({"type": "span", **fragment.to_dict()})
        self.recorded += 1
        return fragment

    def record_event(self, name: str, **attrs: Any) -> None:
        """Retain one standalone point event (breaker flip, eviction...)."""
        self._entries.append(
            {
                "type": "event",
                "name": name,
                "node": self.node,
                "at_wall_ms": wall_ms(),
                "attrs": attrs,
            }
        )
        self.recorded += 1

    def recent(self, limit: int | None = None) -> list[dict[str, Any]]:
        """The newest ``limit`` entries, oldest first (all when None)."""
        entries = list(self._entries)
        if limit is not None and limit < len(entries):
            entries = entries[-limit:]
        return entries

    def spans_for(self, trace_id: str) -> list[dict[str, Any]]:
        """Retained span entries belonging to one distributed trace."""
        return [
            entry
            for entry in self._entries
            if entry.get("type") == "span" and entry.get("trace_id") == trace_id
        ]

    def dump(self, path: str, reason: str = "") -> int:
        """Append the whole buffer to ``path`` as JSONL; returns lines written.

        Appending (not truncating) means one file accumulates every
        incident of a server's lifetime; each dump is bracketed by a
        ``flight-dump`` marker entry carrying the reason.
        """
        entries = list(self._entries)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {
                        "type": "flight-dump",
                        "node": self.node,
                        "reason": reason,
                        "at_wall_ms": wall_ms(),
                        "entries": len(entries),
                    }
                )
            )
            handle.write("\n")
            for entry in entries:
                handle.write(json.dumps(entry, default=str))
                handle.write("\n")
        self.dumps += 1
        return len(entries) + 1


# Torn-tail-tolerant JSONL reading is shared with the storage WAL; the
# canonical implementation lives in ``repro.util.tolerant`` and is
# re-exported here for the flight-recorder tooling that grew up with it.


# ----------------------------------------------------------------------
# Stitching: server fragments back into the client's trace tree
# ----------------------------------------------------------------------


class StitchReport:
    """What :func:`stitch_trace` did: attach counts and skew evidence."""

    __slots__ = ("attached", "orphans", "nodes", "skew_suspects")

    def __init__(self) -> None:
        self.attached = 0
        self.orphans = 0
        self.nodes: set[str] = set()
        #: (node, overshoot_ms) pairs where a mapped server span fell
        #: outside its parent's window — the smoking gun of clock skew.
        self.skew_suspects: list[tuple[str, float]] = []

    def to_dict(self) -> dict[str, Any]:
        return {
            "attached": self.attached,
            "orphans": self.orphans,
            "nodes": sorted(self.nodes),
            "skew_suspects": [
                {"node": node, "overshoot_ms": overshoot}
                for node, overshoot in self.skew_suspects
            ],
        }


#: Wall-to-trace mapping tolerance before flagging clock skew: two boxes
#: disagreeing by less than this is indistinguishable from queue jitter.
SKEW_TOLERANCE_MS = 5.0


def stitch_trace(
    trace: QueryTrace,
    fragments: Iterable[SpanFragment | dict[str, Any]],
) -> StitchReport:
    """Graft server-side span fragments into a client trace tree.

    Each fragment names the client span that issued its request
    (``parent_span_id``); the fragment becomes a child :class:`Span` of
    that span, marked ``remote=True`` with its origin node.  Server wall
    times map onto the client's trace clock through the wall anchor the
    client stamped on the root span (``wall_start_ms`` attr) — and when
    the mapped interval overflows the parent's own window by more than
    :data:`SKEW_TOLERANCE_MS`, the overshoot is recorded as clock-skew
    evidence on both the span and the returned :class:`StitchReport`.

    Fragments whose parent span is not in the tree (the issuing process
    died, or the id was truncated) attach under the root as orphans —
    stitching is salvage, it never throws data away.
    """
    report = StitchReport()
    by_id: dict[str, Span] = {}
    for span in trace.root.walk():
        by_id[span.span_id] = span

    anchor_wall = trace.root.attrs.get("wall_start_ms")
    anchor_trace = trace.root.start_ms

    def to_trace_clock(wall: float | None) -> float | None:
        if wall is None or anchor_wall is None:
            return wall
        return anchor_trace + (float(wall) - float(anchor_wall))

    for item in fragments:
        fragment = (
            item if isinstance(item, SpanFragment) else SpanFragment.from_dict(item)
        )
        parent = by_id.get(fragment.parent_span_id or "")
        orphan = parent is None
        if parent is None:
            parent = trace.root
            report.orphans += 1
        start = to_trace_clock(fragment.start_wall_ms)
        end = to_trace_clock(fragment.end_wall_ms)
        child = Span.__new__(Span)
        child.name = fragment.name
        child._clock = trace.clock
        child.attrs = dict(fragment.attrs)
        child.attrs["remote"] = True
        child.attrs["node"] = fragment.node
        if orphan:
            child.attrs["orphan"] = True
        child.start_ms = float(start if start is not None else parent.start_ms)
        child.end_ms = float(end) if end is not None else child.start_ms
        child.events = []
        child.children = []
        child.span_id = fragment.span_id
        for event in fragment.events:
            at = to_trace_clock(event.get("at_wall_ms"))
            child.events.append(
                _remote_event(
                    str(event.get("name", "event")),
                    float(at) if at is not None else child.start_ms,
                    dict(event.get("attrs") or {}),
                )
            )
        if not orphan:
            overshoot = _window_overshoot(parent, child)
            if overshoot > SKEW_TOLERANCE_MS:
                child.attrs["clock_skew_ms"] = round(overshoot, 3)
                report.skew_suspects.append((fragment.node, round(overshoot, 3)))
        parent.children.append(child)
        by_id[child.span_id] = child
        report.attached += 1
        report.nodes.add(fragment.node)
    return report


def _remote_event(name: str, at_ms: float, attrs: dict[str, Any]):
    from repro.obs.trace import TraceEvent

    return TraceEvent(name, at_ms, attrs)


def _window_overshoot(parent: Span, child: Span) -> float:
    """How far the child's interval sticks out of the parent's window."""
    overshoot = 0.0
    if child.start_ms < parent.start_ms:
        overshoot = max(overshoot, parent.start_ms - child.start_ms)
    if parent.end_ms is not None and child.end_ms is not None:
        if child.end_ms > parent.end_ms:
            overshoot = max(overshoot, child.end_ms - parent.end_ms)
    return overshoot


# ----------------------------------------------------------------------
# Telemetry snapshot merging (per-node registry snapshots -> cluster view)
# ----------------------------------------------------------------------


def _metric_families(snapshot: dict[str, Any], name: str) -> Iterator[dict[str, Any]]:
    for family in snapshot.get("metrics", []):
        if family.get("name") == name:
            yield family


def counter_total(snapshot: dict[str, Any], name: str) -> float:
    """Sum of every series of one counter/gauge family in a snapshot."""
    total = 0.0
    for family in _metric_families(snapshot, name):
        for series in family.get("series", []):
            total += float(series.get("value", 0) or 0)
    return total


def counter_series(snapshot: dict[str, Any], name: str) -> dict[str, float]:
    """Label-rendered ``{series: value}`` map of one counter family."""
    out: dict[str, float] = {}
    for family in _metric_families(snapshot, name):
        for series in family.get("series", []):
            labels = series.get("labels") or {}
            key = ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"
            out[key] = out.get(key, 0.0) + float(series.get("value", 0) or 0)
    return out


def merge_histogram_series(
    snapshots: Iterable[dict[str, Any]], name: str
) -> dict[str, Any] | None:
    """Merge one histogram family across node snapshots, bucket-wise.

    All nodes run the same code so their edge ladders agree; a node whose
    edges differ (mid-rolling-upgrade) is skipped rather than corrupting
    the merge.  Returns ``{"edges", "counts", "count", "sum", "max"}`` or
    ``None`` when no node recorded the family.
    """
    edges: list[float] | None = None
    counts: list[int] = []
    count = 0
    total = 0.0
    peak = 0.0
    for snapshot in snapshots:
        for family in _metric_families(snapshot, name):
            family_edges = [float(e) for e in family.get("edges", [])]
            if edges is None:
                edges = family_edges
                counts = [0] * (len(edges) + 1)
            elif family_edges != edges:
                continue
            for series in family.get("series", []):
                series_counts = series.get("counts") or []
                for i, c in enumerate(series_counts[: len(counts)]):
                    counts[i] += int(c)
                count += int(series.get("count", 0) or 0)
                total += float(series.get("sum", 0.0) or 0.0)
                peak = max(peak, float(series.get("max", 0.0) or 0.0))
    if edges is None:
        return None
    return {"edges": edges, "counts": counts, "count": count, "sum": total, "max": peak}


def bucket_quantile(edges: list[float], counts: list[int], q: float) -> float:
    """Bucket-resolution quantile: the upper edge of the bucket holding q.

    The overflow bucket reads as the last finite edge — an honest "at
    least this much" rather than a fabricated infinity.
    """
    total = sum(counts)
    if total <= 0:
        return 0.0
    rank = q * total
    seen = 0
    for i, c in enumerate(counts):
        seen += c
        if seen >= rank:
            if i < len(edges):
                return float(edges[i])
            return float(edges[-1]) if edges else 0.0
    return float(edges[-1]) if edges else 0.0


def histogram_quantiles(
    merged: dict[str, Any] | None, qs: Iterable[float] = (0.5, 0.95, 0.99)
) -> dict[str, float]:
    """p50/p95/p99-style summary of a merged histogram (zeros when empty)."""
    out: dict[str, float] = {}
    for q in qs:
        key = f"p{int(round(q * 100))}"
        if merged is None:
            out[key] = 0.0
        else:
            out[key] = bucket_quantile(merged["edges"], merged["counts"], q)
    return out


def cluster_histogram(
    snapshots: Iterable[dict[str, Any]], name: str
) -> dict[str, Any]:
    """Merged histogram + quantiles + mean for one family across nodes."""
    merged = merge_histogram_series(list(snapshots), name)
    summary = histogram_quantiles(merged)
    if merged is not None and merged["count"]:
        summary["mean"] = merged["sum"] / merged["count"]
        summary["count"] = merged["count"]
        summary["max"] = merged["max"]
    else:
        summary["mean"] = 0.0
        summary["count"] = 0
        summary["max"] = 0.0
    return summary


def load_skew(per_node_load: dict[str, float]) -> float:
    """Gini coefficient over per-node load — 0 balanced, →1 skewed."""
    from repro.obs.health import gini

    return gini(list(per_node_load.values()))


# ----------------------------------------------------------------------
# Pretty-printing stitched traces
# ----------------------------------------------------------------------


def format_trace(
    trace: QueryTrace | dict[str, Any],
    *,
    max_events: int = 4,
) -> str:
    """Render a (stitched) trace tree as indented text.

    Remote spans show their origin node; events render inline, capped at
    ``max_events`` per span with an elision marker, so a deep fan-out
    trace stays readable on a terminal.
    """
    doc = trace.to_dict() if isinstance(trace, QueryTrace) else trace
    lines: list[str] = []
    trace_id = doc.get("trace_id")
    if trace_id:
        lines.append(f"trace {trace_id}")

    def walk(span: dict[str, Any], depth: int) -> None:
        indent = "  " * depth
        attrs = span.get("attrs") or {}
        tags: list[str] = []
        if attrs.get("remote"):
            tags.append(f"@{attrs.get('node', '?')}")
        if attrs.get("orphan"):
            tags.append("orphan")
        if "clock_skew_ms" in attrs:
            tags.append(f"skew~{attrs['clock_skew_ms']}ms")
        for key in ("identifier", "owner", "kind", "outcome", "queries"):
            if key in attrs:
                tags.append(f"{key}={attrs[key]}")
        suffix = f" [{' '.join(tags)}]" if tags else ""
        duration = span.get("duration_ms")
        lines.append(
            f"{indent}{span.get('name', '?')}"
            f" ({duration:.1f}ms){suffix}"
            if isinstance(duration, (int, float))
            else f"{indent}{span.get('name', '?')}{suffix}"
        )
        events = span.get("events") or []
        shown = events[:max_events]
        for event in shown:
            eattrs = event.get("attrs") or {}
            detail = " ".join(f"{k}={v}" for k, v in sorted(eattrs.items()))
            lines.append(
                f"{indent}  · {event.get('name', '?')}"
                + (f" {detail}" if detail else "")
            )
        if len(events) > max_events:
            lines.append(f"{indent}  · ... {len(events) - max_events} more events")
        for child in span.get("spans") or []:
            walk(child, depth + 1)

    walk(doc, 0)
    return "\n".join(lines)
