"""Integer range algebra.

A selection predicate ``start <= attr <= end`` over an integer-ordered
attribute defines a *closed interval* of domain values; the paper treats that
interval as the set ``{start, ..., end}``.  :class:`IntRange` models the
interval with closed-form set arithmetic (no materialization), and
:class:`RangeSet` models unions of disjoint intervals, which arise from
multi-predicate selections and from measuring how much of a query several
cached partitions jointly cover.
"""

from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange
from repro.ranges.rangeset import RangeSet

__all__ = ["IntRange", "RangeSet", "Domain"]
