"""Closed integer intervals with closed-form set arithmetic."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import InvalidRangeError

__all__ = ["IntRange"]


@dataclass(frozen=True, order=True)
class IntRange:
    """The closed integer interval ``[start, end]``, viewed as a value set.

    ``IntRange(30, 50)`` is the paper's running example: the set
    ``{30, 31, ..., 50}`` of ages matching ``30 <= age <= 50``.  Instances
    are immutable, hashable and ordered lexicographically by
    ``(start, end)``.

    >>> q = IntRange(30, 50)
    >>> len(q)
    21
    >>> q.jaccard(IntRange(30, 49))
    0.9523809523809523
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if not isinstance(self.start, (int, np.integer)) or not isinstance(
            self.end, (int, np.integer)
        ):
            raise InvalidRangeError("range endpoints must be integers")
        if self.start > self.end:
            raise InvalidRangeError(
                f"range start {self.start} exceeds end {self.end}"
            )
        # Normalise numpy integer endpoints to plain ints so hashing and
        # equality behave identically regardless of how the range was built.
        object.__setattr__(self, "start", int(self.start))
        object.__setattr__(self, "end", int(self.end))

    # ------------------------------------------------------------------
    # Set-view basics
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.end - self.start + 1

    def __contains__(self, value: int) -> bool:
        return self.start <= value <= self.end

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.start, self.end + 1))

    def values(self) -> range:
        """The interval as a Python ``range`` (cheap, lazy)."""
        return range(self.start, self.end + 1)

    def to_array(self) -> np.ndarray:
        """The interval materialized as a ``uint64`` numpy array."""
        return np.arange(self.start, self.end + 1, dtype=np.uint64)

    def to_set(self) -> set[int]:
        """The interval materialized as a Python set (tests/small ranges)."""
        return set(self.values())

    # ------------------------------------------------------------------
    # Interval arithmetic
    # ------------------------------------------------------------------

    def overlaps(self, other: "IntRange") -> bool:
        """True when the two intervals share at least one value."""
        return self.start <= other.end and other.start <= self.end

    def touches(self, other: "IntRange") -> bool:
        """True when the intervals overlap or are adjacent (e.g. [1,3],[4,6])."""
        return self.start <= other.end + 1 and other.start <= self.end + 1

    def intersect(self, other: "IntRange") -> "IntRange | None":
        """The overlapping interval, or ``None`` when disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo > hi:
            return None
        return IntRange(lo, hi)

    def intersection_size(self, other: "IntRange") -> int:
        """``|self ∩ other|`` without building the intersection."""
        return max(0, min(self.end, other.end) - max(self.start, other.start) + 1)

    def union_size(self, other: "IntRange") -> int:
        """``|self ∪ other|`` (the union may not be an interval)."""
        return len(self) + len(other) - self.intersection_size(other)

    def hull(self, other: "IntRange") -> "IntRange":
        """Smallest interval containing both operands."""
        return IntRange(min(self.start, other.start), max(self.end, other.end))

    def contains_range(self, other: "IntRange") -> bool:
        """True when ``other`` is a subset of this interval."""
        return self.start <= other.start and other.end <= self.end

    # ------------------------------------------------------------------
    # Similarity (Section 3.2 of the paper)
    # ------------------------------------------------------------------

    def jaccard(self, other: "IntRange") -> float:
        """Jaccard set similarity ``|Q ∩ R| / |Q ∪ R|``."""
        inter = self.intersection_size(other)
        if inter == 0:
            return 0.0
        return inter / self.union_size(other)

    def containment(self, other: "IntRange") -> float:
        """Containment similarity ``|Q ∩ R| / |Q|`` with ``Q = self``.

        This is the paper's user-centric measure: the fraction of *this*
        query's answer that partition ``other`` provides (its recall).
        """
        return self.intersection_size(other) / len(self)

    # ------------------------------------------------------------------
    # Padding (Section 5.2)
    # ------------------------------------------------------------------

    def pad(
        self,
        fraction: float,
        lower_bound: int | None = None,
        upper_bound: int | None = None,
    ) -> "IntRange":
        """Expand the range by ``fraction`` of its length on *each* edge.

        The paper's padded-query experiment expands "the selection ranges
        20% on the edges"; ``pad(0.2)`` reproduces that.  Optional bounds
        clamp the result to an attribute domain.
        """
        if fraction < 0:
            raise InvalidRangeError("padding fraction must be non-negative")
        amount = int(round(len(self) * fraction))
        return self.pad_absolute(amount, lower_bound, upper_bound)

    def pad_absolute(
        self,
        amount: int,
        lower_bound: int | None = None,
        upper_bound: int | None = None,
    ) -> "IntRange":
        """Expand the range by ``amount`` values on each edge, clamped."""
        if amount < 0:
            raise InvalidRangeError("padding amount must be non-negative")
        lo = self.start - amount
        hi = self.end + amount
        if lower_bound is not None:
            lo = max(lo, lower_bound)
        if upper_bound is not None:
            hi = min(hi, upper_bound)
        if lo > hi:
            raise InvalidRangeError("padding bounds eliminated the range")
        return IntRange(lo, hi)

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------

    def __str__(self) -> str:
        return f"[{self.start}, {self.end}]"

    @classmethod
    def from_predicate(cls, low: int, high: int) -> "IntRange":
        """Build from a ``low <= attr <= high`` predicate."""
        return cls(low, high)
