"""Unions of disjoint closed integer intervals."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import InvalidRangeError
from repro.ranges.interval import IntRange

__all__ = ["RangeSet"]


def _normalize(intervals: Iterable[IntRange]) -> tuple[IntRange, ...]:
    """Sort intervals and merge any that overlap or touch."""
    ordered = sorted(intervals, key=lambda r: (r.start, r.end))
    merged: list[IntRange] = []
    for interval in ordered:
        if merged and merged[-1].touches(interval):
            merged[-1] = merged[-1].hull(interval)
        else:
            merged.append(interval)
    return tuple(merged)


@dataclass(frozen=True)
class RangeSet:
    """An immutable union of disjoint, non-adjacent closed intervals.

    Construction normalizes its inputs, so two range sets covering the same
    values always compare equal:

    >>> RangeSet([IntRange(1, 3), IntRange(4, 6)]) == RangeSet([IntRange(1, 6)])
    True
    """

    intervals: tuple[IntRange, ...] = field(default_factory=tuple)

    def __init__(self, intervals: Iterable[IntRange] = ()) -> None:
        object.__setattr__(self, "intervals", _normalize(intervals))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> "RangeSet":
        """The empty set of values."""
        return cls(())

    @classmethod
    def of(cls, *pairs: tuple[int, int]) -> "RangeSet":
        """Build from ``(start, end)`` pairs: ``RangeSet.of((1, 3), (7, 9))``."""
        return cls(IntRange(s, e) for s, e in pairs)

    # ------------------------------------------------------------------
    # Set-view basics
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(r) for r in self.intervals)

    def __bool__(self) -> bool:
        return bool(self.intervals)

    def __contains__(self, value: int) -> bool:
        return any(value in r for r in self.intervals)

    def __iter__(self) -> Iterator[int]:
        for interval in self.intervals:
            yield from interval

    def to_set(self) -> set[int]:
        """Materialize as a Python set (small sets / tests only)."""
        return set(iter(self))

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def union(self, other: "RangeSet | IntRange") -> "RangeSet":
        """Set union."""
        other_intervals = (
            (other,) if isinstance(other, IntRange) else other.intervals
        )
        return RangeSet(self.intervals + tuple(other_intervals))

    def intersect(self, other: "RangeSet | IntRange") -> "RangeSet":
        """Set intersection (two-pointer sweep over sorted intervals)."""
        other_intervals = (
            (other,) if isinstance(other, IntRange) else other.intervals
        )
        out: list[IntRange] = []
        i, j = 0, 0
        mine = self.intervals
        theirs = tuple(other_intervals)
        while i < len(mine) and j < len(theirs):
            overlap = mine[i].intersect(theirs[j])
            if overlap is not None:
                out.append(overlap)
            if mine[i].end < theirs[j].end:
                i += 1
            else:
                j += 1
        return RangeSet(out)

    def difference(self, other: "RangeSet | IntRange") -> "RangeSet":
        """Values in this set but not in ``other``."""
        other_set = (
            RangeSet((other,)) if isinstance(other, IntRange) else other
        )
        out: list[IntRange] = []
        for interval in self.intervals:
            pieces = [interval]
            for cut in other_set.intervals:
                next_pieces: list[IntRange] = []
                for piece in pieces:
                    overlap = piece.intersect(cut)
                    if overlap is None:
                        next_pieces.append(piece)
                        continue
                    if piece.start < overlap.start:
                        next_pieces.append(IntRange(piece.start, overlap.start - 1))
                    if overlap.end < piece.end:
                        next_pieces.append(IntRange(overlap.end + 1, piece.end))
                pieces = next_pieces
                if not pieces:
                    break
            out.extend(pieces)
        return RangeSet(out)

    def coverage_of(self, query: IntRange) -> float:
        """Fraction of ``query``'s values present in this set.

        This is the *joint recall* when several cached partitions together
        answer one query.
        """
        if len(query) == 0:
            raise InvalidRangeError("query range cannot be empty")
        covered = sum(r.intersection_size(query) for r in self.intervals)
        return covered / len(query)

    def hull(self) -> IntRange | None:
        """Smallest single interval containing the whole set."""
        if not self.intervals:
            return None
        return IntRange(self.intervals[0].start, self.intervals[-1].end)

    def __str__(self) -> str:
        if not self.intervals:
            return "{}"
        return " ∪ ".join(str(r) for r in self.intervals)
