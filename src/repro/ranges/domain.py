"""Attribute domains: the totally-ordered value spaces ranges live in.

Min-wise hashing needs a totally ordered finite domain ``D`` (Section 3.3).
A :class:`Domain` names that space, bounds it, and converts attribute values
(ints, dates) to and from the integer code space that the permutations act
on.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

from repro.errors import DomainError
from repro.ranges.interval import IntRange

__all__ = ["Domain"]

_EPOCH = _dt.date(1970, 1, 1)


@dataclass(frozen=True)
class Domain:
    """An inclusive integer domain ``[low, high]`` for one attribute.

    >>> age = Domain("age", 0, 120)
    >>> age.clamp(IntRange(100, 400))
    IntRange(start=100, end=120)
    """

    name: str
    low: int
    high: int

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise DomainError(f"domain {self.name}: low {self.low} > high {self.high}")

    @property
    def size(self) -> int:
        """Number of values in the domain."""
        return self.high - self.low + 1

    def full_range(self) -> IntRange:
        """The whole domain as a range."""
        return IntRange(self.low, self.high)

    def __contains__(self, value: int) -> bool:
        return self.low <= value <= self.high

    def validate(self, value: int) -> int:
        """Return ``value`` or raise :class:`DomainError` if out of bounds."""
        if value not in self:
            raise DomainError(
                f"value {value} outside domain {self.name} [{self.low}, {self.high}]"
            )
        return value

    def validate_range(self, r: IntRange) -> IntRange:
        """Return ``r`` or raise if either endpoint is out of bounds."""
        self.validate(r.start)
        self.validate(r.end)
        return r

    def clamp(self, r: IntRange) -> IntRange:
        """Intersect ``r`` with the domain; raise if fully outside."""
        clamped = r.intersect(self.full_range())
        if clamped is None:
            raise DomainError(f"range {r} lies entirely outside domain {self.name}")
        return clamped

    # ------------------------------------------------------------------
    # Date support (the paper's Prescription.date selection)
    # ------------------------------------------------------------------

    @staticmethod
    def date_to_code(date: _dt.date) -> int:
        """Encode a date as days since 1970-01-01 (total order preserved)."""
        return (date - _EPOCH).days

    @staticmethod
    def code_to_date(code: int) -> _dt.date:
        """Inverse of :meth:`date_to_code`."""
        return _EPOCH + _dt.timedelta(days=code)

    @classmethod
    def for_dates(cls, name: str, low: _dt.date, high: _dt.date) -> "Domain":
        """A domain spanning the dates ``[low, high]`` in day codes."""
        return cls(name, cls.date_to_code(low), cls.date_to_code(high))

    @classmethod
    def date_range(cls, low: _dt.date, high: _dt.date) -> IntRange:
        """An :class:`IntRange` of day codes for ``[low, high]``."""
        return IntRange(cls.date_to_code(low), cls.date_to_code(high))
