"""Locality sensitive hashing for range sets (paper Sections 3.3 and 4).

Three permutation families are provided, matching the paper's comparison:

- :class:`MinWiseFamily` — the full recursive bit-shuffle network of the
  paper's Figure 3 (``log2(width)`` shuffle iterations);
- :class:`ApproxMinWiseFamily` — only the first shuffle iteration,
  "representable with a single 32-bit integer key";
- :class:`LinearFamily` — linear permutations ``pi(x) = (a*x + b) mod p``.

A :class:`MinHash` wraps one sampled permutation and hashes a range set to
``min(pi(Q))``.  :class:`LSHIdentifierScheme` combines ``l`` groups of ``k``
min-hashes into ``l`` 32-bit identifiers via XOR, exactly as the paper's
querying-peer pseudocode does.
"""

from repro.lsh.accel import DomainMinHashIndex
from repro.lsh.approx import ApproxMinWiseFamily, ApproxMinWisePermutation
from repro.lsh.base import MinHash, Permutation, PermutationFamily
from repro.lsh.bitshuffle import BitShufflePermutation, MinWiseFamily
from repro.lsh.groups import HashGroup, LSHIdentifierScheme
from repro.lsh.linear import LinearFamily, LinearPermutation
from repro.lsh.table import TablePermutation, TablePermutationFamily
from repro.lsh.theory import (
    collision_probability,
    group_match_probability,
    recommend_parameters,
    step_quality,
)

FAMILIES = {
    "min-wise": MinWiseFamily,
    "approx-min-wise": ApproxMinWiseFamily,
    "linear": LinearFamily,
    "table": TablePermutationFamily,
}


def family_by_name(name: str, **kwargs: object) -> PermutationFamily:
    """Instantiate a permutation family from its canonical name."""
    try:
        cls = FAMILIES[name]
    except KeyError:
        raise KeyError(
            f"unknown hash family {name!r}; choose from {sorted(FAMILIES)}"
        ) from None
    return cls(**kwargs)  # type: ignore[arg-type]


def family_for_domain(name: str, domain) -> PermutationFamily:
    """Instantiate a family sized to an attribute domain.

    Linear permutations take the smallest prime above the domain maximum
    (the Broder construction); table permutations cover exactly the
    domain's code space; the bit-shuffle families are domain-independent.
    """
    from repro.lsh.linear import next_prime_above

    if name == "linear":
        return LinearFamily(p=next_prime_above(int(domain.high)))
    if name == "table":
        return TablePermutationFamily(domain_size=int(domain.high) + 1)
    return family_by_name(name)


__all__ = [
    "Permutation",
    "PermutationFamily",
    "MinHash",
    "BitShufflePermutation",
    "MinWiseFamily",
    "ApproxMinWisePermutation",
    "ApproxMinWiseFamily",
    "LinearPermutation",
    "LinearFamily",
    "TablePermutation",
    "TablePermutationFamily",
    "HashGroup",
    "LSHIdentifierScheme",
    "DomainMinHashIndex",
    "collision_probability",
    "group_match_probability",
    "step_quality",
    "recommend_parameters",
    "FAMILIES",
    "family_by_name",
    "family_for_domain",
]
