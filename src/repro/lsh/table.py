"""Exact min-wise independent permutations over a bounded domain.

The paper's Figure 3 network only permutes *bit positions*, which is far
from uniformly random over all permutations (for example, images of values
with few set bits are biased small).  For a bounded domain we can afford
the real thing: an explicit uniformly random permutation of the domain,
stored as a table.  This family is the *ideal* reference the theory in
Section 3.3 assumes — ``Pr[h(Q) = h(R)]`` equals Jaccard exactly — and the
ablation experiment compares the paper's construction against it.

Images are mapped through a sorted set of random 32-bit codes, so
identifiers still spread over the full 32-bit ring while preserving the
permutation's order (and therefore its min).
"""

from __future__ import annotations

import numpy as np

from repro.errors import HashFamilyError
from repro.lsh.base import Permutation, PermutationFamily

__all__ = ["TablePermutation", "TablePermutationFamily"]


class TablePermutation(Permutation):
    """An explicit random permutation of ``[0, domain_size)``.

    ``apply(x)`` returns a 32-bit code whose order over the domain is the
    permuted order, so min-hashing behaves exactly as with the raw
    permutation while identifiers cover the 32-bit space.
    """

    def __init__(self, perm: np.ndarray, codes: np.ndarray) -> None:
        if perm.ndim != 1 or codes.ndim != 1 or perm.size != codes.size:
            raise HashFamilyError("permutation and code tables must align")
        if not np.array_equal(np.sort(perm), np.arange(perm.size)):
            raise HashFamilyError("table is not a permutation of the domain")
        self.space_size = int(perm.size)
        self._mapped = codes[perm].astype(np.uint64)

    def apply(self, x: int) -> int:
        self.validate_input(x)
        return int(self._mapped[x])

    def apply_array(self, xs: np.ndarray) -> np.ndarray:
        arr = np.asarray(xs, dtype=np.uint64)
        return self._mapped[arr.astype(np.intp)]


class TablePermutationFamily(PermutationFamily):
    """Uniform distribution over all permutations of a bounded domain."""

    name = "table"

    def __init__(self, domain_size: int = 1001) -> None:
        if domain_size < 2:
            raise HashFamilyError("domain must have at least two values")
        if domain_size > 1 << 24:
            raise HashFamilyError(
                "table permutations over >2^24 values are impractical; "
                "use the bit-shuffle families instead"
            )
        self.domain_size = domain_size

    def sample(self, rng: np.random.Generator) -> TablePermutation:
        perm = rng.permutation(self.domain_size)
        # Distinct random 32-bit codes, sorted so rank order is preserved.
        codes = np.sort(
            rng.choice(np.uint64(1) << np.uint64(32), size=self.domain_size,
                       replace=False).astype(np.uint64)
        )
        return TablePermutation(perm.astype(np.int64), codes)
