"""Permutation and min-hash abstractions."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import InvalidRangeError
from repro.ranges.interval import IntRange

__all__ = ["Permutation", "PermutationFamily", "MinHash"]


class Permutation(ABC):
    """A bijection of a finite integer code space onto itself.

    Min-wise hashing (Section 3.3) is ``h(Q) = min(pi(Q))`` for a random
    permutation ``pi``; concrete subclasses supply ``pi``.
    """

    #: Size of the permuted space; ``apply`` maps [0, space_size) to itself.
    space_size: int

    @abstractmethod
    def apply(self, x: int) -> int:
        """Image of a single value (reference, element-at-a-time path)."""

    def apply_array(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized image of a ``uint64`` array of values.

        Default falls back to the scalar path; subclasses override with a
        numpy implementation.
        """
        return np.fromiter(
            (self.apply(int(x)) for x in xs), dtype=np.uint64, count=len(xs)
        )

    def validate_input(self, x: int) -> None:
        """Raise ``ValueError`` when ``x`` is outside the permuted space."""
        if not 0 <= x < self.space_size:
            raise ValueError(
                f"value {x} outside permutation space [0, {self.space_size})"
            )


class PermutationFamily(ABC):
    """A distribution over permutations that min-hash functions draw from."""

    #: Canonical family name, used by configs and reports.
    name: str = "abstract"

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> Permutation:
        """Draw one permutation from the family."""

    def sample_minhash(self, rng: np.random.Generator) -> "MinHash":
        """Draw a permutation and wrap it as a :class:`MinHash`."""
        return MinHash(self.sample(rng))

    def sample_many(self, count: int, rng: np.random.Generator) -> list["MinHash"]:
        """Draw ``count`` independent min-hash functions."""
        if count <= 0:
            raise ValueError("count must be positive")
        return [self.sample_minhash(rng) for _ in range(count)]


class MinHash:
    """``h(Q) = min(pi(Q))`` for one sampled permutation ``pi``.

    The property this buys (Section 3.3): for a truly min-wise independent
    family, ``Pr[h(Q) = h(R)]`` equals the Jaccard similarity of ``Q`` and
    ``R``.
    """

    def __init__(self, permutation: Permutation) -> None:
        self.permutation = permutation

    def hash_values(self, values: "list[int] | np.ndarray") -> int:
        """Min-hash of an arbitrary value set (vectorized)."""
        arr = np.asarray(values, dtype=np.uint64)
        if arr.size == 0:
            raise InvalidRangeError("cannot min-hash an empty value set")
        return int(self.permutation.apply_array(arr).min())

    def hash_range(self, r: IntRange) -> int:
        """Min-hash of the value set ``{r.start, ..., r.end}``."""
        return self.hash_values(r.to_array())

    def hash_range_slow(self, r: IntRange) -> int:
        """Element-at-a-time min-hash, used by the Figure 5 cost experiment.

        This path preserves the *relative* computational cost of the three
        families (the quantity Figure 5 measures) because it performs the
        per-element permutation work the paper describes, with no
        vectorization hiding it.
        """
        best: int | None = None
        for value in r.values():
            image = self.permutation.apply(value)
            if best is None or image < best:
                best = image
        assert best is not None  # IntRange is never empty
        return best
