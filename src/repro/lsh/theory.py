"""Analytic collision curves for grouped LSH (paper Sections 4 and 5.1).

For two sets with Jaccard similarity ``p`` and an ideal min-wise family:

- one function collides with probability ``p``;
- a group of ``k`` functions agrees with probability ``p^k``;
- at least one of ``l`` groups agrees with probability ``1 - (1 - p^k)^l``.

The paper picks ``k = 20, l = 5`` because the curve then "reasonably
estimates a step function with a step at 0.9".  :func:`recommend_parameters`
automates that choice.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "collision_probability",
    "group_match_probability",
    "step_quality",
    "threshold_similarity",
    "recommend_parameters",
    "ParameterChoice",
]


def collision_probability(similarity: float, k: int) -> float:
    """``p^k``: probability one group of ``k`` functions agrees."""
    _check_similarity(similarity)
    if k <= 0:
        raise ValueError("k must be positive")
    return similarity**k


def group_match_probability(similarity: float, k: int, l: int) -> float:
    """``1 - (1 - p^k)^l``: probability at least one of ``l`` groups agrees."""
    if l <= 0:
        raise ValueError("l must be positive")
    return 1.0 - (1.0 - collision_probability(similarity, k)) ** l


def threshold_similarity(k: int, l: int) -> float:
    """The similarity at which the match probability crosses 1/2.

    Solves ``1 - (1 - p^k)^l = 1/2`` for ``p``; a standard summary of where
    the (k, l) curve places its "step".
    """
    if k <= 0 or l <= 0:
        raise ValueError("k and l must be positive")
    return (1.0 - 0.5 ** (1.0 / l)) ** (1.0 / k)


def step_quality(k: int, l: int, step_at: float = 0.9, samples: int = 200) -> float:
    """Mean absolute deviation of the (k, l) curve from the ideal step.

    The ideal step function is 0 below ``step_at`` and 1 at or above it.
    Lower is better; the paper's (20, 5) scores well for ``step_at = 0.9``.
    """
    _check_similarity(step_at)
    if samples < 2:
        raise ValueError("need at least two samples")
    total = 0.0
    for i in range(samples):
        p = i / (samples - 1)
        ideal = 1.0 if p >= step_at else 0.0
        total += abs(group_match_probability(p, k, l) - ideal)
    return total / samples


@dataclass(frozen=True)
class ParameterChoice:
    """A (k, l) pair with its step-approximation score."""

    k: int
    l: int
    quality: float
    threshold: float


def recommend_parameters(
    step_at: float = 0.9,
    max_k: int = 40,
    max_l: int = 10,
    max_total_functions: int = 120,
) -> ParameterChoice:
    """Search (k, l) minimizing :func:`step_quality` under a function budget.

    With the paper's budget of ~100 functions and a step at 0.9, the search
    lands on parameters close to the paper's (20, 5).
    """
    best: ParameterChoice | None = None
    for k in range(1, max_k + 1):
        for l in range(1, max_l + 1):
            if k * l > max_total_functions:
                continue
            quality = step_quality(k, l, step_at=step_at)
            if best is None or quality < best.quality:
                best = ParameterChoice(
                    k=k, l=l, quality=quality, threshold=threshold_similarity(k, l)
                )
    assert best is not None  # the (1, 1) pair is always within budget
    return best


def expected_identical_fraction(n_queries: int, n_distinct: int) -> float:
    """Expected fraction of repeated queries in a uniform workload.

    Used to sanity-check the paper's "only 0.2% repetitions" remark about
    its 10,000-range workload: with ``n_distinct`` equally likely ranges the
    expected number of repeats is roughly ``C(n, 2) / n_distinct``.
    """
    if n_queries < 0 or n_distinct <= 0:
        raise ValueError("invalid workload sizes")
    expected_repeats = math.comb(n_queries, 2) / n_distinct
    return min(1.0, expected_repeats / max(1, n_queries))


def _check_similarity(value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"similarity {value} outside [0, 1]")
