"""Approximate min-wise permutations: the first shuffle iteration only.

The paper (Section 5.1): "we also tried another family of approximate
min-wise independent permutations which are just the first iteration of the
min-wise independent permutations.  This approximate family is representable
with a single 32-bit integer key and is computationally less expensive."
"""

from __future__ import annotations

import numpy as np

from repro.errors import HashFamilyError
from repro.lsh.base import Permutation, PermutationFamily
from repro.lsh.bitshuffle import shuffle_once
from repro.util.bitops import is_power_of_two, ones_positions, popcount, random_key_with_ones

__all__ = ["ApproxMinWisePermutation", "ApproxMinWiseFamily"]


class ApproxMinWisePermutation(Permutation):
    """One shuffle iteration of the full network: a single ``width``-bit key
    with ``width/2`` ones, bits moved to upper/lower halves in order."""

    def __init__(self, key: int, width: int = 32) -> None:
        if not is_power_of_two(width) or width < 2:
            raise HashFamilyError("width must be a power of two >= 2")
        if not 0 <= key < (1 << width):
            raise HashFamilyError(f"key does not fit in {width} bits")
        if popcount(key) != width // 2:
            raise HashFamilyError(f"key must have exactly {width // 2} ones")
        self.key = key
        self.width = width
        self.space_size = 1 << width
        # Destination of each input bit under the single iteration.
        half = width // 2
        ones = ones_positions(key, width)
        zeros = [j for j in range(width) if not (key >> j) & 1]
        dest = [0] * width
        for rank, j in enumerate(zeros):
            dest[j] = rank
        for rank, j in enumerate(ones):
            dest[j] = half + rank
        self._dest = dest
        self._byte_tables: list[np.ndarray] | None = None

    def apply(self, x: int) -> int:
        """Single-iteration shuffle of ``x`` (the honest per-element cost)."""
        self.validate_input(x)
        return shuffle_once(x, self.key, self.width, self.width)

    def _build_byte_tables(self) -> list[np.ndarray]:
        n_bytes = (self.width + 7) // 8
        tables: list[np.ndarray] = []
        for byte_index in range(n_bytes):
            table = np.zeros(256, dtype=np.uint64)
            base = byte_index * 8
            for byte_value in range(256):
                scattered = 0
                for bit in range(8):
                    src = base + bit
                    if src < self.width and (byte_value >> bit) & 1:
                        scattered |= 1 << self._dest[src]
                table[byte_value] = scattered
            tables.append(table)
        return tables

    def apply_array(self, xs: np.ndarray) -> np.ndarray:
        arr = np.asarray(xs, dtype=np.uint64)
        if self._byte_tables is None:
            self._byte_tables = self._build_byte_tables()
        out = np.zeros(arr.shape, dtype=np.uint64)
        for byte_index, table in enumerate(self._byte_tables):
            chunk = (arr >> np.uint64(8 * byte_index)) & np.uint64(0xFF)
            out |= table[chunk.astype(np.intp)]
        return out

    def __repr__(self) -> str:
        return (
            f"ApproxMinWisePermutation(key=0x{self.key:0{self.width // 4}x}, "
            f"width={self.width})"
        )


class ApproxMinWiseFamily(PermutationFamily):
    """Family of single-iteration shuffle permutations."""

    name = "approx-min-wise"

    def __init__(self, width: int = 32) -> None:
        if not is_power_of_two(width) or width < 2:
            raise HashFamilyError("width must be a power of two >= 2")
        self.width = width

    def sample(self, rng: np.random.Generator) -> ApproxMinWisePermutation:
        key = random_key_with_ones(self.width, self.width // 2, rng)
        return ApproxMinWisePermutation(key, width=self.width)
