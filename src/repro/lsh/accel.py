"""O(1) identifier computation for contiguous ranges over a fixed domain.

The quality experiments hash tens of thousands of ranges with ~100 min-hash
functions each.  The key observation enabling acceleration: the min-hash of
a *contiguous* range ``[s, e]`` is a range-minimum query over the
precomputed array ``pi(low), pi(low+1), ..., pi(high)`` of permuted domain
values.  A sparse table answers such queries in O(1) per function, and all
functions are queried with one vectorized operation.

:class:`DomainMinHashIndex` produces *bit-identical* identifiers to
:meth:`LSHIdentifierScheme.identifiers`; tests assert the equivalence.
"""

from __future__ import annotations

import numpy as np

from repro.errors import HashFamilyError
from repro.lsh.groups import LSHIdentifierScheme, combine_hashes_xor
from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange

__all__ = ["DomainMinHashIndex"]


class DomainMinHashIndex:
    """Sparse-table range-minimum index over permuted domain values.

    Parameters
    ----------
    scheme:
        The identifier scheme whose hashes this index accelerates.
    domain:
        The attribute domain; every queried range must lie inside it.
    """

    def __init__(self, scheme: LSHIdentifierScheme, domain: Domain) -> None:
        self.scheme = scheme
        self.domain = domain
        functions = scheme.all_functions()
        values = domain.full_range().to_array()
        # permuted[f, i] = pi_f(domain.low + i)
        permuted = np.stack(
            [fn.permutation.apply_array(values) for fn in functions]
        )
        self._levels = self._build_sparse_table(permuted)
        self._mask = (1 << scheme.id_bits) - 1

    @staticmethod
    def _build_sparse_table(values: np.ndarray) -> list[np.ndarray]:
        """levels[j][:, i] = min over values[:, i : i + 2**j]."""
        n = values.shape[1]
        levels = [values]
        j = 1
        while (1 << j) <= n:
            prev = levels[-1]
            half = 1 << (j - 1)
            levels.append(np.minimum(prev[:, : n - (1 << j) + 1], prev[:, half : n - (1 << j) + 1 + half]))
            j += 1
        return levels

    def _range_min(self, start_offset: int, end_offset: int) -> np.ndarray:
        """Min over columns [start_offset, end_offset] for every function."""
        length = end_offset - start_offset + 1
        j = length.bit_length() - 1  # floor(log2(length))
        level = self._levels[j]
        left = level[:, start_offset]
        right = level[:, end_offset - (1 << j) + 1]
        return np.minimum(left, right)

    def minhashes(self, r: IntRange) -> np.ndarray:
        """All ``l*k`` min-hash values of ``r``, group-major, as uint64."""
        self.domain.validate_range(r)
        lo = r.start - self.domain.low
        hi = r.end - self.domain.low
        return self._range_min(lo, hi)

    def identifiers(self, r: IntRange) -> list[int]:
        """The ``l`` identifiers of ``r``; equal to the scheme's own."""
        combined = combine_hashes_xor(
            self.minhashes(r), self.scheme.l, self.scheme.k, self._mask
        )
        return [int(x) for x in combined]

    def memory_bytes(self) -> int:
        """Approximate memory held by the sparse table."""
        return sum(level.nbytes for level in self._levels)

    @classmethod
    def validate_against_scheme(
        cls,
        index: "DomainMinHashIndex",
        probes: list[IntRange],
    ) -> None:
        """Raise if the index disagrees with the naive scheme on any probe."""
        for r in probes:
            fast = index.identifiers(r)
            slow = index.scheme.identifiers(r)
            if fast != slow:
                raise HashFamilyError(
                    f"accelerated identifiers diverge on {r}: {fast} != {slow}"
                )
