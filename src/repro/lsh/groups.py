"""Grouped LSH identifiers: ``l`` groups of ``k`` min-hash functions.

Section 4 of the paper: a group ``g = {h1, ..., hk}`` agrees on two sets
with probability ``p^k``; with ``l`` groups the probability that *some*
group agrees is ``1 - (1 - p^k)^l``.  The querying-peer pseudocode combines
a group's ``k`` hash values into one identifier with XOR
(``identifier[l] ^= h[i](Q)``); we reproduce that combination exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import HashFamilyError
from repro.lsh.base import MinHash, PermutationFamily
from repro.lsh.theory import group_match_probability
from repro.ranges.interval import IntRange
from repro.util.rng import derive_rng

__all__ = ["HashGroup", "LSHIdentifierScheme", "DEFAULT_K", "DEFAULT_L"]

#: The paper's parameter choice: "we chose the values for parameters k and l
#: to be 20 and 5 respectively, because these values make the function
#: 1 - (1 - p^k)^l reasonably estimate a step function with a step at 0.9."
DEFAULT_K = 20
DEFAULT_L = 5


@dataclass
class HashGroup:
    """One group of ``k`` min-hash functions, XOR-combined to an identifier."""

    functions: list[MinHash]
    id_mask: int

    def identifier(self, r: IntRange) -> int:
        """XOR of the group's ``k`` min-hashes of ``r`` (vectorized path)."""
        ident = 0
        for fn in self.functions:
            ident ^= fn.hash_range(r)
        return ident & self.id_mask

    def identifier_slow(self, r: IntRange) -> int:
        """Same identifier via the element-at-a-time path (Figure 5 costs)."""
        ident = 0
        for fn in self.functions:
            ident ^= fn.hash_range_slow(r)
        return ident & self.id_mask

    @property
    def k(self) -> int:
        """Number of hash functions in the group."""
        return len(self.functions)


class LSHIdentifierScheme:
    """Maps a selection range to ``l`` identifiers in the 32-bit space.

    This object is the system's hashing front end: the same instance must be
    shared by every peer (all peers agree on the global hash functions, just
    as they agree on the global schema).
    """

    def __init__(self, groups: list[HashGroup], id_bits: int = 32) -> None:
        if not groups:
            raise HashFamilyError("need at least one hash group")
        ks = {g.k for g in groups}
        if len(ks) != 1:
            raise HashFamilyError(f"all groups must share one k, got sizes {ks}")
        if not 1 <= id_bits <= 64:
            raise HashFamilyError("id_bits must be within [1, 64]")
        self.groups = groups
        self.id_bits = id_bits

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_family(
        cls,
        family: PermutationFamily,
        l: int = DEFAULT_L,
        k: int = DEFAULT_K,
        seed: int = 0,
        id_bits: int = 32,
    ) -> "LSHIdentifierScheme":
        """Sample ``l`` groups of ``k`` functions from ``family``.

        Sampling is deterministic in ``seed`` (stream name
        ``lsh/<family>``), so two peers constructing the scheme with the
        same arguments agree on every identifier.
        """
        if l <= 0 or k <= 0:
            raise HashFamilyError("l and k must be positive")
        rng = derive_rng(seed, f"lsh/{family.name}")
        mask = (1 << id_bits) - 1
        groups = [
            HashGroup(functions=family.sample_many(k, rng), id_mask=mask)
            for _ in range(l)
        ]
        return cls(groups, id_bits=id_bits)

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------

    @property
    def l(self) -> int:
        """Number of groups (identifiers produced per range)."""
        return len(self.groups)

    @property
    def k(self) -> int:
        """Hash functions per group."""
        return self.groups[0].k

    def identifiers(self, r: IntRange) -> list[int]:
        """The ``l`` identifiers of range ``r`` (vectorized hashing)."""
        return [g.identifier(r) for g in self.groups]

    def identifiers_slow(self, r: IntRange) -> list[int]:
        """The same identifiers via the element-at-a-time cost model."""
        return [g.identifier_slow(r) for g in self.groups]

    def all_functions(self) -> list[MinHash]:
        """Every min-hash function, group-major (group 0 first)."""
        return [fn for g in self.groups for fn in g.functions]

    # ------------------------------------------------------------------
    # Theory
    # ------------------------------------------------------------------

    def match_probability(self, similarity: float) -> float:
        """``1 - (1 - s^k)^l``: chance at least one group identifier agrees
        for two ranges of Jaccard similarity ``s`` (idealized family)."""
        return group_match_probability(similarity, self.k, self.l)

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"LSH scheme: l={self.l} groups x k={self.k} fns, {self.id_bits}-bit ids"


def combine_hashes_xor(hash_values: np.ndarray, l: int, k: int, mask: int) -> np.ndarray:
    """XOR-reduce a group-major vector of ``l*k`` hash values to ``l`` ids.

    Shared by the accelerated evaluator; kept here so the combination rule
    lives in exactly one place.
    """
    arr = np.asarray(hash_values, dtype=np.uint64).reshape(l, k)
    combined = np.bitwise_xor.reduce(arr, axis=1)
    return combined & np.uint64(mask)
