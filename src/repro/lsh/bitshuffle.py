"""The recursive bit-shuffle permutation network of the paper's Figure 3.

The paper builds a (min-wise independent style) permutation of the ``w``-bit
integer space as a cascade of shuffle iterations:

1. draw a ``w``-bit key with exactly ``w/2`` random bits set; move the bits
   of the input word whose positions carry a key 1 to the upper half (in
   order) and the rest to the lower half (in order);
2. draw a ``w/2``-bit key with ``w/4`` ones and shuffle each half the same
   way; and so on, until every 2-bit block has been permuted.

Each iteration is a permutation of *bit positions*, so the whole cascade is
a bijection of ``[0, 2^w)``.  The keys for a 32-bit space total
``32 + 16 + 8 + 4 + 2 = 62`` bits ("representable as two [32-bit] integers"
in the paper's 8-bit example scaled up).
"""

from __future__ import annotations

import numpy as np

from repro.errors import HashFamilyError
from repro.lsh.base import Permutation, PermutationFamily
from repro.util.bitops import is_power_of_two, ones_positions, popcount, random_key_with_ones

__all__ = ["BitShufflePermutation", "MinWiseFamily", "shuffle_once", "bit_position_map"]


def shuffle_once(x: int, key: int, block_size: int, width: int) -> int:
    """One shuffle iteration applied to every ``block_size`` block of ``x``.

    Within each block, bits at positions where ``key`` has a 1 move to the
    upper half of the block in order; the others move to the lower half in
    order.  This is the literal operation of Figure 3.
    """
    half = block_size // 2
    ones = ones_positions(key, block_size)
    zeros = [j for j in range(block_size) if not (key >> j) & 1]
    out = 0
    for base in range(0, width, block_size):
        block = (x >> base) & ((1 << block_size) - 1)
        permuted = 0
        for rank, j in enumerate(zeros):
            permuted |= ((block >> j) & 1) << rank
        for rank, j in enumerate(ones):
            permuted |= ((block >> j) & 1) << (half + rank)
        out |= permuted << base
    return out


def bit_position_map(width: int, keys: list[int]) -> list[int]:
    """Destination slot of every input bit after the full key cascade.

    ``keys[i]`` is the key for iteration ``i`` (block size ``width >> i``).
    Returns ``dest`` with ``dest[src] = final position of input bit src``.
    """
    # current[slot] = which input bit currently occupies that slot.
    current = list(range(width))
    block_size = width
    for key in keys:
        half = block_size // 2
        ones = ones_positions(key, block_size)
        zeros = [j for j in range(block_size) if not (key >> j) & 1]
        moved = [0] * width
        for base in range(0, width, block_size):
            for rank, j in enumerate(zeros):
                moved[base + rank] = current[base + j]
            for rank, j in enumerate(ones):
                moved[base + half + rank] = current[base + j]
        current = moved
        block_size = half
    dest = [0] * width
    for slot, src in enumerate(current):
        dest[src] = slot
    return dest


class BitShufflePermutation(Permutation):
    """A fully-cascaded bit-shuffle permutation of the ``width``-bit space.

    ``keys`` must contain one key per iteration with block sizes
    ``width, width/2, ..., 2`` and exactly half the block's bits set in each
    key.  The scalar :meth:`apply` performs the honest iteration-by-
    iteration shuffle (preserving the paper's computational cost for the
    Figure 5 experiment); :meth:`apply_array` uses precomputed byte lookup
    tables for the large-scale quality experiments.
    """

    def __init__(self, keys: list[int], width: int = 32) -> None:
        if not is_power_of_two(width) or width < 2:
            raise HashFamilyError("width must be a power of two >= 2")
        expected_levels = width.bit_length() - 1  # log2(width)
        if len(keys) != expected_levels:
            raise HashFamilyError(
                f"width {width} needs {expected_levels} keys, got {len(keys)}"
            )
        block_size = width
        for level, key in enumerate(keys):
            if not 0 <= key < (1 << block_size):
                raise HashFamilyError(
                    f"key {level} does not fit in {block_size} bits"
                )
            if popcount(key) != block_size // 2:
                raise HashFamilyError(
                    f"key {level} must have exactly {block_size // 2} ones"
                )
            block_size //= 2
        self.width = width
        self.keys = list(keys)
        self.space_size = 1 << width
        self._dest = bit_position_map(width, self.keys)
        self._byte_tables: list[np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Scalar (reference / cost-model) path
    # ------------------------------------------------------------------

    def apply(self, x: int) -> int:
        """Shuffle ``x`` one iteration at a time, as Figure 3 describes."""
        self.validate_input(x)
        block_size = self.width
        for key in self.keys:
            x = shuffle_once(x, key, block_size, self.width)
            block_size //= 2
        return x

    def apply_via_map(self, x: int) -> int:
        """Shuffle ``x`` using the precomputed bit-position map.

        Must agree with :meth:`apply`; tests assert the equivalence.
        """
        self.validate_input(x)
        out = 0
        for src, dst in enumerate(self._dest):
            out |= ((x >> src) & 1) << dst
        return out

    # ------------------------------------------------------------------
    # Vectorized path
    # ------------------------------------------------------------------

    def _build_byte_tables(self) -> list[np.ndarray]:
        """Per-byte scatter tables: image = OR of one lookup per input byte."""
        n_bytes = (self.width + 7) // 8
        tables: list[np.ndarray] = []
        for byte_index in range(n_bytes):
            table = np.zeros(256, dtype=np.uint64)
            base = byte_index * 8
            for byte_value in range(256):
                scattered = 0
                for bit in range(8):
                    src = base + bit
                    if src < self.width and (byte_value >> bit) & 1:
                        scattered |= 1 << self._dest[src]
                table[byte_value] = scattered
            tables.append(table)
        return tables

    def apply_array(self, xs: np.ndarray) -> np.ndarray:
        arr = np.asarray(xs, dtype=np.uint64)
        if self._byte_tables is None:
            self._byte_tables = self._build_byte_tables()
        out = np.zeros(arr.shape, dtype=np.uint64)
        for byte_index, table in enumerate(self._byte_tables):
            chunk = (arr >> np.uint64(8 * byte_index)) & np.uint64(0xFF)
            out |= table[chunk.astype(np.intp)]
        return out

    def __repr__(self) -> str:
        return f"BitShufflePermutation(width={self.width}, keys={self.keys!r})"


class MinWiseFamily(PermutationFamily):
    """The full min-wise independent permutation family (all iterations)."""

    name = "min-wise"

    def __init__(self, width: int = 32) -> None:
        if not is_power_of_two(width) or width < 2:
            raise HashFamilyError("width must be a power of two >= 2")
        self.width = width

    def sample(self, rng: np.random.Generator) -> BitShufflePermutation:
        keys: list[int] = []
        block_size = self.width
        while block_size >= 2:
            keys.append(random_key_with_ones(block_size, block_size // 2, rng))
            block_size //= 2
        return BitShufflePermutation(keys, width=self.width)
