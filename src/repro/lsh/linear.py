"""Linear permutations ``pi(x) = (a*x + b) mod p`` (Broder et al. 1998).

The paper explores these because the full min-wise permutations "can be
computationally expensive"; a linear permutation costs one multiply-add-mod
per element.  With ``p`` prime and ``a != 0`` the map is a bijection of
``Z_p``.  The default modulus is the Mersenne prime ``2^31 - 1``, keeping
identifiers inside the 32-bit space the system uses.
"""

from __future__ import annotations

import numpy as np

from repro.errors import HashFamilyError

from repro.lsh.base import Permutation, PermutationFamily

__all__ = [
    "LinearPermutation",
    "LinearFamily",
    "MERSENNE_31",
    "is_probable_prime",
    "next_prime_above",
]

MERSENNE_31 = (1 << 31) - 1


def next_prime_above(n: int) -> int:
    """The smallest prime strictly greater than ``n``.

    Min-wise theory (Broder et al.) draws linear permutations over ``Z_p``
    with ``p`` *just above* the universe size — for the paper's [0, 1000]
    domain that is 1009, not a 31-bit prime.  The small modulus matters
    behaviourally: hash values live in a small space, so dissimilar ranges
    collide liberally and buckets fill with loosely matching partitions —
    exactly the "not too strict" linear behaviour Section 5.2 describes.
    """
    candidate = max(2, n + 1)
    while not is_probable_prime(candidate):
        candidate += 1
    return candidate


def is_probable_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for 64-bit inputs (enough witnesses)."""
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in small_primes:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


class LinearPermutation(Permutation):
    """``pi(x) = (a*x + b) mod p`` with ``p`` prime and ``1 <= a < p``."""

    def __init__(self, a: int, b: int, p: int = MERSENNE_31) -> None:
        if not is_probable_prime(p):
            raise HashFamilyError(f"modulus {p} is not prime")
        if not 1 <= a < p:
            raise HashFamilyError("coefficient a must satisfy 1 <= a < p")
        if not 0 <= b < p:
            raise HashFamilyError("offset b must satisfy 0 <= b < p")
        self.a = a
        self.b = b
        self.p = p
        self.space_size = p

    def apply(self, x: int) -> int:
        self.validate_input(x)
        return (self.a * x + self.b) % self.p

    def apply_array(self, xs: np.ndarray) -> np.ndarray:
        # Work in Python-int-free uint64 space: a*x can exceed 64 bits when
        # a and x are both ~2^31, so split the multiply via object dtype only
        # when necessary.  Here a < 2^31 and x < 2^31 so a*x < 2^62: safe.
        arr = np.asarray(xs, dtype=np.uint64)
        return (np.uint64(self.a) * arr + np.uint64(self.b)) % np.uint64(self.p)

    def inverse(self, y: int) -> int:
        """The preimage of ``y`` (useful in tests of bijectivity)."""
        a_inv = pow(self.a, -1, self.p)
        return (y - self.b) * a_inv % self.p

    def __repr__(self) -> str:
        return f"LinearPermutation(a={self.a}, b={self.b}, p={self.p})"


class LinearFamily(PermutationFamily):
    """Uniform distribution over ``(a, b)`` with ``a != 0``."""

    name = "linear"

    def __init__(self, p: int = MERSENNE_31) -> None:
        if not is_probable_prime(p):
            raise HashFamilyError(f"modulus {p} is not prime")
        self.p = p

    def sample(self, rng: np.random.Generator) -> LinearPermutation:
        a = int(rng.integers(1, self.p))
        b = int(rng.integers(0, self.p))
        return LinearPermutation(a, b, self.p)
