"""Plain-text rendering of experiment outputs.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that rendering consistent (fixed-width tables and
simple horizontal-bar histograms that read well in a terminal or a log).
"""

from __future__ import annotations

from typing import Sequence

from repro.util.stats import Histogram

__all__ = [
    "format_table",
    "format_series",
    "format_histogram",
    "format_recall_cdf",
    "sparkline",
]

#: Eight block heights; a sparkline maps each value onto one of them.
SPARK_CHARS = "▁▂▃▄▅▆▇█"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """A fixed-width text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_label: str,
    points: Sequence[tuple[float, float]],
    title: str = "",
) -> str:
    """An (x, y) series as a two-column table."""
    return format_table(
        [x_label, y_label],
        [(x, y) for x, y in points],
        title=title,
    )


def format_histogram(histogram: Histogram, title: str = "") -> str:
    """A similarity histogram with proportional bars (Figures 6-7 style)."""
    lines: list[str] = []
    if title:
        lines.append(title)
    percentages = histogram.percentages()
    scale = max(max(percentages, default=0.0), histogram.miss_percentage(), 1.0)
    if histogram.misses:
        bar = "#" * int(round(40 * histogram.miss_percentage() / scale))
        lines.append(f"  no match   {histogram.miss_percentage():6.2f}%  {bar}")
    for (low, high), pct in zip(histogram.bin_edges(), percentages):
        bar = "#" * int(round(40 * pct / scale))
        lines.append(f"  [{low:.1f},{high:.1f})  {pct:6.2f}%  {bar}")
    return "\n".join(lines)


def format_recall_cdf(
    series: dict[str, Sequence[tuple[float, float]]], title: str = ""
) -> str:
    """Several recall CDFs side by side (Figures 8-10 style)."""
    names = list(series)
    if not names:
        raise ValueError("need at least one series")
    grid = [x for x, _ in series[names[0]]]
    for name in names[1:]:
        if [x for x, _ in series[name]] != grid:
            raise ValueError("all series must share one recall grid")
    headers = ["recall >="] + names
    rows = []
    for i, x in enumerate(grid):
        rows.append([f"{x:.2f}"] + [f"{series[name][i][1]:.1f}%" for name in names])
    return format_table(headers, rows, title=title)


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """A one-line block-character rendering of a numeric series.

    Values are min-max scaled onto eight block heights; series longer than
    ``width`` are downsampled by taking the last value of each stride (the
    sampler's series are level-like, so the latest reading represents the
    stride best).  An empty series renders as an empty string.
    """
    vals = [float(v) for v in values]
    if not vals:
        return ""
    if len(vals) > width:
        stride = len(vals) / width
        vals = [vals[min(len(vals) - 1, int((i + 1) * stride) - 1)] for i in range(width)]
    low, high = min(vals), max(vals)
    span = high - low
    if span == 0:
        return SPARK_CHARS[0] * len(vals)
    top = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[min(top, int((v - low) / span * len(SPARK_CHARS)))] for v in vals
    )


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
