"""Recall aggregation: the quantities behind Figures 8-10."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.stats import cdf_points

__all__ = [
    "RECALL_GRID",
    "recall_cdf",
    "fraction_fully_answered",
    "fraction_at_least",
    "recall_comparison",
]

#: The x-axis grid of the paper's recall plots, 1.0 down to 0.0.
RECALL_GRID: tuple[float, ...] = tuple(round(1.0 - 0.05 * i, 2) for i in range(21))


def recall_cdf(
    recalls: Sequence[float], grid: Sequence[float] = RECALL_GRID
) -> list[tuple[float, float]]:
    """Points ``(x, % of queries with recall >= x)`` on the paper's grid."""
    return cdf_points(recalls, grid)


def fraction_fully_answered(recalls: Sequence[float]) -> float:
    """Percentage of queries answered completely (recall == 1.0)."""
    arr = np.asarray(list(recalls), dtype=float)
    if arr.size == 0:
        return 0.0
    return float(100.0 * np.mean(arr >= 1.0))


def fraction_at_least(recalls: Sequence[float], threshold: float) -> float:
    """Percentage of queries with recall >= threshold."""
    arr = np.asarray(list(recalls), dtype=float)
    if arr.size == 0:
        return 0.0
    return float(100.0 * np.mean(arr >= threshold))


def recall_comparison(
    baseline: Sequence[float], variant: Sequence[float]
) -> dict[str, float]:
    """Paired per-query comparison of two schemes over one trace.

    The paper reports paired effects ("for approximately 78% of the queries
    [padding] benefit[s] ... for the rest ... lesser recall"); this computes
    the improved / worsened / unchanged percentages plus mean deltas.
    """
    a = np.asarray(list(baseline), dtype=float)
    b = np.asarray(list(variant), dtype=float)
    if a.shape != b.shape:
        raise ValueError("paired comparison needs equal-length recall vectors")
    if a.size == 0:
        raise ValueError("paired comparison needs at least one query")
    delta = b - a
    return {
        "improved_pct": float(100.0 * np.mean(delta > 0)),
        "worsened_pct": float(100.0 * np.mean(delta < 0)),
        "unchanged_pct": float(100.0 * np.mean(delta == 0)),
        "mean_delta": float(delta.mean()),
        "baseline_full_pct": fraction_fully_answered(a),
        "variant_full_pct": fraction_fully_answered(b),
    }
