"""Per-query result logging and aggregation."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.system import RangeQueryResult
from repro.errors import ConfigError
from repro.ranges.interval import IntRange
from repro.util.stats import Histogram

__all__ = ["QueryRecord", "QueryLog"]


@dataclass(frozen=True)
class QueryRecord:
    """The subset of a query result the experiments aggregate."""

    query: IntRange
    similarity: float
    recall: float
    found: bool
    exact: bool
    hops: int

    @classmethod
    def from_result(cls, result: RangeQueryResult) -> "QueryRecord":
        """Project a system result down to its measured quantities."""
        return cls(
            query=result.query,
            similarity=result.similarity,
            recall=result.recall,
            found=result.found,
            exact=result.exact,
            hops=result.overlay_hops,
        )


@dataclass
class QueryLog:
    """An append-only log of query records with the paper's aggregations."""

    records: list[QueryRecord] = field(default_factory=list)

    def add(self, result: RangeQueryResult) -> None:
        """Record one system query result."""
        self.records.append(QueryRecord.from_result(result))

    def __len__(self) -> int:
        return len(self.records)

    def measured(self, warmup_fraction: float = 0.2) -> list[QueryRecord]:
        """Records after dropping the warmup prefix (paper: first 20%)."""
        if not 0.0 <= warmup_fraction < 1.0:
            raise ConfigError("warmup fraction must be within [0, 1)")
        cut = int(len(self.records) * warmup_fraction)
        return self.records[cut:]

    def similarity_histogram(
        self, warmup_fraction: float = 0.2, n_bins: int = 10
    ) -> Histogram:
        """The Figures 6-7 quantity: distribution of best-match Jaccard
        similarity over measured queries; queries with no match at all are
        recorded as misses."""
        histogram = Histogram(n_bins=n_bins)
        for record in self.measured(warmup_fraction):
            if record.found:
                histogram.add(record.similarity)
            else:
                histogram.add_miss()
        return histogram

    def recall_values(self, warmup_fraction: float = 0.2) -> list[float]:
        """Recall per measured query (0.0 when nothing matched)."""
        return [r.recall for r in self.measured(warmup_fraction)]

    def hop_values(self, warmup_fraction: float = 0.0) -> list[int]:
        """Overlay hops per measured query."""
        return [r.hops for r in self.measured(warmup_fraction)]

    def exact_fraction(self, warmup_fraction: float = 0.2) -> float:
        """Fraction of measured queries answered by an identical partition."""
        measured = self.measured(warmup_fraction)
        if not measured:
            return 0.0
        return sum(1 for r in measured if r.exact) / len(measured)
