"""Experiment metrics: per-query logs and the paper's summary statistics."""

from repro.metrics.collector import QueryLog, QueryRecord
from repro.metrics.latency import (
    LatencyCollector,
    LatencyHistogram,
    PhasePercentiles,
    phase_percentiles,
)
from repro.metrics.recall import (
    recall_cdf,
    recall_comparison,
    fraction_fully_answered,
    fraction_at_least,
)
from repro.metrics.report import (
    format_histogram,
    format_recall_cdf,
    format_series,
    format_table,
)

__all__ = [
    "QueryLog",
    "QueryRecord",
    "LatencyCollector",
    "LatencyHistogram",
    "PhasePercentiles",
    "phase_percentiles",
    "recall_cdf",
    "recall_comparison",
    "fraction_fully_answered",
    "fraction_at_least",
    "format_table",
    "format_series",
    "format_histogram",
    "format_recall_cdf",
]
