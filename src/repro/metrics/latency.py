"""Latency aggregation for event-driven experiments.

The paper's evaluation never reports time-to-answer (its simulator, like
our synchronous transport, had no clock).  The event-driven engine does,
so this module adds the summaries a latency evaluation needs: per-phase
percentile tables (p50/p95/p99 — tail percentiles, unlike the p01/p99
band :mod:`repro.util.stats` computes for the paper's figures) and a
log-spaced histogram for eyeballing a distribution's shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.metrics.report import format_table
from repro.obs.registry import (
    MetricsRegistry,
    RegistryBackedCounters,
    registry_field,
)
from repro.sim.query import TimedQueryResult

__all__ = [
    "PhasePercentiles",
    "phase_percentiles",
    "LatencyHistogram",
    "LatencyCollector",
    "QUERY_PHASES",
]

#: The phases of one query, in execution order.
QUERY_PHASES = ("route", "match", "fetch", "store", "total")


@dataclass(frozen=True)
class PhasePercentiles:
    """Tail summary of one phase's latency samples (milliseconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def as_row(self) -> list[str]:
        return [
            str(self.count),
            f"{self.mean:.1f}",
            f"{self.p50:.1f}",
            f"{self.p95:.1f}",
            f"{self.p99:.1f}",
            f"{self.maximum:.1f}",
        ]


def phase_percentiles(values: Iterable[float]) -> PhasePercentiles:
    """Compute :class:`PhasePercentiles` over ``values``.

    An empty sample yields the all-zero ``count=0`` summary rather than
    raising: a run where every query times out (high crash rates in the
    churn experiments) must still render its report, with empty phases
    shown as zero-count rows.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return PhasePercentiles(
            count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, maximum=0.0
        )
    return PhasePercentiles(
        count=int(arr.size),
        mean=float(arr.mean()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
        maximum=float(arr.max()),
    )


@dataclass
class LatencyHistogram:
    """Counts over log-spaced latency buckets (..1, 1-2, 2-5, 5-10 ms, ...).

    The 1-2-5 decade ladder keeps the bucket count small across the six
    orders of magnitude a timeout-laden distribution spans.
    """

    edges_ms: tuple[float, ...] = field(
        default_factory=lambda: tuple(
            base * 10**exp for exp in range(5) for base in (1.0, 2.0, 5.0)
        )
    )
    counts: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if list(self.edges_ms) != sorted(self.edges_ms):
            raise ValueError("histogram edges must be ascending")
        if not self.counts:
            self.counts = [0] * (len(self.edges_ms) + 1)

    def add(self, value_ms: float) -> None:
        """Record one latency sample."""
        if value_ms < 0:
            raise ValueError("latency cannot be negative")
        self.counts[int(np.searchsorted(self.edges_ms, value_ms, side="left"))] += 1

    @property
    def total(self) -> int:
        return sum(self.counts)

    def nonzero_buckets(self) -> list[tuple[str, int]]:
        """(label, count) for every populated bucket, ascending."""
        out: list[tuple[str, int]] = []
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            if index == 0:
                label = f"<{self.edges_ms[0]:g}"
            elif index == len(self.edges_ms):
                label = f">={self.edges_ms[-1]:g}"
            else:
                label = f"{self.edges_ms[index - 1]:g}-{self.edges_ms[index]:g}"
            out.append((label, count))
        return out


class LatencyCollector(RegistryBackedCounters):
    """Accumulates :class:`TimedQueryResult`\\ s into per-phase summaries.

    Per-phase samples are retained for exact percentile computation, and
    everything is simultaneously published to a
    :class:`~repro.obs.MetricsRegistry` — the scalar tallies as
    ``latency.<field>`` counters (served from the registry, same facade
    as ``TrafficStats``) and the phase samples as the labeled
    ``latency.phase_ms`` histogram.  Pass ``registry=system.metrics`` to
    unify with the system's counters; a standalone collector binds a
    private registry.
    """

    SCALAR_FIELDS = (
        "queries",
        "chain_timeouts",
        "failovers",
        "degraded_queries",
        "partial_queries",
        "misses",
    )

    queries = registry_field("queries")
    #: Individual lookup chains that timed out.
    chain_timeouts = registry_field("chain_timeouts")
    #: Individual lookup chains answered by a successor-list replica after
    #: the identifier's owner was unreachable.
    failovers = registry_field("failovers")
    #: Queries answered from fewer than ``l`` replies.
    degraded_queries = registry_field("degraded_queries")
    #: Queries a partial quorum answered early (a subset of degraded).
    partial_queries = registry_field("partial_queries")
    #: Queries that located no partition at all.
    misses = registry_field("misses")

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self._bind(registry, "latency")
        self.phases: dict[str, list[float]] = {phase: [] for phase in QUERY_PHASES}
        self.histogram = LatencyHistogram()
        self.recalls: list[float] = []
        self._phase_hist = self.registry.histogram(
            "latency.phase_ms", help="per-phase query latency samples"
        )

    def add(self, result: TimedQueryResult) -> None:
        """Record one event-driven query result."""
        for phase, value in (
            ("route", result.route_ms),
            ("match", result.match_ms),
            ("fetch", result.fetch_ms),
            ("store", result.store_ms),
            ("total", result.total_ms),
        ):
            self.phases[phase].append(value)
            self._phase_hist.observe(value, phase=phase)
        self.histogram.add(result.total_ms)
        self.queries += 1
        self.chain_timeouts += result.timeouts
        self.failovers += result.failovers
        if result.degraded:
            self.degraded_queries += 1
        if result.partial:
            self.partial_queries += 1
        if not result.found:
            self.misses += 1
        self.recalls.append(result.recall)

    def phase_summary(self) -> dict[str, PhasePercentiles]:
        """Per-phase percentiles over all recorded queries.

        Every phase is present; one with no samples yet summarizes as a
        ``count=0`` row (see :func:`phase_percentiles`).
        """
        return {
            phase: phase_percentiles(values)
            for phase, values in self.phases.items()
        }

    def mean_recall(self) -> float:
        """Mean recall across recorded queries (0.0 when none recorded)."""
        return float(np.mean(self.recalls)) if self.recalls else 0.0

    def report(self, title: str = "Query latency by phase") -> str:
        """Human-readable phase table plus the fault tallies."""
        summary = self.phase_summary()
        rows: list[Sequence[object]] = [
            [phase, *summary[phase].as_row()] for phase in QUERY_PHASES if phase in summary
        ]
        table = format_table(
            ["phase", "n", "mean ms", "p50 ms", "p95 ms", "p99 ms", "max ms"],
            rows,
            title=title,
        )
        # The partial tally only appears when quorum completion fired, so
        # reports from runs without the feature stay byte-identical.
        partial = (
            f"partial={self.partial_queries}  " if self.partial_queries else ""
        )
        tail = (
            f"queries={self.queries}  chain timeouts={self.chain_timeouts}  "
            f"failovers={self.failovers}  degraded={self.degraded_queries}  "
            f"{partial}misses={self.misses}  mean recall={self.mean_recall():.3f}"
        )
        return f"{table}\n{tail}"
