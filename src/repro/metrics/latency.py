"""Latency aggregation for event-driven experiments.

The paper's evaluation never reports time-to-answer (its simulator, like
our synchronous transport, had no clock).  The event-driven engine does,
so this module adds the summaries a latency evaluation needs: per-phase
percentile tables (p50/p95/p99 — tail percentiles, unlike the p01/p99
band :mod:`repro.util.stats` computes for the paper's figures) and a
log-spaced histogram for eyeballing a distribution's shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.metrics.report import format_table
from repro.sim.query import TimedQueryResult

__all__ = [
    "PhasePercentiles",
    "phase_percentiles",
    "LatencyHistogram",
    "LatencyCollector",
    "QUERY_PHASES",
]

#: The phases of one query, in execution order.
QUERY_PHASES = ("route", "match", "fetch", "store", "total")


@dataclass(frozen=True)
class PhasePercentiles:
    """Tail summary of one phase's latency samples (milliseconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def as_row(self) -> list[str]:
        return [
            str(self.count),
            f"{self.mean:.1f}",
            f"{self.p50:.1f}",
            f"{self.p95:.1f}",
            f"{self.p99:.1f}",
            f"{self.maximum:.1f}",
        ]


def phase_percentiles(values: Iterable[float]) -> PhasePercentiles:
    """Compute :class:`PhasePercentiles` over ``values`` (must be nonempty)."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sequence")
    return PhasePercentiles(
        count=int(arr.size),
        mean=float(arr.mean()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
        maximum=float(arr.max()),
    )


@dataclass
class LatencyHistogram:
    """Counts over log-spaced latency buckets (..1, 1-2, 2-5, 5-10 ms, ...).

    The 1-2-5 decade ladder keeps the bucket count small across the six
    orders of magnitude a timeout-laden distribution spans.
    """

    edges_ms: tuple[float, ...] = field(
        default_factory=lambda: tuple(
            base * 10**exp for exp in range(5) for base in (1.0, 2.0, 5.0)
        )
    )
    counts: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if list(self.edges_ms) != sorted(self.edges_ms):
            raise ValueError("histogram edges must be ascending")
        if not self.counts:
            self.counts = [0] * (len(self.edges_ms) + 1)

    def add(self, value_ms: float) -> None:
        """Record one latency sample."""
        if value_ms < 0:
            raise ValueError("latency cannot be negative")
        self.counts[int(np.searchsorted(self.edges_ms, value_ms, side="left"))] += 1

    @property
    def total(self) -> int:
        return sum(self.counts)

    def nonzero_buckets(self) -> list[tuple[str, int]]:
        """(label, count) for every populated bucket, ascending."""
        out: list[tuple[str, int]] = []
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            if index == 0:
                label = f"<{self.edges_ms[0]:g}"
            elif index == len(self.edges_ms):
                label = f">={self.edges_ms[-1]:g}"
            else:
                label = f"{self.edges_ms[index - 1]:g}-{self.edges_ms[index]:g}"
            out.append((label, count))
        return out


@dataclass
class LatencyCollector:
    """Accumulates :class:`TimedQueryResult`\\ s into per-phase summaries."""

    phases: dict[str, list[float]] = field(
        default_factory=lambda: {phase: [] for phase in QUERY_PHASES}
    )
    histogram: LatencyHistogram = field(default_factory=LatencyHistogram)
    queries: int = 0
    #: Individual lookup chains that timed out.
    chain_timeouts: int = 0
    #: Individual lookup chains answered by a successor-list replica after
    #: the identifier's owner was unreachable.
    failovers: int = 0
    #: Queries answered from fewer than ``l`` replies.
    degraded_queries: int = 0
    #: Queries that located no partition at all.
    misses: int = 0
    recalls: list[float] = field(default_factory=list)

    def add(self, result: TimedQueryResult) -> None:
        """Record one event-driven query result."""
        self.phases["route"].append(result.route_ms)
        self.phases["match"].append(result.match_ms)
        self.phases["fetch"].append(result.fetch_ms)
        self.phases["store"].append(result.store_ms)
        self.phases["total"].append(result.total_ms)
        self.histogram.add(result.total_ms)
        self.queries += 1
        self.chain_timeouts += result.timeouts
        self.failovers += result.failovers
        if result.degraded:
            self.degraded_queries += 1
        if not result.found:
            self.misses += 1
        self.recalls.append(result.recall)

    def phase_summary(self) -> dict[str, PhasePercentiles]:
        """Per-phase percentiles over all recorded queries."""
        return {
            phase: phase_percentiles(values)
            for phase, values in self.phases.items()
            if values
        }

    def mean_recall(self) -> float:
        """Mean recall across recorded queries (0.0 when none recorded)."""
        return float(np.mean(self.recalls)) if self.recalls else 0.0

    def report(self, title: str = "Query latency by phase") -> str:
        """Human-readable phase table plus the fault tallies."""
        summary = self.phase_summary()
        rows: list[Sequence[object]] = [
            [phase, *summary[phase].as_row()] for phase in QUERY_PHASES if phase in summary
        ]
        table = format_table(
            ["phase", "n", "mean ms", "p50 ms", "p95 ms", "p99 ms", "max ms"],
            rows,
            title=title,
        )
        tail = (
            f"queries={self.queries}  chain timeouts={self.chain_timeouts}  "
            f"failovers={self.failovers}  degraded={self.degraded_queries}  "
            f"misses={self.misses}  mean recall={self.mean_recall():.3f}"
        )
        return f"{table}\n{tail}"
