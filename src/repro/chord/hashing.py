"""SHA-1 hashing of peer addresses and exact-match keys into the id space.

The paper: "The peer nodes are hashed using a hash function (such as SHA-1)
over their IP address into the identifier space."  Exact-match keys (for
equality predicates such as ``diagnosis = 'Glaucoma'``) are hashed the same
way; only *range* partitions go through the locality sensitive scheme.
"""

from __future__ import annotations

import hashlib

__all__ = ["sha1_to_id", "node_id_for_address", "key_id", "rehash_for_placement"]


def sha1_to_id(data: bytes, m: int = 32) -> int:
    """Top ``m`` bits of SHA-1(data), as Chord prescribes."""
    if not 1 <= m <= 64:
        raise ValueError("m must be within [1, 64]")
    digest = hashlib.sha1(data).digest()
    value = int.from_bytes(digest[:8], "big")
    return value >> (64 - m)


def node_id_for_address(address: str, m: int = 32) -> int:
    """Identifier of the peer with the given network address."""
    return sha1_to_id(address.encode("utf-8"), m)


def rehash_for_placement(identifier: int, m: int = 32) -> int:
    """Uniformize a bucket identifier for ring placement.

    Min-hash identifiers are *small* by construction (a min of many draws),
    so using them directly as ring positions piles every bucket onto the few
    peers owning the low arc of the circle.  Rehashing the identifier with
    SHA-1 — standard DHT practice — spreads buckets uniformly while
    preserving the scheme's semantics exactly: matching is within a single
    bucket, and equal identifiers still land on one peer.
    """
    return sha1_to_id(int(identifier).to_bytes(8, "big"), m)


def key_id(*parts: object, m: int = 32) -> int:
    """Identifier for an exact-match key composed of ``parts``.

    Parts are joined with an unambiguous separator so ``("ab", "c")`` and
    ``("a", "bc")`` hash differently.
    """
    material = "\x1f".join(repr(p) for p in parts)
    return sha1_to_id(material.encode("utf-8"), m)
