"""A single Chord node: identifier, finger table, ring neighbours."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ChordNode"]


@dataclass
class ChordNode:
    """State one peer keeps for overlay routing.

    ``fingers[i]`` holds the id of the first node at clockwise distance at
    least ``2^i`` — "information about other peers at logarithmically
    increasing distance in the ring" (paper Section 1).  Only node *ids* are
    stored; the :class:`~repro.chord.ring.ChordRing` resolves ids to nodes,
    mirroring how a real implementation stores addresses.
    """

    node_id: int
    address: str
    successor_id: int | None = None
    predecessor_id: int | None = None
    fingers: list[int] = field(default_factory=list)
    #: The next ``r`` distinct nodes clockwise (the Chord successor list).
    #: This is what makes lookups and storage survive a crashed successor:
    #: a peer that cannot reach its successor falls back down this list.
    successor_list: list[int] = field(default_factory=list)

    def finger_or_successor(self, index: int) -> int | None:
        """Finger ``index`` if known, else the successor (bootstrap state)."""
        if index < len(self.fingers):
            return self.fingers[index]
        return self.successor_id

    def reset_routing(self) -> None:
        """Forget all routing state (used when a node re-joins).

        Clears the successor list too — a re-joining node must not route
        (or accept replicas) via successors remembered from a previous
        incarnation of the ring.
        """
        self.successor_id = None
        self.predecessor_id = None
        self.fingers = []
        self.successor_list = []

    def __str__(self) -> str:
        return f"Node({self.node_id} @ {self.address})"
