"""A single Chord node: identifier, finger table, ring neighbours."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ChordNode"]


@dataclass
class ChordNode:
    """State one peer keeps for overlay routing.

    ``fingers[i]`` holds the id of the first node at clockwise distance at
    least ``2^i`` — "information about other peers at logarithmically
    increasing distance in the ring" (paper Section 1).  Only node *ids* are
    stored; the :class:`~repro.chord.ring.ChordRing` resolves ids to nodes,
    mirroring how a real implementation stores addresses.
    """

    node_id: int
    address: str
    successor_id: int | None = None
    predecessor_id: int | None = None
    fingers: list[int] = field(default_factory=list)

    def finger_or_successor(self, index: int) -> int | None:
        """Finger ``index`` if known, else the successor (bootstrap state)."""
        if index < len(self.fingers):
            return self.fingers[index]
        return self.successor_id

    def reset_routing(self) -> None:
        """Forget all routing state (used when a node re-joins)."""
        self.successor_id = None
        self.predecessor_id = None
        self.fingers = []

    def __str__(self) -> str:
        return f"Node({self.node_id} @ {self.address})"
