"""The Chord ring: membership, finger tables, routing, and churn.

Two modes of operation:

- **static build** (:meth:`ChordRing.build`): compute every node's
  successor, predecessor and finger table globally.  This is what the
  paper's simulations need — the overlay is constructed once, then lookups
  are measured.
- **dynamic protocol** (:meth:`join`, :meth:`leave`, :meth:`stabilize_round`):
  the incremental Chord maintenance protocol, used by the churn extension
  and exercised by tests to show the ring converges to the static build.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.chord.hashing import node_id_for_address
from repro.chord.idspace import IdSpace
from repro.chord.lookup import LookupResult
from repro.chord.node import ChordNode
from repro.errors import ChordError, DuplicateNodeError, EmptyRingError, NodeNotFoundError

__all__ = ["ChordRing", "DepartureHandoff"]


@dataclass(frozen=True)
class DepartureHandoff:
    """What a graceful :meth:`ChordRing.leave` hands to the rest of the ring.

    ``interval`` is the departed node's owned identifier interval
    ``(predecessor, node]`` — every identifier inside it is now owned by
    ``new_owner_id``.  Callers holding data keyed by identifiers (the
    replication layer, :class:`~repro.core.system.RangeSelectionSystem`)
    use this to migrate entries instead of silently dropping them.
    """

    node: ChordNode
    interval: tuple[int, int]
    new_owner_id: int | None

    def moved(self, identifier: int, space: IdSpace) -> bool:
        """Whether ownership of ``identifier`` moved in this departure."""
        low, high = self.interval
        return space.in_half_open(identifier, low, high)


class ChordRing:
    """A simulated Chord overlay over an ``m``-bit identifier space.

    ``successor_list_size`` is the Chord robustness parameter ``r``: every
    node tracks its next ``r`` distinct successors, maintained by
    :meth:`build`, :meth:`join`, :meth:`leave` and :meth:`stabilize_round`,
    so routing and replica placement survive individual failures.
    """

    def __init__(self, m: int = 32, successor_list_size: int = 4) -> None:
        if successor_list_size < 1:
            raise ChordError("successor_list_size must be at least 1")
        self.space = IdSpace(m)
        self.successor_list_size = successor_list_size
        self._nodes: dict[int, ChordNode] = {}
        self._sorted_ids: list[int] = []

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._nodes

    @property
    def node_ids(self) -> list[int]:
        """All node ids in increasing order (copy)."""
        return list(self._sorted_ids)

    def node(self, node_id: int) -> ChordNode:
        """The node with the given id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NodeNotFoundError(node_id) from None

    def add_node(self, address: str | None = None, node_id: int | None = None) -> ChordNode:
        """Register a node without wiring any routing state.

        The id defaults to SHA-1 of the address, as the paper prescribes.
        Call :meth:`build` afterwards (static mode) or :meth:`join`
        (dynamic mode).
        """
        if address is None:
            if node_id is None:
                raise ChordError("node needs an address or an explicit id")
            address = f"node-{node_id}"
        if node_id is None:
            node_id = node_id_for_address(address, self.space.m)
        node_id = self.space.wrap(node_id)
        if node_id in self._nodes:
            raise DuplicateNodeError(
                f"identifier {node_id} already taken (address {address!r})"
            )
        node = ChordNode(node_id=node_id, address=address)
        self._nodes[node_id] = node
        insort(self._sorted_ids, node_id)
        return node

    def add_nodes(self, count: int, address_prefix: str = "peer") -> list[ChordNode]:
        """Add ``count`` nodes named ``<prefix>-0 ...``; skips SHA-1 collisions
        by probing successive suffixes so exactly ``count`` nodes are added."""
        added: list[ChordNode] = []
        suffix = 0
        while len(added) < count:
            try:
                added.append(self.add_node(f"{address_prefix}-{suffix}"))
            except DuplicateNodeError:
                pass
            suffix += 1
        return added

    def remove_node(self, node_id: int) -> ChordNode:
        """Remove a node outright (static mode; use :meth:`leave` under churn)."""
        node = self.node(node_id)
        del self._nodes[node_id]
        index = bisect_left(self._sorted_ids, node_id)
        self._sorted_ids.pop(index)
        return node

    # ------------------------------------------------------------------
    # Ownership
    # ------------------------------------------------------------------

    def successor_of(self, key: int) -> int:
        """The id of the node owning ``key``: the first node id >= key
        clockwise (paper Section 4: "the peer node with the least identifier
        greater than or equal to i")."""
        if not self._sorted_ids:
            raise EmptyRingError("ring has no nodes")
        key = self.space.wrap(key)
        index = bisect_left(self._sorted_ids, key)
        if index == len(self._sorted_ids):
            return self._sorted_ids[0]
        return self._sorted_ids[index]

    def predecessor_of(self, node_id: int) -> int:
        """The id of the node immediately counter-clockwise of ``node_id``."""
        if not self._sorted_ids:
            raise EmptyRingError("ring has no nodes")
        index = bisect_left(self._sorted_ids, self.space.wrap(node_id))
        return self._sorted_ids[index - 1] if index > 0 else self._sorted_ids[-1]

    def owned_interval(self, node_id: int) -> tuple[int, int]:
        """The half-open id interval ``(pred, node]`` this node is
        responsible for."""
        node = self.node(node_id)
        return (self.predecessor_of(node.node_id), node.node_id)

    def successor_chain(
        self,
        key: int,
        count: int,
        predicate: Callable[[int], bool] | None = None,
    ) -> list[int]:
        """The first ``count`` distinct nodes clockwise from ``key``'s owner.

        This is the ground truth a converged ring's successor lists agree
        with, and the basis of replica placement: identifier ``key`` is
        stored at ``successor_chain(key, r)``.  ``predicate`` filters
        candidates (e.g. to the peers currently alive), scanning further
        down the ring until ``count`` qualify or membership is exhausted.
        """
        if count < 1:
            raise ChordError("successor chain length must be at least 1")
        if not self._sorted_ids:
            raise EmptyRingError("ring has no nodes")
        ids = self._sorted_ids
        n = len(ids)
        index = bisect_left(ids, self.space.wrap(key)) % n
        chain: list[int] = []
        for offset in range(n):
            candidate = ids[(index + offset) % n]
            if predicate is not None and not predicate(candidate):
                continue
            chain.append(candidate)
            if len(chain) == count:
                break
        return chain

    def _static_successor_list(self, index: int) -> list[int]:
        """Successor list for the node at sorted position ``index``."""
        ids = self._sorted_ids
        n = len(ids)
        length = min(self.successor_list_size, n - 1)
        return [ids[(index + 1 + i) % n] for i in range(length)]

    # ------------------------------------------------------------------
    # Static construction
    # ------------------------------------------------------------------

    def build(self) -> None:
        """Globally compute successors, predecessors and finger tables."""
        if not self._sorted_ids:
            raise EmptyRingError("cannot build an empty ring")
        ids = self._sorted_ids
        n = len(ids)
        arr = np.asarray(ids, dtype=np.uint64)
        for index, node_id in enumerate(ids):
            node = self._nodes[node_id]
            node.successor_id = ids[(index + 1) % n]
            node.predecessor_id = ids[index - 1]
            node.successor_list = self._static_successor_list(index)
            starts = [
                self.space.finger_start(node_id, i) for i in range(self.space.m)
            ]
            # Vectorized successor-of for all finger starts at once.
            positions = np.searchsorted(arr, np.asarray(starts, dtype=np.uint64))
            node.fingers = [
                ids[int(pos)] if pos < n else ids[0] for pos in positions
            ]

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _closest_preceding_edge(self, node: ChordNode, key: int) -> tuple[int, str]:
        """Highest finger strictly inside ``(node, key)``, per the protocol.

        Returns ``(next_id, via)`` where ``via`` names the routing-table
        edge used — ``finger[i]`` or ``successor`` — so traced lookups can
        show *why* each hop happened, not just where it went.
        """
        for index in range(len(node.fingers) - 1, -1, -1):
            finger_id = node.fingers[index]
            if finger_id is not None and self.space.in_open(
                finger_id, node.node_id, key
            ):
                return (finger_id, f"finger[{index}]")
        if node.successor_id is None:
            raise ChordError(f"node {node.node_id} has no routing state")
        return (node.successor_id, "successor")

    def _closest_preceding_finger(self, node: ChordNode, key: int) -> int:
        """Highest finger strictly inside ``(node, key)``, per the protocol."""
        return self._closest_preceding_edge(node, key)[0]

    def lookup(
        self,
        key: int,
        start_id: int | None = None,
        recorder: Callable[[int, int, str], None] | None = None,
    ) -> LookupResult:
        """Route ``key`` from ``start_id`` (default: lowest node) to its owner.

        Implements iterative ``find_predecessor`` + final successor hop and
        counts every overlay edge traversed, matching the paper's path-length
        metric.  ``recorder`` (when given) is called once per traversed edge
        as ``recorder(from_id, to_id, via)``, where ``via`` is the routing
        edge used (``finger[i]`` or ``successor``) — the hook the tracing
        layer uses to show a lookup hop by hop.
        """
        if not self._sorted_ids:
            raise EmptyRingError("cannot look up in an empty ring")
        key = self.space.wrap(key)
        if start_id is None:
            start_id = self._sorted_ids[0]
        current = self.node(start_id)
        if current.successor_id is None:
            raise ChordError("ring not built; call build() or join() first")
        path = [current.node_id]
        max_hops = 4 * self.space.m + len(self._nodes)
        while not self.space.in_half_open(
            key, current.node_id, current.successor_id
        ):
            next_id, via = self._closest_preceding_edge(current, key)
            if next_id == current.node_id:
                break
            if recorder is not None:
                recorder(current.node_id, next_id, via)
            current = self.node(next_id)
            path.append(current.node_id)
            if len(path) > max_hops:
                raise ChordError(f"lookup for {key} exceeded {max_hops} hops")
        owner_id = current.successor_id
        assert owner_id is not None
        if owner_id != current.node_id:
            if recorder is not None:
                recorder(current.node_id, owner_id, "successor")
            path.append(owner_id)
        return LookupResult(
            key=key, owner_id=owner_id, hops=len(path) - 1, path=tuple(path)
        )

    # ------------------------------------------------------------------
    # Dynamic protocol (join / leave / stabilization)
    # ------------------------------------------------------------------

    def bootstrap(self, address: str) -> ChordNode:
        """Create the first node of a dynamic ring (points at itself)."""
        if self._nodes:
            raise ChordError("bootstrap is only for an empty ring")
        node = self.add_node(address)
        node.successor_id = node.node_id
        node.predecessor_id = node.node_id
        node.fingers = [node.node_id] * self.space.m
        node.successor_list = []
        return node

    def join(self, address: str, via: int) -> ChordNode:
        """Add a node using the incremental protocol: learn the successor by
        routing through an existing node; fingers are filled by
        :meth:`stabilize_round` / :meth:`fix_fingers`."""
        node = self.add_node(address)
        # Ask the bootstrap node to find our successor.  We must route for
        # our own id *before* our membership affects ownership, so exclude
        # ourselves from the search by looking up via the existing node.
        successor = self._lookup_excluding(node.node_id, via, exclude=node.node_id)
        node.successor_id = successor
        node.predecessor_id = None
        node.fingers = [successor] * self.space.m
        node.successor_list = self._adopt_successor_list(node, self.node(successor))
        return node

    def _adopt_successor_list(
        self, node: ChordNode, successor: ChordNode
    ) -> list[int]:
        """Successor list learned from one's successor: ``[succ] + succ's
        list``, truncated, deduplicated, with self and departed ids dropped."""
        adopted: list[int] = []
        for candidate in [successor.node_id, *successor.successor_list]:
            if candidate == node.node_id or candidate not in self._nodes:
                continue
            if candidate in adopted:
                continue
            adopted.append(candidate)
            if len(adopted) == self.successor_list_size:
                break
        return adopted

    def _lookup_excluding(self, key: int, start_id: int, exclude: int) -> int:
        """Route ``key`` ignoring node ``exclude`` (it has no state yet)."""
        current = self.node(start_id)
        guard = 0
        max_hops = 4 * self.space.m + len(self._nodes)
        while True:
            succ = current.successor_id
            if succ is None:
                raise ChordError("ring not initialized")
            if succ == exclude:
                succ = self.node(succ).successor_id
                assert succ is not None
            if self.space.in_half_open(key, current.node_id, succ):
                return succ
            next_id = self._closest_preceding_finger(current, key)
            if next_id in (current.node_id, exclude):
                next_id = current.successor_id
                assert next_id is not None
                if next_id == exclude:
                    next_id = self.node(next_id).successor_id
                    assert next_id is not None
            current = self.node(next_id)
            guard += 1
            if guard > max_hops:
                raise ChordError("excluded lookup exceeded hop bound")

    def stabilize_round(self) -> None:
        """One round of Chord stabilization over every node.

        Each node asks its successor for the successor's predecessor, adopts
        it when closer, notifies the successor of its own existence, and
        refreshes its successor list from the successor's (so list repairs
        propagate one position per round, as in the Chord protocol).
        """
        for node_id in list(self._sorted_ids):
            node = self._nodes.get(node_id)
            if node is None or node.successor_id is None:
                continue
            if node.successor_id not in self._nodes:
                # Successor departed: fall back down the successor list.
                node.successor_id = next(
                    (sid for sid in node.successor_list if sid in self._nodes),
                    node.node_id,
                )
                if node.successor_id == node.node_id and len(self._nodes) > 1:
                    node.successor_id = self.successor_of(
                        self.space.wrap(node.node_id + 1)
                    )
            successor = self.node(node.successor_id)
            candidate = successor.predecessor_id
            if candidate is not None and candidate in self._nodes:
                if self.space.in_open(candidate, node.node_id, successor.node_id):
                    node.successor_id = candidate
                    successor = self.node(candidate)
            self._notify(successor, node.node_id)
            node.successor_list = self._adopt_successor_list(node, successor)

    def _notify(self, node: ChordNode, candidate: int) -> None:
        if node.predecessor_id is None or self.space.in_open(
            candidate, node.predecessor_id, node.node_id
        ):
            node.predecessor_id = candidate

    def fix_fingers(self) -> None:
        """Recompute every node's finger table from current successors."""
        for node_id in self._sorted_ids:
            node = self._nodes[node_id]
            node.fingers = [
                self.successor_of(self.space.finger_start(node_id, i))
                for i in range(self.space.m)
            ]

    def stabilize(self, rounds: int | None = None) -> int:
        """Run stabilization rounds until successors converge (or ``rounds``).

        Returns the number of rounds executed.
        """
        limit = (
            rounds
            if rounds is not None
            else 2 * len(self._nodes) + self.successor_list_size + 4
        )
        executed = 0
        for _ in range(limit):
            before = self._routing_snapshot()
            self.stabilize_round()
            executed += 1
            if before == self._routing_snapshot() and self._successors_correct():
                break
        self.fix_fingers()
        return executed

    def _routing_snapshot(self) -> list[tuple[int, int | None, tuple[int, ...]]]:
        return [
            (nid, self._nodes[nid].successor_id, tuple(self._nodes[nid].successor_list))
            for nid in self._sorted_ids
        ]

    def _successors_correct(self) -> bool:
        ids = self._sorted_ids
        n = len(ids)
        for index, node_id in enumerate(ids):
            node = self._nodes[node_id]
            if node.successor_id != ids[(index + 1) % n]:
                return False
            if node.successor_list != self._static_successor_list(index):
                return False
        return True

    def leave(self, node_id: int) -> DepartureHandoff:
        """Graceful departure: splice the ring around the leaving node.

        Returns a :class:`DepartureHandoff` naming the identifier interval
        whose ownership moved and the node now owning it, so callers can
        migrate the departed node's entries instead of losing them.  The
        departing node is also dropped from every remaining successor list
        (stabilization would flush it eventually; a graceful leave tells
        its neighbours immediately).
        """
        node = self.node(node_id)
        pred_id = self.predecessor_of(node_id)
        succ_id = self.successor_of(self.space.wrap(node_id + 1))
        interval = (pred_id, node_id)
        removed = self.remove_node(node_id)
        if self._nodes:
            if pred_id != node_id and pred_id in self._nodes:
                self._nodes[pred_id].successor_id = (
                    succ_id if succ_id != node_id else pred_id
                )
            if succ_id != node_id and succ_id in self._nodes:
                self._nodes[succ_id].predecessor_id = (
                    pred_id if pred_id != node_id else succ_id
                )
            for survivor in self._nodes.values():
                if node_id in survivor.successor_list:
                    survivor.successor_list = [
                        sid for sid in survivor.successor_list if sid != node_id
                    ]
        new_owner = succ_id if succ_id != node_id and succ_id in self._nodes else None
        return DepartureHandoff(node=removed, interval=interval, new_owner_id=new_owner)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def audit(self) -> list[tuple[str, int, str]]:
        """Walk every node's routing state and collect invariant violations.

        Returns ``(check, node_id, message)`` tuples — empty when the ring
        is globally consistent.  Checks, per node: the successor pointer
        matches ring order, the successor's predecessor agrees (mutual
        agreement), the successor list equals the converged ground truth,
        and every finger entry both targets a live member and is the true
        successor of its finger start (reachability + correctness).  This
        is the walk the health auditor runs; :meth:`check_invariants`
        raises on the first finding instead.
        """
        findings: list[tuple[str, int, str]] = []
        ids = self._sorted_ids
        n = len(ids)
        for index, node_id in enumerate(ids):
            node = self._nodes[node_id]
            expected_succ = ids[(index + 1) % n]
            if node.successor_id != expected_succ:
                findings.append(
                    (
                        "successor",
                        node_id,
                        f"successor {node.successor_id} != {expected_succ}",
                    )
                )
            expected_pred = ids[index - 1]
            if node.predecessor_id != expected_pred:
                findings.append(
                    (
                        "predecessor",
                        node_id,
                        f"predecessor {node.predecessor_id} != {expected_pred}",
                    )
                )
            if (
                node.successor_id is not None
                and node.successor_id in self._nodes
                and self._nodes[node.successor_id].predecessor_id != node_id
            ):
                findings.append(
                    (
                        "successor-agreement",
                        node_id,
                        f"successor {node.successor_id} names "
                        f"{self._nodes[node.successor_id].predecessor_id} as "
                        "predecessor",
                    )
                )
            expected_list = self._static_successor_list(index)
            if node.successor_list != expected_list:
                findings.append(
                    (
                        "successor-list",
                        node_id,
                        f"successor list {node.successor_list} != {expected_list}",
                    )
                )
            for i, finger_id in enumerate(node.fingers):
                if finger_id is not None and finger_id not in self._nodes:
                    findings.append(
                        (
                            "finger-reachability",
                            node_id,
                            f"finger {i} targets departed node {finger_id}",
                        )
                    )
                    continue
                start = self.space.finger_start(node_id, i)
                if finger_id != self.successor_of(start):
                    findings.append(
                        (
                            "finger",
                            node_id,
                            f"finger {i} is {finger_id}, expected "
                            f"{self.successor_of(start)}",
                        )
                    )
        return findings

    def check_invariants(self) -> None:
        """Raise :class:`ChordError` if routing state is globally inconsistent."""
        findings = self.audit()
        if findings:
            _check, node_id, message = findings[0]
            raise ChordError(f"node {node_id} {message}")
