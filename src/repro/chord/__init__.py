"""A Chord distributed-hash-table simulator (Stoica et al. 2001).

The paper stores its locality-sensitive identifiers in a Chord ring: peer
nodes hash (SHA-1 of their address) into a 32-bit circular identifier space,
each data identifier is owned by its *successor* node, and lookups route
through finger tables in ``O(log N)`` overlay hops.

This subpackage is a from-scratch reimplementation of the parts of Chord the
paper's experiments exercise: ring construction, finger tables, iterative
lookup with hop counting, and node join/leave with stabilization (used by
the churn extension).
"""

from repro.chord.hashing import key_id, node_id_for_address
from repro.chord.idspace import IdSpace
from repro.chord.lookup import LookupResult
from repro.chord.node import ChordNode
from repro.chord.ring import ChordRing, DepartureHandoff

__all__ = [
    "IdSpace",
    "ChordNode",
    "ChordRing",
    "DepartureHandoff",
    "LookupResult",
    "node_id_for_address",
    "key_id",
]
