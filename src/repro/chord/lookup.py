"""Lookup results and routing-path bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LookupResult"]


@dataclass(frozen=True)
class LookupResult:
    """Outcome of routing one key through the overlay.

    ``hops`` counts overlay edges traversed, the paper's "path length";
    a lookup that starts at the owning node's predecessor costs one hop, and
    a single-node ring resolves everything in zero hops.
    """

    key: int
    owner_id: int
    hops: int
    path: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.hops != len(self.path) - 1:
            raise ValueError("hops must equal path edge count")
        if self.path[-1] != self.owner_id:
            raise ValueError("path must end at the owner")
