"""Circular identifier-space arithmetic.

Chord's correctness hinges on interval tests in a space that wraps around:
"is id ``x`` in ``(a, b]`` walking clockwise from ``a``?"  Getting these
right (especially when ``a == b``, which denotes the full circle) is where
Chord implementations classically go wrong, so the logic lives here in one
tested place.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IdSpace"]


@dataclass(frozen=True)
class IdSpace:
    """The ``m``-bit circular identifier space ``[0, 2^m)``."""

    m: int = 32

    def __post_init__(self) -> None:
        if not 1 <= self.m <= 64:
            raise ValueError("id space bits must be within [1, 64]")

    @property
    def size(self) -> int:
        """Number of identifiers, ``2^m``."""
        return 1 << self.m

    def wrap(self, value: int) -> int:
        """Reduce ``value`` into the space."""
        return value % self.size

    def distance(self, a: int, b: int) -> int:
        """Clockwise distance from ``a`` to ``b``."""
        return self.wrap(b - a)

    def in_open(self, x: int, a: int, b: int) -> bool:
        """``x ∈ (a, b)`` clockwise; ``a == b`` denotes the full circle."""
        x, a, b = self.wrap(x), self.wrap(a), self.wrap(b)
        if a == b:
            return x != a
        if a < b:
            return a < x < b
        return x > a or x < b

    def in_half_open(self, x: int, a: int, b: int) -> bool:
        """``x ∈ (a, b]`` clockwise; this is Chord's successor interval."""
        x, a, b = self.wrap(x), self.wrap(a), self.wrap(b)
        if a == b:
            return True
        if a < b:
            return a < x <= b
        return x > a or x <= b

    def finger_start(self, node_id: int, index: int) -> int:
        """Start of finger ``index`` (0-based): ``(n + 2^index) mod 2^m``."""
        if not 0 <= index < self.m:
            raise ValueError(f"finger index {index} outside [0, {self.m})")
        return self.wrap(node_id + (1 << index))
