"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  Subsystems get
their own subclasses to make failures attributable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class InvalidRangeError(ReproError, ValueError):
    """A range or range set was constructed with invalid endpoints."""


class DomainError(ReproError, ValueError):
    """A value fell outside the attribute domain it was declared against."""


class HashFamilyError(ReproError, ValueError):
    """A permutation family was configured with invalid parameters."""


class ChordError(ReproError):
    """Base class for Chord overlay errors."""


class EmptyRingError(ChordError):
    """An operation required at least one node but the ring was empty."""


class NodeNotFoundError(ChordError, KeyError):
    """A node id was not present in the ring."""


class DuplicateNodeError(ChordError, ValueError):
    """A node with the same identifier already exists in the ring."""


class NetworkError(ReproError):
    """Base class for simulated-network errors."""


class UnknownPeerError(NetworkError, KeyError):
    """A message was addressed to a peer the transport does not know."""


class PeerUnavailableError(NetworkError):
    """A synchronous send targeted a peer that is currently crashed.

    The synchronous transport has no clock to express a timeout, so an
    unreachable recipient surfaces immediately as this error; callers with
    a failover path (the replicated lookup) catch it and try the next
    replica down the successor list.
    """

    def __init__(self, peer_id: int) -> None:
        super().__init__(f"peer {peer_id} is unreachable (crashed)")
        self.peer_id = peer_id


class PeerBusyError(NetworkError):
    """A peer's bounded service queue was full and it shed the request.

    Unlike a timeout this is *explicit* back-pressure: the overloaded peer
    answers immediately with a busy reply instead of leaving the requester
    to wait out its patience, so callers can fail over (or back off) after
    one round trip rather than a full retry schedule.  Counted separately
    from timeouts in :class:`~repro.net.transport.TrafficStats`.
    """

    def __init__(self, peer_id: int) -> None:
        super().__init__(f"peer {peer_id} shed the request (service queue full)")
        self.peer_id = peer_id


class OpenCircuitError(NetworkError):
    """A request was refused locally because the destination's circuit
    breaker is open.

    No message is sent and no retry budget is consumed: the breaker has
    seen enough consecutive failures/busy replies from this peer that
    asking again before the cooldown elapses would only add load to a
    struggling destination.
    """

    def __init__(self, peer_id: int) -> None:
        super().__init__(f"circuit breaker for peer {peer_id} is open")
        self.peer_id = peer_id


class FutureCancelledError(ReproError):
    """A :class:`~repro.sim.futures.SimFuture` was cancelled before it
    settled — e.g. the losing side of a hedged lookup, or the chains a
    partial-quorum query no longer needs."""


class RequestTimeoutError(NetworkError, TimeoutError):
    """A request exhausted its retry budget without receiving a reply.

    Raised (or used to reject a :class:`~repro.sim.futures.SimFuture`) by the
    asynchronous transport when every attempt was dropped, or the recipient
    was crashed, for the whole retry schedule.
    """

    def __init__(self, recipient: int, attempts: int, waited_ms: float) -> None:
        super().__init__(
            f"request to peer {recipient} timed out after {attempts} "
            f"attempt(s) and {waited_ms:.1f} ms"
        )
        self.recipient = recipient
        self.attempts = attempts
        self.waited_ms = waited_ms


class SimulationError(ReproError):
    """The discrete-event simulator was used inconsistently (e.g. the event
    queue drained while a future someone is waiting on is still pending)."""


class SchemaError(ReproError, ValueError):
    """A relation, attribute or tuple violated the declared schema."""


class SQLSyntaxError(ReproError, ValueError):
    """The restricted SQL parser rejected a statement."""


class UnsupportedQueryError(ReproError, ValueError):
    """The statement parsed but uses features outside the paper's subset."""


class PlanningError(ReproError):
    """The planner could not produce a plan for a parsed query."""


class StorageError(ReproError):
    """A partition store rejected an operation."""


class ConfigError(ReproError, ValueError):
    """A system configuration value was out of range or inconsistent."""
