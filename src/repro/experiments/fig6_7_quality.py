"""Figures 6 and 7: quality of matched partitions per hash family.

The paper's setup (Section 5.1): 10,000 integer ranges with integers in
[0, 1000], generated uniformly at random; an initially empty system that
caches any query range not already stored; statistics over the last 80% of
queries (20% warmup dropped); x-axis Jaccard similarity of the best match,
y-axis percentage of queries.

One :class:`MatchQualityExperiment` run produces everything Figures 6-10
need (the similarity histogram *and* the per-query recalls), so the later
figures reuse this module with different matchers/padding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.metrics.collector import QueryLog
from repro.metrics.report import format_histogram
from repro.ranges.domain import Domain
from repro.util.stats import Histogram
from repro.workloads.generators import UniformRangeWorkload
from repro.workloads.trace import WorkloadTrace

__all__ = ["MatchQualityExperiment", "QualityOutcome"]

PAPER_N_QUERIES = 10_000
PAPER_DOMAIN = Domain("value", 0, 1000)
WARMUP_FRACTION = 0.2


@dataclass
class QualityOutcome:
    """Everything measured in one quality run."""

    family: str
    matcher: str
    padding: float
    histogram: Histogram
    recalls: list[float]
    similarities: list[float]
    exact_fraction: float
    n_queries: int

    def good_match_percentage(self, threshold: float = 0.9) -> float:
        """Percentage of *all* measured queries whose best match has Jaccard
        similarity >= threshold (the paper's "good matches"); queries with
        no match count against the denominator."""
        if self.n_queries == 0:
            return 0.0
        good = sum(1 for s in self.similarities if s >= threshold)
        return 100.0 * good / self.n_queries

    def miss_percentage(self) -> float:
        """Percentage of measured queries with no match at all."""
        return self.histogram.miss_percentage()

    def report(self, title: str = "") -> str:
        """The figure's histogram as text."""
        header = title or (
            f"Match quality — {self.family}, matcher={self.matcher}"
            + (f", padding={self.padding:.0%}" if self.padding else "")
        )
        lines = [
            format_histogram(self.histogram, title=header),
            f"  good (>=0.9): {self.good_match_percentage():.1f}%   "
            f"no match: {self.miss_percentage():.1f}%   "
            f"exact: {100 * self.exact_fraction:.1f}%",
        ]
        return "\n".join(lines)


@dataclass
class MatchQualityExperiment:
    """Run one hash family over the paper's uniform workload."""

    family: str = "approx-min-wise"
    n_queries: int = PAPER_N_QUERIES
    n_peers: int = 1000
    matcher: str = "jaccard"
    padding: float = 0.0
    local_index: bool = False
    seed: int = 2003
    workload_seed: int = 77
    domain: Domain = field(default_factory=lambda: PAPER_DOMAIN)
    trace: WorkloadTrace | None = None

    @classmethod
    def paper(cls, family: str, **overrides: object) -> "MatchQualityExperiment":
        """The paper-scale configuration for one family."""
        return cls(family=family, **overrides)  # type: ignore[arg-type]

    @classmethod
    def quick(cls, family: str, **overrides: object) -> "MatchQualityExperiment":
        """A CI-scale configuration (same shapes, ~20x less work)."""
        defaults: dict[str, object] = {"n_queries": 600, "n_peers": 120}
        defaults.update(overrides)
        return cls(family=family, **defaults)  # type: ignore[arg-type]

    def build_system(self) -> RangeSelectionSystem:
        """The system under test."""
        config = SystemConfig(
            n_peers=self.n_peers,
            family=self.family,
            matcher=self.matcher,
            padding=self.padding,
            local_index=self.local_index,
            domain=self.domain,
            seed=self.seed,
        )
        return RangeSelectionSystem(config)

    def workload(self) -> WorkloadTrace:
        """The query trace (shared across families via ``workload_seed``)."""
        if self.trace is not None:
            return self.trace
        generated = UniformRangeWorkload(
            self.domain, count=self.n_queries, seed=self.workload_seed
        )
        return WorkloadTrace(generated)

    def run(self) -> QualityOutcome:
        """Execute the workload and aggregate the figure's quantities."""
        system = self.build_system()
        log = QueryLog()
        for query in self.workload():
            log.add(system.query(query))
        measured = log.measured(WARMUP_FRACTION)
        return QualityOutcome(
            family=self.family,
            matcher=self.matcher,
            padding=self.padding,
            histogram=log.similarity_histogram(WARMUP_FRACTION),
            recalls=[r.recall for r in measured],
            similarities=[r.similarity for r in measured if r.found],
            exact_fraction=log.exact_fraction(WARMUP_FRACTION),
            n_queries=len(measured),
        )
