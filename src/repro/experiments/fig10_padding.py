"""Figure 10: recall with 20% query padding.

"Instead of going to the source, the system evaluates the user query with
its selection ranges expanded ... 20% on the edges" (Section 5.2), with
containment matching and approximate min-wise hashing.  The paper: "a
little over 70% of the queries are answered completely ... approximately
78% of the queries benefit ... for the rest ... lesser recall than without
padding."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.fig6_7_quality import MatchQualityExperiment, QualityOutcome
from repro.metrics.recall import recall_cdf, recall_comparison
from repro.metrics.report import format_recall_cdf

__all__ = ["PaddingExperiment", "PaddingOutcome"]


@dataclass
class PaddingOutcome:
    """Paired results: padded versus unpadded, same trace and matcher."""

    unpadded: QualityOutcome
    padded: QualityOutcome
    padding: float

    def comparison(self) -> dict[str, float]:
        """Paired per-query comparison statistics."""
        return recall_comparison(self.unpadded.recalls, self.padded.recalls)

    def report(self) -> str:
        series = {
            f"{self.padding:.0%} padding": recall_cdf(self.padded.recalls),
            "no padding": recall_cdf(self.unpadded.recalls),
        }
        table = format_recall_cdf(
            series,
            title=f"Figure 10 — recall with {self.padding:.0%} query padding "
            "(containment matching)",
        )
        stats = self.comparison()
        summary = (
            f"fully answered: no padding {stats['baseline_full_pct']:.0f}% -> "
            f"padded {stats['variant_full_pct']:.0f}%; "
            f"padding helps {stats['improved_pct']:.0f}% of queries, "
            f"hurts {stats['worsened_pct']:.0f}%"
        )
        return f"{table}\n{summary}"


@dataclass
class PaddingExperiment:
    """Padding sweep for one family with containment matching."""

    family: str = "approx-min-wise"
    padding: float = 0.2
    scale: str = "paper"

    @classmethod
    def paper(cls) -> "PaddingExperiment":
        return cls(scale="paper")

    @classmethod
    def quick(cls) -> "PaddingExperiment":
        return cls(scale="quick")

    def run(self) -> PaddingOutcome:
        make = (
            MatchQualityExperiment.paper
            if self.scale == "paper"
            else MatchQualityExperiment.quick
        )
        base = make(self.family, matcher="containment")
        trace = base.workload()
        base.trace = trace
        padded = make(self.family, matcher="containment", padding=self.padding)
        padded.trace = trace
        return PaddingOutcome(
            unpadded=base.run(), padded=padded.run(), padding=self.padding
        )
