"""Extension — end-to-end query latency under loss and peer failure.

The paper argues the ``l`` identifier lookups proceed in parallel, so a
query completes in ``O(log N)`` *wall-clock* hop times — but its simulator
(like our synchronous transport) never modelled time, loss or failure.
This experiment runs the query procedure on the discrete-event kernel
(:mod:`repro.sim`) over a ring with pairwise-deterministic wide-area
latency, sweeping message drop probability and the fraction of crashed
peers, and reports completion-time percentiles (p50/p95/p99), recall, and
timeout counts per cell — the evaluation axis NearBucket-LSH and
Distributed-LSH style systems are judged on.

Expected shapes: the fault-free column's p99 sits far below one timeout
(parallel chains: completion is the *max*, not the sum, of the ``l``
lookups); drops push the tail towards the retry schedule; crashed peers
cost recall only in proportion to how many of a query's ``l`` owners died.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.metrics.latency import LatencyCollector
from repro.metrics.report import format_table
from repro.net.latency import SeededLatency
from repro.ranges.domain import Domain
from repro.sim.network import RetryPolicy
from repro.sim.query import AsyncQueryEngine
from repro.util.rng import derive_rng
from repro.workloads.generators import UniformRangeWorkload

__all__ = ["EventLatencyExperiment", "EventLatencyOutcome", "FaultCell"]

PAPER_DOMAIN = Domain("value", 0, 1000)


@dataclass(frozen=True)
class FaultCell:
    """Measured outcome of one (drop rate, failure fraction) setting."""

    drop_rate: float
    fail_fraction: float
    crashed_peers: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_recall: float
    chain_timeouts: int
    degraded_queries: int
    misses: int
    queries: int

    def as_row(self) -> list[str]:
        return [
            f"{self.drop_rate:.0%}",
            f"{self.fail_fraction:.0%}",
            f"{self.p50_ms:.0f}",
            f"{self.p95_ms:.0f}",
            f"{self.p99_ms:.0f}",
            f"{self.mean_recall:.3f}",
            str(self.chain_timeouts),
            str(self.degraded_queries),
            str(self.misses),
        ]


@dataclass
class EventLatencyOutcome:
    """All cells plus the fault-free phase breakdown."""

    cells: list[FaultCell]
    baseline_phase_report: str
    n_peers: int
    policy: RetryPolicy

    def cell(self, drop_rate: float, fail_fraction: float) -> FaultCell:
        """The measured cell for one sweep setting."""
        for cell in self.cells:
            if cell.drop_rate == drop_rate and cell.fail_fraction == fail_fraction:
                return cell
        raise KeyError((drop_rate, fail_fraction))

    def report(self) -> str:
        table = format_table(
            [
                "drop",
                "failed",
                "p50 ms",
                "p95 ms",
                "p99 ms",
                "recall",
                "timeouts",
                "degraded",
                "misses",
            ],
            [cell.as_row() for cell in self.cells],
            title=(
                "Extension — event-driven query latency under faults "
                f"({self.n_peers} peers, timeout {self.policy.timeout_ms:.0f} ms "
                f"x{self.policy.total_attempts} attempts)"
            ),
        )
        return f"{table}\n\n{self.baseline_phase_report}"


@dataclass
class EventLatencyExperiment:
    """Sweep (drop rate x failed-peer fraction) against completion time.

    Each cell builds a fresh system, warms it with synchronous queries so
    buckets hold partitions, crashes the requested fraction of peers, then
    times event-driven queries on the virtual clock.
    """

    n_peers: int = 1000
    warm_queries: int = 400
    timed_queries: int = 200
    drop_rates: tuple[float, ...] = (0.0, 0.05, 0.10)
    fail_fractions: tuple[float, ...] = (0.0, 0.05, 0.10)
    latency_low_ms: float = 10.0
    latency_high_ms: float = 100.0
    policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(timeout_ms=400.0, max_retries=2)
    )
    domain: Domain = field(default_factory=lambda: PAPER_DOMAIN)
    seed: int = 2003

    @classmethod
    def paper(cls) -> "EventLatencyExperiment":
        return cls()

    @classmethod
    def quick(cls) -> "EventLatencyExperiment":
        return cls(
            n_peers=100,
            warm_queries=120,
            timed_queries=60,
            drop_rates=(0.0, 0.10),
            fail_fractions=(0.0, 0.10),
        )

    def _run_cell(
        self, drop_rate: float, fail_fraction: float
    ) -> tuple[FaultCell, LatencyCollector]:
        system = RangeSelectionSystem(
            SystemConfig(n_peers=self.n_peers, domain=self.domain, seed=self.seed)
        )
        warm = UniformRangeWorkload(self.domain, self.warm_queries, seed=self.seed + 1)
        for query in warm.ranges():
            system.query(query)
        engine = AsyncQueryEngine(
            system,
            latency=SeededLatency(
                self.latency_low_ms, self.latency_high_ms, seed=self.seed
            ),
            drop_probability=drop_rate,
            policy=self.policy,
            seed=self.seed,
        )
        crash_rng = derive_rng(self.seed, "event-latency/crashes")
        node_ids = system.router.node_ids
        n_crashed = int(round(fail_fraction * len(node_ids)))
        crashed = crash_rng.choice(len(node_ids), size=n_crashed, replace=False)
        for index in crashed:
            engine.crash_peer(node_ids[int(index)])
        collector = LatencyCollector(registry=system.metrics)
        timed = UniformRangeWorkload(self.domain, self.timed_queries, seed=self.seed + 2)
        for query in timed.ranges():
            collector.add(engine.run(query))
        summary = collector.phase_summary()["total"]
        cell = FaultCell(
            drop_rate=drop_rate,
            fail_fraction=fail_fraction,
            crashed_peers=n_crashed,
            p50_ms=summary.p50,
            p95_ms=summary.p95,
            p99_ms=summary.p99,
            mean_recall=collector.mean_recall(),
            chain_timeouts=collector.chain_timeouts,
            degraded_queries=collector.degraded_queries,
            misses=collector.misses,
            queries=collector.queries,
        )
        return (cell, collector)

    def run(self) -> EventLatencyOutcome:
        cells: list[FaultCell] = []
        baseline_report = ""
        for drop_rate in self.drop_rates:
            for fail_fraction in self.fail_fractions:
                cell, collector = self._run_cell(drop_rate, fail_fraction)
                cells.append(cell)
                if drop_rate == 0.0 and fail_fraction == 0.0:
                    baseline_report = collector.report(
                        "Fault-free phase breakdown (route/match/fetch/store/total)"
                    )
        return EventLatencyOutcome(
            cells=cells,
            baseline_phase_report=baseline_report,
            n_peers=self.n_peers,
            policy=self.policy,
        )
