"""Run every figure experiment and print (and save) its report.

Usage::

    python -m repro.experiments.runall [quick|paper] [results_dir]

``quick`` (default when run under CI constraints) uses scaled-down
parameters; ``paper`` uses the paper's.  Reports are printed and written to
``results_dir`` (default ``results/``).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.experiments.ext_adaptive_padding import AdaptivePaddingExperiment
from repro.experiments.ext_churn_recall import ChurnRecallExperiment
from repro.experiments.ext_composite import CompositeAnswerExperiment
from repro.experiments.ext_event_latency import EventLatencyExperiment
from repro.experiments.ext_health_churn import HealthChurnExperiment
from repro.experiments.ext_ideal_family import IdealFamilyAblation
from repro.experiments.ext_local_index import LocalIndexExperiment
from repro.experiments.ext_overlay_compare import OverlayComparisonExperiment
from repro.experiments.ext_overload import OverloadExperiment
from repro.experiments.ext_stats_planning import StatsPlanningExperiment
from repro.experiments.fig5_timing import HashTimingExperiment
from repro.experiments.fig6_7_quality import MatchQualityExperiment
from repro.experiments.fig8_recall import RecallExperiment
from repro.experiments.fig9_containment import ContainmentMatchingExperiment
from repro.experiments.fig10_padding import PaddingExperiment
from repro.experiments.fig11_load import LoadBalanceExperiment
from repro.experiments.fig12_pathlen import PathLengthExperiment

__all__ = ["run_all"]


def run_all(scale: str = "paper", results_dir: "str | Path" = "results") -> None:
    """Execute every experiment at the given scale, saving text reports."""
    if scale not in ("paper", "quick"):
        raise ValueError(f"scale must be paper|quick, got {scale!r}")
    out = Path(results_dir)
    out.mkdir(exist_ok=True)

    def scaled(cls):
        return cls.paper() if scale == "paper" else cls.quick()

    jobs = [
        ("fig5_hash_timing", lambda: scaled(HashTimingExperiment).run().report()),
        (
            "fig6a_minwise_quality",
            lambda: (
                MatchQualityExperiment.paper("min-wise")
                if scale == "paper"
                else MatchQualityExperiment.quick("min-wise")
            ).run().report("Figure 6a — min-wise"),
        ),
        (
            "fig6b_approx_quality",
            lambda: (
                MatchQualityExperiment.paper("approx-min-wise")
                if scale == "paper"
                else MatchQualityExperiment.quick("approx-min-wise")
            ).run().report("Figure 6b — approx min-wise"),
        ),
        (
            "fig7_linear_quality",
            lambda: (
                MatchQualityExperiment.paper("linear")
                if scale == "paper"
                else MatchQualityExperiment.quick("linear")
            ).run().report("Figure 7 — linear permutations"),
        ),
        ("fig8_recall", lambda: scaled(RecallExperiment).run().report()),
        ("fig9_containment", lambda: scaled(ContainmentMatchingExperiment).run().report()),
        ("fig10_padding", lambda: scaled(PaddingExperiment).run().report()),
        ("fig11_load_balance", lambda: scaled(LoadBalanceExperiment).run().report()),
        ("fig12_path_lengths", lambda: scaled(PathLengthExperiment).run().report()),
        ("ext_local_index", lambda: scaled(LocalIndexExperiment).run().report()),
        ("ext_adaptive_padding", lambda: scaled(AdaptivePaddingExperiment).run().report()),
        ("ext_ideal_family", lambda: scaled(IdealFamilyAblation).run().report()),
        ("ext_composite", lambda: scaled(CompositeAnswerExperiment).run().report()),
        ("ext_overlay_compare", lambda: scaled(OverlayComparisonExperiment).run().report()),
        ("ext_stats_planning", lambda: scaled(StatsPlanningExperiment).run().report()),
        ("ext_event_latency", lambda: scaled(EventLatencyExperiment).run().report()),
        ("ext_churn_recall", lambda: scaled(ChurnRecallExperiment).run().report()),
        ("ext_health_churn", lambda: scaled(HealthChurnExperiment).run().report()),
        ("ext_overload", lambda: scaled(OverloadExperiment).run().report()),
    ]
    for name, job in jobs:
        start = time.perf_counter()
        report = job()
        elapsed = time.perf_counter() - start
        print(f"\n=== {name} ({elapsed:.1f}s) ===")
        print(report)
        (out / f"{name}.txt").write_text(report + "\n", encoding="utf-8")


def main(argv: list[str]) -> None:
    scale = argv[1] if len(argv) > 1 else "paper"
    results_dir = argv[2] if len(argv) > 2 else "results"
    run_all(scale=scale, results_dir=results_dir)


if __name__ == "__main__":
    main(sys.argv)
