"""Figure 5: execution time of the hash-function families.

The paper times the full ``l x k = 100`` hash evaluation of one query
range, for range sizes 10..1500, on a 900 MHz Pentium.  Absolute
milliseconds are machine-bound; what the figure establishes — and what this
experiment must preserve — is the *ordering and rough ratios*: linear
permutations are orders of magnitude faster than full min-wise
permutations, and approximate (single-iteration) min-wise sits about an
order of magnitude above full min-wise's cost floor.

We therefore time the element-at-a-time reference path
(:meth:`MinHash.hash_range_slow`), which performs the per-element
permutation work the paper describes with no vectorization hiding it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lsh import LSHIdentifierScheme, family_by_name
from repro.metrics.report import format_table
from repro.ranges.interval import IntRange
from repro.util.timer import Timer

__all__ = ["HashTimingExperiment", "TimingOutcome"]

PAPER_RANGE_SIZES = (10, 100, 250, 500, 750, 1000, 1250, 1500)
FAMILIES = ("linear", "approx-min-wise", "min-wise")


@dataclass
class TimingOutcome:
    """Per-family series of (range size, ms per 100-function hash)."""

    series: dict[str, list[tuple[int, float]]]

    def mean_ms(self, family: str) -> float:
        """Mean time across range sizes for one family."""
        points = self.series[family]
        return sum(ms for _, ms in points) / len(points)

    def speedup(self, fast: str, slow: str) -> float:
        """How many times faster ``fast`` is than ``slow`` on average."""
        return self.mean_ms(slow) / self.mean_ms(fast)

    def report(self) -> str:
        """Figure 5 as a table (rows = range size, columns = family)."""
        sizes = [size for size, _ in next(iter(self.series.values()))]
        rows = []
        for i, size in enumerate(sizes):
            rows.append(
                [size] + [f"{self.series[f][i][1]:.3f}" for f in FAMILIES]
            )
        table = format_table(
            ["range size"] + [f"{f} (ms)" for f in FAMILIES],
            rows,
            title="Figure 5 — time to hash one range with 100 functions",
        )
        ratios = (
            f"mean speedups: linear vs min-wise {self.speedup('linear', 'min-wise'):.0f}x, "
            f"approx vs min-wise {self.speedup('approx-min-wise', 'min-wise'):.1f}x"
        )
        return f"{table}\n{ratios}"


@dataclass
class HashTimingExperiment:
    """Time ``l x k`` element-at-a-time hashes per family and range size."""

    range_sizes: tuple[int, ...] = PAPER_RANGE_SIZES
    l: int = 5
    k: int = 20
    seed: int = 2003
    domain_low: int = 0
    families: tuple[str, ...] = field(default_factory=lambda: FAMILIES)

    @classmethod
    def paper(cls) -> "HashTimingExperiment":
        """The paper's sizes (slow: full min-wise in pure Python)."""
        return cls()

    @classmethod
    def quick(cls) -> "HashTimingExperiment":
        """Small sizes for CI; preserves the ordering."""
        return cls(range_sizes=(10, 50, 150))

    def run(self) -> TimingOutcome:
        """Time each family over each range size (one pass each)."""
        series: dict[str, list[tuple[int, float]]] = {}
        for family_name in self.families:
            scheme = LSHIdentifierScheme.from_family(
                family_by_name(family_name), l=self.l, k=self.k, seed=self.seed
            )
            points: list[tuple[int, float]] = []
            for size in self.range_sizes:
                query = IntRange(self.domain_low, self.domain_low + size - 1)
                with Timer() as timer:
                    scheme.identifiers_slow(query)
                points.append((size, timer.elapsed_ms))
            series[family_name] = points
        return TimingOutcome(series=series)
