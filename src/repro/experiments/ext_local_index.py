"""Extension (Section 5.3): matching against a local peer index.

The paper observes that since a peer owns *every* bucket between its
predecessor and itself, it "could build up an index over all the
partitions that get stored in various buckets" and search that index for a
lookup instead of the single requested bucket — with recall approaching a
centralized index as the system shrinks to one peer, and degrading to the
bucket-only behaviour as peers multiply.  This experiment quantifies that:
recall with and without the local index, across system sizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.fig6_7_quality import MatchQualityExperiment
from repro.metrics.recall import fraction_fully_answered
from repro.metrics.report import format_table

__all__ = ["LocalIndexExperiment", "LocalIndexOutcome"]


@dataclass
class LocalIndexOutcome:
    """Full-answer percentages by system size, with and without the index."""

    rows: list[tuple[int, float, float]]  # (peers, bucket-only %, local-index %)

    def report(self) -> str:
        table_rows = [
            [peers, f"{bucket:.1f}%", f"{local:.1f}%"]
            for peers, bucket, local in self.rows
        ]
        return format_table(
            ["peers", "bucket only", "local index"],
            table_rows,
            title="Extension (Sec 5.3) — % of queries fully answered",
        )


@dataclass
class LocalIndexExperiment:
    """Sweep system size, toggling Section 5.3's local index."""

    peer_counts: tuple[int, ...] = (1, 10, 100, 1000)
    family: str = "approx-min-wise"
    matcher: str = "containment"
    # Smaller than the figure experiments: at one peer the local index
    # scans every stored partition per query, which is O(n_queries^2).
    n_queries: int = 2_000

    @classmethod
    def paper(cls) -> "LocalIndexExperiment":
        return cls()

    @classmethod
    def quick(cls) -> "LocalIndexExperiment":
        return cls(peer_counts=(1, 10, 100), n_queries=500)

    def run(self) -> LocalIndexOutcome:
        rows: list[tuple[int, float, float]] = []
        trace = None
        for n_peers in self.peer_counts:
            results = {}
            for use_index in (False, True):
                experiment = MatchQualityExperiment(
                    family=self.family,
                    matcher=self.matcher,
                    n_queries=self.n_queries,
                    n_peers=n_peers,
                    local_index=use_index,
                )
                if trace is None:
                    trace = experiment.workload()
                experiment.trace = trace
                outcome = experiment.run()
                results[use_index] = fraction_fully_answered(outcome.recalls)
            rows.append((n_peers, results[False], results[True]))
        return LocalIndexOutcome(rows=rows)
