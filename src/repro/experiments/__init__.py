"""Experiment harness: one module per figure of the paper's evaluation.

Each experiment class has two constructors — ``paper()`` with the paper's
parameters and ``quick()`` with scaled-down parameters for CI — a ``run()``
method returning a structured result, and a ``report()`` on the result that
prints the same rows/series the figure plots.

Figure index:

- Figure 5  — :mod:`repro.experiments.fig5_timing`
- Figures 6a/6b/7 — :mod:`repro.experiments.fig6_7_quality`
- Figure 8  — :mod:`repro.experiments.fig8_recall`
- Figure 9  — :mod:`repro.experiments.fig9_containment`
- Figure 10 — :mod:`repro.experiments.fig10_padding`
- Figure 11 — :mod:`repro.experiments.fig11_load`
- Figure 12 — :mod:`repro.experiments.fig12_pathlen`

Extensions (Sections 5.3 and 6 of the paper):

- local peer index — :mod:`repro.experiments.ext_local_index`
- adaptive padding — :mod:`repro.experiments.ext_adaptive_padding`
- ideal permutations ablation — :mod:`repro.experiments.ext_ideal_family`
- recall under churn (replication x crash rate) —
  :mod:`repro.experiments.ext_churn_recall`
- overload protection (offered load x grey-slow peers) —
  :mod:`repro.experiments.ext_overload`
"""

from repro.experiments.ext_adaptive_padding import AdaptivePaddingExperiment
from repro.experiments.ext_churn_recall import ChurnRecallExperiment
from repro.experiments.ext_composite import CompositeAnswerExperiment
from repro.experiments.ext_ideal_family import IdealFamilyAblation
from repro.experiments.ext_local_index import LocalIndexExperiment
from repro.experiments.ext_overlay_compare import OverlayComparisonExperiment
from repro.experiments.ext_overload import OverloadExperiment
from repro.experiments.ext_stats_planning import StatsPlanningExperiment
from repro.experiments.fig5_timing import HashTimingExperiment
from repro.experiments.fig6_7_quality import MatchQualityExperiment, QualityOutcome
from repro.experiments.fig8_recall import RecallExperiment
from repro.experiments.fig9_containment import ContainmentMatchingExperiment
from repro.experiments.fig10_padding import PaddingExperiment
from repro.experiments.fig11_load import LoadBalanceExperiment
from repro.experiments.fig12_pathlen import PathLengthExperiment

__all__ = [
    "HashTimingExperiment",
    "MatchQualityExperiment",
    "QualityOutcome",
    "RecallExperiment",
    "ContainmentMatchingExperiment",
    "PaddingExperiment",
    "LoadBalanceExperiment",
    "PathLengthExperiment",
    "LocalIndexExperiment",
    "AdaptivePaddingExperiment",
    "IdealFamilyAblation",
    "CompositeAnswerExperiment",
    "OverlayComparisonExperiment",
    "StatsPlanningExperiment",
    "ChurnRecallExperiment",
    "OverloadExperiment",
]
