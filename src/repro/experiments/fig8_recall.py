"""Figure 8: recall of the matched partitions for the three families.

Same runs as Figures 6-7, but the y-quantity is how much of the *desired
answer* the match provides — containment of the query in the match.  The
paper's orderings: linear answers the most queries completely (it matches
broad partitions loosely), approx min-wise next, min-wise last; but
min-wise and approx dominate at high partial recall ("they answer at least
0.8 of 90% of the queries").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.fig6_7_quality import MatchQualityExperiment, QualityOutcome
from repro.metrics.recall import (
    fraction_at_least,
    fraction_fully_answered,
    recall_cdf,
)
from repro.metrics.report import format_recall_cdf

__all__ = ["RecallExperiment", "RecallOutcome"]

FAMILIES = ("min-wise", "approx-min-wise", "linear")


@dataclass
class RecallOutcome:
    """Per-family recall distributions over the shared trace."""

    outcomes: dict[str, QualityOutcome]

    def cdf(self, family: str) -> list[tuple[float, float]]:
        """The family's recall CDF on the paper's grid."""
        return recall_cdf(self.outcomes[family].recalls)

    def fully_answered(self, family: str) -> float:
        """% of queries answered completely."""
        return fraction_fully_answered(self.outcomes[family].recalls)

    def at_least(self, family: str, threshold: float) -> float:
        """% of queries with recall >= threshold."""
        return fraction_at_least(self.outcomes[family].recalls, threshold)

    def report(self) -> str:
        """Figure 8 as a table of CDFs."""
        series = {family: self.cdf(family) for family in self.outcomes}
        table = format_recall_cdf(
            series, title="Figure 8 — recall for the hash function families"
        )
        summary = "  ".join(
            f"{family}: {self.fully_answered(family):.0f}% full"
            for family in self.outcomes
        )
        return f"{table}\n{summary}"


@dataclass
class RecallExperiment:
    """Run the three families over one shared workload trace."""

    families: tuple[str, ...] = field(default_factory=lambda: FAMILIES)
    scale: str = "paper"
    overrides: dict[str, object] = field(default_factory=dict)

    @classmethod
    def paper(cls) -> "RecallExperiment":
        return cls(scale="paper")

    @classmethod
    def quick(cls) -> "RecallExperiment":
        return cls(scale="quick")

    def run(self) -> RecallOutcome:
        """One quality run per family, identical workload for all."""
        make = (
            MatchQualityExperiment.paper
            if self.scale == "paper"
            else MatchQualityExperiment.quick
        )
        outcomes: dict[str, QualityOutcome] = {}
        trace = None
        for family in self.families:
            experiment = make(family, **self.overrides)
            if trace is None:
                trace = experiment.workload()
            experiment.trace = trace
            outcomes[family] = experiment.run()
        return RecallOutcome(outcomes=outcomes)
