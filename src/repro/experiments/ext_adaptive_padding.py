"""Extension (Section 5.2 future work): dynamically adjusted padding.

Fixed 20% padding helps most queries but hurts a minority (Figure 10); the
paper defers "dynamically adjusting padding for better overall
performance" to future work.  This experiment runs the
:class:`AdaptivePaddingController` against fixed-padding baselines over the
same trace and reports full-answer percentage, mean recall, and where the
controller's padding settles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.adaptive import AdaptivePaddingController
from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.experiments.fig6_7_quality import (
    PAPER_DOMAIN,
    WARMUP_FRACTION,
    MatchQualityExperiment,
)
from repro.metrics.collector import QueryLog
from repro.metrics.recall import fraction_fully_answered
from repro.metrics.report import format_table

__all__ = ["AdaptivePaddingExperiment", "AdaptiveOutcome"]


@dataclass
class AdaptiveOutcome:
    """Adaptive controller versus fixed paddings over one trace."""

    rows: list[tuple[str, float, float]]  # (scheme, full %, mean recall)
    final_padding: float
    padding_trajectory: list[float]

    def report(self) -> str:
        table = format_table(
            ["scheme", "fully answered", "mean recall"],
            [[name, f"{full:.1f}%", f"{mean:.3f}"] for name, full, mean in self.rows],
            title="Extension — adaptive query padding",
        )
        return (
            f"{table}\n"
            f"adaptive padding settled at {self.final_padding:.2f} "
            f"(target recall {0.9})"
        )


@dataclass
class AdaptivePaddingExperiment:
    """Adaptive vs fixed padding, containment matching, one family."""

    family: str = "approx-min-wise"
    fixed_paddings: tuple[float, ...] = (0.0, 0.2)
    target_recall: float = 0.9
    n_queries: int = 10_000
    n_peers: int = 1000

    @classmethod
    def paper(cls) -> "AdaptivePaddingExperiment":
        return cls()

    @classmethod
    def quick(cls) -> "AdaptivePaddingExperiment":
        return cls(n_queries=600, n_peers=120)

    def run(self) -> AdaptiveOutcome:
        base = MatchQualityExperiment(
            family=self.family,
            matcher="containment",
            n_queries=self.n_queries,
            n_peers=self.n_peers,
        )
        trace = base.workload()

        rows: list[tuple[str, float, float]] = []
        for padding in self.fixed_paddings:
            experiment = MatchQualityExperiment(
                family=self.family,
                matcher="containment",
                padding=padding,
                n_queries=self.n_queries,
                n_peers=self.n_peers,
                trace=trace,
            )
            outcome = experiment.run()
            rows.append(
                (
                    f"fixed {padding:.0%}",
                    fraction_fully_answered(outcome.recalls),
                    sum(outcome.recalls) / len(outcome.recalls),
                )
            )

        # Adaptive run: same system parameters, per-query padding override.
        system = RangeSelectionSystem(
            SystemConfig(
                n_peers=self.n_peers,
                family=self.family,
                matcher="containment",
                domain=PAPER_DOMAIN,
            )
        )
        controller = AdaptivePaddingController(target_recall=self.target_recall)
        log = QueryLog()
        trajectory: list[float] = []
        for query in trace:
            result = system.query(query, padding=controller.padding)
            controller.observe(result.recall)
            trajectory.append(controller.padding)
            log.add(result)
        recalls = log.recall_values(WARMUP_FRACTION)
        rows.append(
            (
                "adaptive",
                fraction_fully_answered(recalls),
                sum(recalls) / len(recalls),
            )
        )
        return AdaptiveOutcome(
            rows=rows,
            final_padding=controller.padding,
            padding_trajectory=trajectory,
        )
