"""Extension (Section 3.1) — Chord versus CAN as the DHT substrate.

The paper treats the overlay as interchangeable ("Any of the distributed
hash tables, e.g., CAN or Chord, can be used").  This experiment runs the
same lookup workload over both and compares routing cost across system
sizes — Chord's O(log N) against CAN's O(d/4 · N^(1/d)) — and verifies the
match quality of the range-selection system is overlay-independent (the
overlay only moves messages; it never affects which bucket a range lands
in).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SystemConfig
from repro.core.overlays import build_overlay
from repro.core.system import RangeSelectionSystem
from repro.experiments.fig6_7_quality import PAPER_DOMAIN, WARMUP_FRACTION
from repro.metrics.collector import QueryLog
from repro.metrics.recall import fraction_fully_answered
from repro.metrics.report import format_table
from repro.util.rng import derive_rng
from repro.util.stats import SummaryStats, summarize
from repro.workloads.generators import UniformRangeWorkload
from repro.workloads.trace import WorkloadTrace

__all__ = ["OverlayComparisonExperiment", "OverlayOutcome"]


@dataclass
class OverlayOutcome:
    """Routing cost per overlay and size, plus quality equivalence."""

    hops: dict[str, list[tuple[int, SummaryStats]]]
    quality: dict[str, float]  # overlay -> % fully answered
    can_dimensions: int

    def report(self) -> str:
        sizes = [n for n, _ in self.hops["chord"]]
        rows = []
        for index, n in enumerate(sizes):
            rows.append(
                [
                    n,
                    f"{self.hops['chord'][index][1].mean:.2f}",
                    f"{self.hops['can'][index][1].mean:.2f}",
                ]
            )
        table = format_table(
            ["peers", "chord mean hops", f"can (d={self.can_dimensions}) mean hops"],
            rows,
            title="Extension — Chord vs CAN routing cost",
        )
        quality = "  ".join(
            f"{overlay}: {full:.1f}% fully answered"
            for overlay, full in self.quality.items()
        )
        return f"{table}\nmatch quality is overlay-independent — {quality}"


@dataclass
class OverlayComparisonExperiment:
    """Same keys, same origins, two overlays."""

    peer_counts: tuple[int, ...] = (100, 400, 1600)
    lookups_per_point: int = 3000
    quality_queries: int = 3000
    quality_peers: int = 200
    can_dimensions: int = 2
    seed: int = 2003

    @classmethod
    def paper(cls) -> "OverlayComparisonExperiment":
        return cls()

    @classmethod
    def quick(cls) -> "OverlayComparisonExperiment":
        return cls(
            peer_counts=(50, 200),
            lookups_per_point=600,
            quality_queries=500,
            quality_peers=60,
        )

    def _measure_hops(self) -> dict[str, list[tuple[int, SummaryStats]]]:
        rng = derive_rng(self.seed, "overlay-compare")
        out: dict[str, list[tuple[int, SummaryStats]]] = {"chord": [], "can": []}
        for n_peers in self.peer_counts:
            keys = [int(rng.integers(0, 2**32)) for _ in range(self.lookups_per_point)]
            origin_picks = [
                float(rng.random()) for _ in range(self.lookups_per_point)
            ]
            for kind in ("chord", "can"):
                router = build_overlay(
                    kind, n_peers, dimensions=self.can_dimensions, seed=self.seed
                )
                ids = router.node_ids
                hops = []
                for key, pick in zip(keys, origin_picks):
                    start = ids[int(pick * len(ids))]
                    _owner, hop_count = router.lookup(key, start_id=start)
                    hops.append(hop_count)
                out[kind].append((n_peers, summarize(hops)))
        return out

    def _measure_quality(self) -> dict[str, float]:
        trace = WorkloadTrace(
            UniformRangeWorkload(PAPER_DOMAIN, self.quality_queries, seed=77)
        )
        out: dict[str, float] = {}
        for kind in ("chord", "can"):
            system = RangeSelectionSystem(
                SystemConfig(
                    n_peers=self.quality_peers,
                    overlay=kind,
                    can_dimensions=self.can_dimensions,
                    matcher="containment",
                    domain=PAPER_DOMAIN,
                    seed=self.seed,
                )
            )
            log = QueryLog()
            for query in trace:
                log.add(system.query(query))
            out[kind] = fraction_fully_answered(
                log.recall_values(WARMUP_FRACTION)
            )
        return out

    def run(self) -> OverlayOutcome:
        return OverlayOutcome(
            hops=self._measure_hops(),
            quality=self._measure_quality(),
            can_dimensions=self.can_dimensions,
        )
