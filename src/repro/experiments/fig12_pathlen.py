"""Figure 12: lookup path lengths in the overlay.

Section 5.3: with 5 x 10^4 stored partitions and 100..5000 peers, route
lookups for partition identifiers from random origin peers and measure the
hop count.  Panel (a) sweeps the number of peers (mean + 1st/99th
percentiles); panel (b) is the hop-count PDF in a 1000-node system.  The
paper's summary: "the mean path lengths are of the order (1/2) log2 N".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lsh import DomainMinHashIndex, LSHIdentifierScheme, family_for_domain
from repro.chord.hashing import rehash_for_placement
from repro.chord.ring import ChordRing
from repro.experiments.fig11_load import unique_uniform_ranges
from repro.metrics.report import format_series, format_table
from repro.ranges.domain import Domain
from repro.util.rng import derive_rng
from repro.util.stats import DiscretePdf, SummaryStats, summarize

__all__ = ["PathLengthExperiment", "PathLengthOutcome"]

PAPER_PEER_COUNTS = (100, 250, 500, 1000, 2500, 5000)
PDF_PEERS = 1000


@dataclass
class PathLengthOutcome:
    """Both panels of Figure 12."""

    by_peers: list[tuple[int, SummaryStats]]
    pdf: DiscretePdf
    pdf_peers: int

    def mean_hops(self, n_peers: int) -> float:
        """Mean path length at one swept peer count."""
        for n, stats in self.by_peers:
            if n == n_peers:
                return stats.mean
        raise KeyError(f"no sweep point at {n_peers} peers")

    def report(self) -> str:
        rows = [
            [n, f"{s.p01:.0f}", f"{s.mean:.2f}", f"{s.p99:.0f}",
             f"{0.5 * np.log2(n):.2f}"]
            for n, s in self.by_peers
        ]
        table_a = format_table(
            ["peers", "p1", "mean", "p99", "(1/2)log2N"],
            rows,
            title="Figure 12a — path length vs number of peers",
        )
        pdf_points = [
            (float(h), 100.0 * p) for h, p in self.pdf.probabilities().items()
        ]
        table_b = format_series(
            "hops",
            "% of lookups",
            pdf_points,
            title=f"Figure 12b — path length PDF, {self.pdf_peers} peers "
            f"(mean {self.pdf.mean():.2f})",
        )
        return f"{table_a}\n\n{table_b}"


@dataclass
class PathLengthExperiment:
    """Measure lookup hop counts across ring sizes."""

    peer_counts: tuple[int, ...] = PAPER_PEER_COUNTS
    pdf_peers: int = PDF_PEERS
    lookups_per_point: int = 20_000
    unique_partitions: int = 10_000
    family: str = "approx-min-wise"
    l: int = 5
    k: int = 20
    seed: int = 2003
    domain: Domain = field(default_factory=lambda: Domain("value", 0, 1000))
    placement: str = "rehash"

    @classmethod
    def paper(cls) -> "PathLengthExperiment":
        return cls()

    @classmethod
    def quick(cls) -> "PathLengthExperiment":
        return cls(
            peer_counts=(50, 100, 200),
            pdf_peers=100,
            lookups_per_point=1500,
            unique_partitions=500,
        )

    def _partition_identifiers(self) -> np.ndarray:
        scheme = LSHIdentifierScheme.from_family(
            family_for_domain(self.family, self.domain),
            l=self.l,
            k=self.k,
            seed=self.seed,
        )
        index = DomainMinHashIndex(scheme, self.domain)
        ranges = unique_uniform_ranges(
            self.unique_partitions, self.domain, self.seed
        )
        rows = [index.identifiers(r) for r in ranges]
        flat = np.asarray(rows, dtype=np.uint64).reshape(-1)
        if self.placement == "rehash":
            flat = np.asarray(
                [rehash_for_placement(int(i)) for i in flat], dtype=np.uint64
            )
        return flat

    def _hops_for_ring(
        self, n_peers: int, identifiers: np.ndarray, rng: np.random.Generator
    ) -> list[int]:
        ring = ChordRing(m=32)
        ring.add_nodes(n_peers)
        ring.build()
        node_ids = ring.node_ids
        count = min(self.lookups_per_point, len(identifiers))
        chosen = rng.choice(len(identifiers), size=count, replace=False)
        hops: list[int] = []
        for key_index in chosen:
            origin = node_ids[int(rng.integers(len(node_ids)))]
            result = ring.lookup(int(identifiers[key_index]), start_id=origin)
            hops.append(result.hops)
        return hops

    def run(self) -> PathLengthOutcome:
        identifiers = self._partition_identifiers()
        rng = derive_rng(self.seed, "pathlen/origins")
        by_peers: list[tuple[int, SummaryStats]] = []
        pdf = DiscretePdf()
        for n_peers in self.peer_counts:
            hops = self._hops_for_ring(n_peers, identifiers, rng)
            by_peers.append((n_peers, summarize(hops)))
            if n_peers == self.pdf_peers:
                for h in hops:
                    pdf.add(h)
        if pdf.total == 0:
            # The PDF ring size was not part of the sweep: measure it.
            for h in self._hops_for_ring(self.pdf_peers, identifiers, rng):
                pdf.add(h)
        return PathLengthOutcome(
            by_peers=by_peers, pdf=pdf, pdf_peers=self.pdf_peers
        )
