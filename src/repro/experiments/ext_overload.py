"""Extension — overload protection: offered load x grey-slow peers.

The paper's simulator (and our synchronous transport) serves every request
instantly, so "heavy traffic from millions of users" is invisible to it.
This experiment puts the event-driven stack under *sustained open-loop
load* — queries arrive on a fixed schedule whether or not earlier ones
finished — while a fraction of peers grey-fails: still alive and correct,
but with link latency and service time inflated by ``slow_factor``.  The
query procedure's completion time is the max over its ``l`` lookup chains,
so a single overloaded identifier owner is the whole query's latency;
grey-slow peers are therefore tail-latency poison in exactly the shape
the overload-protection layer targets.

Every cell runs the same bounded-queue service model
(``peer_queue`` / ``service_rate``); what the sweep toggles is the
*response* to overload:

- **protections off** — static 400 ms timeouts, immediate retries, no
  breakers, no hedging: chains wait out full retry schedules against
  drowning peers, and busy-shed replies trigger instant re-asks;
- **protections on** — per-destination adaptive timeouts + jittered
  backoff, circuit breakers that fail fast toward persistently failing
  peers, hedged lookups at the live p95, and 4-of-5 partial-quorum
  completion once the best match clears the similarity threshold.

**Saturation** is defined against the *slow* peers: a grey-failed peer
serves at ``service_rate / slow_factor``, so offered load
``saturation_qps = n_peers * (service_rate / slow_factor) / l`` is where
a slow peer's share of the request stream saturates it, while healthy
peers still have ``slow_factor``x headroom.  At ``2x`` that load the slow
10% of the ring is hopelessly overloaded and the healthy 90% is at ~25%
utilisation — overload protection cannot conjure capacity, but it *can*
route around the drowning minority, which is the graceful-degradation
claim this experiment checks: protections-on should hold p99 within ~3x
of the uncontended baseline and recall within a few points, while
protections-off visibly collapses.

The workload reuses the churn experiment's tile-jitter shape (disjoint
width-30 tiles stored once, queries jittered by one unit, stores off), so
recall measures whether the stored tile was *reached*, not re-inserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.metrics.latency import LatencyCollector
from repro.metrics.report import format_table
from repro.net.latency import SeededLatency
from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange
from repro.sim.network import RetryPolicy
from repro.sim.query import AsyncQueryEngine
from repro.util.rng import derive_rng

__all__ = ["OverloadExperiment", "OverloadOutcome", "OverloadCell"]

PAPER_DOMAIN = Domain("value", 0, 1000)


@dataclass(frozen=True)
class OverloadCell:
    """Measured outcome of one (protections, load, slow fraction) setting."""

    protections: bool
    load_factor: float
    slow_fraction: float
    offered_qps: float
    slow_peers: int
    mean_recall: float
    p50_ms: float
    p99_ms: float
    chain_timeouts: int
    busy_shed: int
    hedges: int
    hedge_wins: int
    breaker_opens: int
    partial_queries: int
    misses: int
    queries: int

    @property
    def label(self) -> str:
        return "on" if self.protections else "off"

    def as_row(self) -> list[str]:
        return [
            self.label,
            f"{self.load_factor:g}x",
            f"{self.slow_fraction:.0%}",
            f"{self.mean_recall:.3f}",
            f"{self.p50_ms:.0f}",
            f"{self.p99_ms:.0f}",
            str(self.chain_timeouts),
            str(self.busy_shed),
            f"{self.hedges}/{self.hedge_wins}",
            str(self.breaker_opens),
            str(self.partial_queries),
            str(self.misses),
        ]


@dataclass
class OverloadOutcome:
    """All cells of the protections x load x slow-fraction sweep."""

    cells: list[OverloadCell]
    n_peers: int
    saturation_qps: float
    service_rate: float
    slow_factor: float

    def cell(
        self, protections: bool, load_factor: float, slow_fraction: float
    ) -> OverloadCell:
        """The measured cell for one sweep setting."""
        for cell in self.cells:
            if (
                cell.protections == protections
                and cell.load_factor == load_factor
                and cell.slow_fraction == slow_fraction
            ):
                return cell
        raise KeyError((protections, load_factor, slow_fraction))

    def baseline(self) -> OverloadCell:
        """The uncontended reference: protections off, lightest load, no
        slow peers."""
        lightest = min(cell.load_factor for cell in self.cells)
        return self.cell(False, lightest, 0.0)

    def report(self) -> str:
        table = format_table(
            [
                "mode",
                "load",
                "slow",
                "recall",
                "p50 ms",
                "p99 ms",
                "timeouts",
                "shed",
                "hedge w/l",
                "breaker",
                "partial",
                "misses",
            ],
            [cell.as_row() for cell in self.cells],
            title=(
                "Extension — overload protection, offered load x grey-slow "
                f"peers ({self.n_peers} peers, queue service "
                f"{self.service_rate:g} req/s, slow x{self.slow_factor:g}, "
                f"saturation {self.saturation_qps:g} qps)"
            ),
        )
        base = self.baseline()
        tail = (
            f"baseline (off, {base.load_factor:g}x, 0% slow): "
            f"p99={base.p99_ms:.0f} ms, recall={base.mean_recall:.3f}"
        )
        return f"{table}\n{tail}"


@dataclass
class OverloadExperiment:
    """Sweep protections x offered load x grey-slow fraction.

    Each cell builds a fresh system, stores one partition per domain tile
    (``replicas`` copies), grey-fails a fraction of peers, and drives an
    open-loop tile-jitter workload through the event-driven engine with
    the bounded-queue service model on.  Cells differ only in arrival
    rate, slow fraction, and whether the adaptive/overload protections
    (hedge + quorum + breaker + adaptive timeout) are enabled.

    The first ``warmup_queries`` arrivals are excluded from the latency
    and recall summaries: the protections are *learned* state (RTT
    estimates, breaker trips, the hedge trigger's p95), so the measured
    window is the steady state the protections converge to, not the cold
    start.  Both modes run the identical warmup so they see the same
    offered load.  The traffic tallies (shed / hedges / breaker trips)
    cover the whole run including warmup.
    """

    n_peers: int = 120
    tile_width: int = 30
    timed_queries: int = 250
    warmup_queries: int = 80
    replicas: int = 3
    peer_queue: int = 4
    service_rate: float = 40.0
    slow_factor: float = 8.0
    load_factors: tuple[float, ...] = (0.25, 2.0)
    slow_fractions: tuple[float, ...] = (0.0, 0.10)
    quorum: int = 4
    quorum_threshold: float = 0.9
    latency_low_ms: float = 10.0
    latency_high_ms: float = 100.0
    policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(timeout_ms=400.0, max_retries=2)
    )
    domain: Domain = field(default_factory=lambda: PAPER_DOMAIN)
    seed: int = 2003

    @classmethod
    def paper(cls) -> "OverloadExperiment":
        return cls()

    @classmethod
    def quick(cls) -> "OverloadExperiment":
        return cls(n_peers=100, timed_queries=150)

    @property
    def saturation_qps(self) -> float:
        """Offered load at which a grey-slow peer's share saturates it."""
        return self.n_peers * (self.service_rate / self.slow_factor) / 5.0

    def _tiles(self) -> list[IntRange]:
        width = self.tile_width
        low, high = self.domain.low, self.domain.high
        return [
            IntRange(start, start + width - 1)
            for start in range(low, high - width + 2, width)
        ]

    def _queries(self, tiles: list[IntRange], count: int) -> list[IntRange]:
        jitter_rng = derive_rng(self.seed, "overload/jitter")
        low, high = self.domain.low, self.domain.high
        queries: list[IntRange] = []
        for _ in range(count):
            tile = tiles[int(jitter_rng.integers(len(tiles)))]
            shift = 1 if jitter_rng.integers(2) else -1
            if tile.start + shift < low or tile.end + shift > high:
                shift = -shift
            queries.append(IntRange(tile.start + shift, tile.end + shift))
        return queries

    def _run_cell(
        self, protections: bool, load_factor: float, slow_fraction: float
    ) -> OverloadCell:
        config = SystemConfig(
            n_peers=self.n_peers,
            domain=self.domain,
            replicas=self.replicas,
            store_on_miss=False,
            seed=self.seed,
            peer_queue=self.peer_queue,
            service_rate=self.service_rate,
            hedge=protections,
            quorum=self.quorum if protections else 0,
            quorum_threshold=self.quorum_threshold,
            breaker=protections,
            adaptive_timeout=protections,
        )
        system = RangeSelectionSystem(config)
        tiles = self._tiles()
        for tile in tiles:
            system.store_partition(tile)
        engine = AsyncQueryEngine(
            system,
            latency=SeededLatency(
                self.latency_low_ms, self.latency_high_ms, seed=self.seed
            ),
            policy=self.policy,
            seed=self.seed,
        )
        node_ids = system.router.node_ids
        n_slow = int(round(slow_fraction * len(node_ids)))
        slow_rng = derive_rng(self.seed, "overload/slow")
        for index in slow_rng.choice(len(node_ids), size=n_slow, replace=False):
            engine.slow_peer(
                node_ids[int(index)],
                latency_factor=self.slow_factor,
                service_factor=self.slow_factor,
            )

        offered_qps = load_factor * self.saturation_qps
        interval_ms = 1000.0 / offered_qps
        queries = self._queries(tiles, self.warmup_queries + self.timed_queries)
        collector = LatencyCollector(registry=system.metrics)
        results = engine.run_open_loop(queries, interval_ms)
        for result in results[self.warmup_queries :]:
            collector.add(result)
        summary = collector.phase_summary()["total"]
        stats = engine.net.stats
        return OverloadCell(
            protections=protections,
            load_factor=load_factor,
            slow_fraction=slow_fraction,
            offered_qps=offered_qps,
            slow_peers=n_slow,
            mean_recall=collector.mean_recall(),
            p50_ms=summary.p50,
            p99_ms=summary.p99,
            chain_timeouts=collector.chain_timeouts,
            busy_shed=stats.busy_shed,
            hedges=stats.hedges,
            hedge_wins=stats.hedge_wins,
            breaker_opens=int(system.metrics.counter("sim.breaker.opened").get()),
            partial_queries=collector.partial_queries,
            misses=collector.misses,
            queries=collector.queries,
        )

    def run(self) -> OverloadOutcome:
        cells = [
            self._run_cell(protections, load_factor, slow_fraction)
            for protections in (False, True)
            for load_factor in self.load_factors
            for slow_fraction in self.slow_fractions
        ]
        return OverloadOutcome(
            cells=cells,
            n_peers=self.n_peers,
            saturation_qps=self.saturation_qps,
            service_rate=self.service_rate,
            slow_factor=self.slow_factor,
        )
