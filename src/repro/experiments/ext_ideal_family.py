"""Ablation: the paper's Figure 3 construction versus ideal permutations.

The "min-wise independent permutations" the paper implements (the
recursive bit shuffle of Figure 3) only permute *bit positions* — a tiny,
biased subfamily of all permutations.  The :class:`TablePermutationFamily`
is exactly min-wise independent over the bounded experiment domain, so
comparing the two families isolates how much match quality the cheap
construction gives up relative to the theory of Section 3.3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.fig6_7_quality import MatchQualityExperiment, QualityOutcome
from repro.metrics.recall import fraction_fully_answered
from repro.metrics.report import format_table

__all__ = ["IdealFamilyAblation", "IdealFamilyOutcome"]

_FAMILIES = ("table", "min-wise", "approx-min-wise")


@dataclass
class IdealFamilyOutcome:
    """Quality of each family over the shared trace."""

    outcomes: dict[str, QualityOutcome]

    def report(self) -> str:
        rows = []
        for family, outcome in self.outcomes.items():
            rows.append(
                [
                    family,
                    f"{outcome.good_match_percentage():.1f}%",
                    f"{outcome.miss_percentage():.1f}%",
                    f"{fraction_fully_answered(outcome.recalls):.1f}%",
                ]
            )
        return format_table(
            ["family", "good (>=0.9)", "no match", "fully answered"],
            rows,
            title="Ablation — ideal (table) permutations vs the paper's "
            "Figure 3 construction",
        )


@dataclass
class IdealFamilyAblation:
    """Run ideal and bit-shuffle families over one trace."""

    families: tuple[str, ...] = _FAMILIES
    scale: str = "paper"

    @classmethod
    def paper(cls) -> "IdealFamilyAblation":
        return cls(scale="paper")

    @classmethod
    def quick(cls) -> "IdealFamilyAblation":
        return cls(scale="quick")

    def run(self) -> IdealFamilyOutcome:
        make = (
            MatchQualityExperiment.paper
            if self.scale == "paper"
            else MatchQualityExperiment.quick
        )
        outcomes: dict[str, QualityOutcome] = {}
        trace = None
        for family in self.families:
            experiment = make(family)
            if trace is None:
                trace = experiment.workload()
            experiment.trace = trace
            outcomes[family] = experiment.run()
        return IdealFamilyOutcome(outcomes=outcomes)
