"""Extension — live churn: self-healing under kill, pause and partition.

Every other experiment in this package drives a simulated transport; this
one drives *real processes*.  It spawns a :class:`~repro.rpc.cluster.
LocalCluster` of ``repro serve`` peers with the SWIM failure detector and
server-side anti-entropy repair enabled, then plays the three fault waves
of the paper's fault model plus the classic production failure it leaves
out:

- **kill** — SIGKILL one replica-holding peer.  The ring must detect the
  death (direct pings fail, ping-req proxies fail, suspicion ages out),
  evict the peer from every mirror, and re-replicate its entries to ``r``
  live copies — *with the client completely idle*.  Measures wall-clock
  time-to-detection (kill → evicted from every live mirror) and
  time-to-repair (kill → every entry back at full replication).
- **pause** — SIGSTOP one peer for long enough to be *suspected* but not
  long enough to be evicted, then SIGCONT.  The ring must not over-react:
  the thawed peer refutes the suspicion with a higher incarnation,
  rejoins every mirror, and keeps every entry it held.
- **partition** — block a two-peer minority from the rest (two-sided, at
  the connection-filter level).  Both sides evict each other; after the
  heal, the resurrection probes rediscover the minority, the minority
  refutes its death, and membership reconverges to the full ring.

After every wave the same tile workload is re-queried and recall is
compared against the warm baseline — the paper's quality metric, now
measured through real sockets against a ring that healed itself.

The measured numbers land in two places: this outcome's table (wall-clock
observations by the harness) and the peers' own metric registries
(``swim.detect_ms`` / ``repair.heal_ms`` histograms, ``swim.*`` and
``repair.push.*`` counters), which the harness snapshots over the
``metrics`` RPC — so the report cross-checks what the cluster *says*
happened against what the harness *saw* happen.

This experiment spawns OS processes and sleeps on real clocks, so it is
deliberately **not** part of ``repro experiments`` / ``runall``; run it
via ``benchmarks/bench_ext_live_churn.py`` or the CLI chaos drill
(``repro cluster --chaos``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.config import SystemConfig
from repro.errors import ReproError
from repro.metrics.report import format_table
from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange
from repro.rpc.cluster import LocalCluster

__all__ = ["LiveChurnExperiment", "LiveChurnOutcome", "LiveChurnWave"]

PAPER_DOMAIN = Domain("value", 0, 1000)


@dataclass(frozen=True)
class LiveChurnWave:
    """Measured outcome of one fault wave against the live cluster."""

    wave: str
    recall: float
    detect_ms: float | None
    repair_ms: float | None
    failovers: int
    suspected: int
    evicted: int
    repair_copies: int
    members: int

    def as_row(self) -> list[str]:
        def ms(value: float | None) -> str:
            return f"{value:.0f}" if value is not None else "-"

        return [
            self.wave,
            f"{self.recall:.3f}",
            ms(self.detect_ms),
            ms(self.repair_ms),
            str(self.failovers),
            str(self.suspected),
            str(self.evicted),
            str(self.repair_copies),
            str(self.members),
        ]


@dataclass
class LiveChurnOutcome:
    """All waves of one live-churn run."""

    waves: list[LiveChurnWave]
    n_peers: int
    replicas: int
    swim_interval_ms: float
    #: ``swim.detect_ms`` histogram stats aggregated over all peers:
    #: (count, mean_ms, max_ms) — the cluster's own detection latency.
    swim_detect_stats: tuple[int, float, float] = (0, 0.0, 0.0)
    #: ``repair.heal_ms`` aggregated the same way.
    repair_heal_stats: tuple[int, float, float] = (0, 0.0, 0.0)

    def wave(self, name: str) -> LiveChurnWave:
        for wave in self.waves:
            if wave.wave == name:
                return wave
        raise KeyError(name)

    def report(self) -> str:
        table = format_table(
            [
                "wave",
                "recall",
                "detect ms",
                "repair ms",
                "failovers",
                "suspected",
                "evicted",
                "repaired",
                "members",
            ],
            [wave.as_row() for wave in self.waves],
            title=(
                "Extension — live churn: self-healing socket cluster "
                f"({self.n_peers} peers, r={self.replicas}, swim tick "
                f"{self.swim_interval_ms:g} ms)"
            ),
        )
        d_count, d_mean, d_max = self.swim_detect_stats
        h_count, h_mean, h_max = self.repair_heal_stats
        tail = (
            f"peer-reported: swim.detect_ms n={d_count} "
            f"mean={d_mean:.0f} max={d_max:.0f}; repair.heal_ms "
            f"n={h_count} mean={h_mean:.0f} max={h_max:.0f}"
        )
        return f"{table}\n{tail}"


@dataclass
class LiveChurnExperiment:
    """Warm a live cluster, then kill / pause / partition it.

    The workload stores one partition per disjoint domain tile and
    re-queries the tiles (jittered by one unit) after every wave, so
    recall measures whether stored data stayed *reachable* through the
    churn, never whether it was re-inserted.
    """

    n_peers: int = 8
    replicas: int = 3
    tile_width: int = 50
    seed: int = 7
    swim_interval_ms: float = 300.0
    suspect_timeout_ms: float = 2_000.0
    repair_interval_ms: float = 400.0
    #: How long the pause wave holds SIGSTOP: long enough for a full
    #: probe round to fail (direct ping + indirect ping-req, ~1 s at the
    #: default tick) so the suspicion lands, short enough that the thawed
    #: peer refutes well before the suspicion ages into an eviction.
    pause_hold_s: float = 1.5
    partition_size: int = 2
    partition_hold_s: float = 6.0
    wait_timeout_s: float = 60.0
    domain: Domain = field(default_factory=lambda: PAPER_DOMAIN)

    @classmethod
    def quick(cls) -> "LiveChurnExperiment":
        return cls()

    @classmethod
    def paper(cls) -> "LiveChurnExperiment":
        return cls(
            n_peers=12,
            tile_width=30,
            swim_interval_ms=500.0,
            suspect_timeout_ms=2_000.0,
            partition_hold_s=8.0,
            wait_timeout_s=120.0,
        )

    # -- plumbing --------------------------------------------------------

    def _tiles(self) -> list[IntRange]:
        return [
            IntRange(low, min(low + self.tile_width - 1, self.domain.high))
            for low in range(
                self.domain.low, self.domain.high + 1, self.tile_width
            )
        ]

    def _wait_for(self, predicate, what: str) -> float:
        """Poll ``predicate`` until true; returns elapsed ms."""
        started = time.monotonic()
        deadline = started + self.wait_timeout_s
        while time.monotonic() < deadline:
            if predicate():
                return (time.monotonic() - started) * 1000.0
            time.sleep(0.1)
        raise ReproError(
            f"live-churn: timed out after {self.wait_timeout_s:g}s "
            f"waiting for {what}"
        )

    @staticmethod
    def _live(cluster: LocalCluster) -> set[str]:
        return {
            address
            for address in cluster.endpoints
            if cluster.alive(address) and address not in cluster.paused
        }

    @staticmethod
    def _hello_members(client, cluster, address: str) -> set[str] | None:
        import asyncio

        from repro.rpc import wire

        host, port = cluster.endpoints[address]
        try:
            hello = asyncio.run(
                wire.call(host, port, "hello", timeout_ms=2_000.0)
            )
        except ReproError:
            return None
        return set(hello["members"])

    def _converged(self, client, cluster) -> bool:
        """Every live peer's mirror equals the live set."""
        live = self._live(cluster)
        for address in live:
            members = self._hello_members(client, cluster, address)
            if members != live:
                return False
        return True

    def _replication_met(self, client, cluster) -> bool:
        """Every stored key has ``min(r, live)`` copies on live peers."""
        live = sorted(self._live(cluster))
        goal = min(self.replicas, len(live))
        copies: dict[tuple, int] = {}
        for address in live:
            try:
                entries = client.call(address, "entries")
            except ReproError:
                return False
            for identifier, descriptor, _partition, _primary in entries:
                key = (identifier, descriptor)
                copies[key] = copies.get(key, 0) + 1
        return bool(copies) and all(n >= goal for n in copies.values())

    def _counter_total(self, client, cluster, name: str) -> int:
        """Sum one counter over every live peer's metrics snapshot."""
        total = 0
        for address in self._live(cluster):
            try:
                snapshot = client.call(address, "metrics")
            except ReproError:
                continue
            for metric in snapshot.get("metrics", []):
                if metric.get("name") != name:
                    continue
                for series in metric.get("series", []):
                    total += int(series.get("value", 0))
        return total

    def _histogram_stats(
        self, client, cluster, name: str
    ) -> tuple[int, float, float]:
        """(count, mean, max) of one histogram over every live peer."""
        count, total, peak = 0, 0.0, 0.0
        for address in self._live(cluster):
            try:
                snapshot = client.call(address, "metrics")
            except ReproError:
                continue
            for metric in snapshot.get("metrics", []):
                if metric.get("name") != name:
                    continue
                for series in metric.get("series", []):
                    count += int(series.get("count", 0))
                    total += float(series.get("sum", 0.0))
                    peak = max(peak, float(series.get("max", 0.0)))
        return (count, total / count if count else 0.0, peak)

    def _recall(self, client, tiles: list[IntRange]) -> float:
        recalls = []
        for tile in tiles:
            # Shrink the query inside the stored tile so it exercises the
            # approximate-containment path; a single-point tile (the
            # domain remainder) is queried as-is.
            jittered = IntRange(min(tile.start + 1, tile.end), tile.end)
            recalls.append(client.query(jittered).recall)
        return sum(recalls) / max(1, len(recalls))

    # -- the run ---------------------------------------------------------

    def run(self) -> LiveChurnOutcome:
        config = SystemConfig(
            n_peers=self.n_peers,
            seed=self.seed,
            replicas=self.replicas,
            domain=self.domain,
        )
        tiles = self._tiles()
        waves: list[LiveChurnWave] = []
        with LocalCluster(
            self.n_peers,
            config,
            swim_interval_ms=self.swim_interval_ms,
            suspect_timeout_ms=self.suspect_timeout_ms,
            repair_interval_ms=self.repair_interval_ms,
        ) as cluster:
            with cluster.client() as client:
                bootstrap = next(iter(cluster.endpoints))
                # Warm: store every tile, then run one throwaway recall
                # pass so the jittered query forms are stored too (cold
                # store-on-miss), then measure the baseline — which must
                # now hit everything.
                for tile in tiles:
                    client.query(tile)
                self._recall(client, tiles)
                self._wait_for(
                    lambda: self._replication_met(client, cluster),
                    "warm replication",
                )
                warm = self._recall(client, tiles)
                waves.append(
                    LiveChurnWave(
                        wave="warm",
                        recall=warm,
                        detect_ms=None,
                        repair_ms=None,
                        failovers=0,
                        suspected=0,
                        evicted=0,
                        repair_copies=0,
                        members=len(client.members),
                    )
                )

                waves.append(
                    self._kill_wave(cluster, client, tiles, bootstrap)
                )
                waves.append(
                    self._pause_wave(cluster, client, tiles, bootstrap)
                )
                if self.partition_size > 0:
                    waves.append(
                        self._partition_wave(cluster, client, tiles, bootstrap)
                    )

                detect_stats = self._histogram_stats(
                    client, cluster, "swim.detect_ms"
                )
                heal_stats = self._histogram_stats(
                    client, cluster, "repair.heal_ms"
                )
        return LiveChurnOutcome(
            waves=waves,
            n_peers=self.n_peers,
            replicas=self.replicas,
            swim_interval_ms=self.swim_interval_ms,
            swim_detect_stats=detect_stats,
            repair_heal_stats=heal_stats,
        )

    def _kill_wave(
        self, cluster, client, tiles, bootstrap: str
    ) -> LiveChurnWave:
        # Any entry-holding non-bootstrap peer is a fine victim: with
        # r >= 2 its death must be absorbed by failover, and its entries
        # must come back to full replication without us asking.
        victim = None
        for address in sorted(self._live(cluster) - {bootstrap}):
            if client.call(address, "entries"):
                victim = address
                break
        if victim is None:
            raise ReproError("live-churn: no entry-holding victim to kill")
        suspected_before = self._counter_total(
            client, cluster, "swim.suspected"
        )
        cluster.kill(victim)
        detect_ms = self._wait_for(
            lambda: self._converged(client, cluster),
            f"every mirror to evict {victim}",
        )
        repair_ms = detect_ms + self._wait_for(
            lambda: self._replication_met(client, cluster),
            "post-kill re-replication",
        )
        client.refresh()
        failovers_before = client.system.counters.failovers
        recall = self._recall(client, tiles)
        return LiveChurnWave(
            wave="kill",
            recall=recall,
            detect_ms=detect_ms,
            repair_ms=repair_ms,
            failovers=int(
                client.system.counters.failovers - failovers_before
            ),
            suspected=self._counter_total(client, cluster, "swim.suspected")
            - suspected_before,
            evicted=self._counter_total(client, cluster, "swim.dead"),
            repair_copies=self._counter_total(
                client, cluster, "repair.push.copies"
            ),
            members=len(client.members),
        )

    def _pause_wave(
        self, cluster, client, tiles, bootstrap: str
    ) -> LiveChurnWave:
        target = sorted(self._live(cluster) - {bootstrap})[0]
        held_before = len(client.call(target, "entries"))
        suspected_before = self._counter_total(
            client, cluster, "swim.suspected"
        )
        cluster.pause(target)
        time.sleep(self.pause_hold_s)
        cluster.resume(target)
        detect_ms = self._wait_for(
            lambda: self._converged(client, cluster),
            f"{target} to rejoin every mirror",
        )
        held_after = len(client.call(target, "entries"))
        if held_after < held_before:
            raise ReproError(
                f"live-churn: {target} lost entries over the pause "
                f"({held_before} -> {held_after})"
            )
        client.refresh()
        recall = self._recall(client, tiles)
        return LiveChurnWave(
            wave="pause",
            recall=recall,
            detect_ms=detect_ms,
            repair_ms=None,
            failovers=0,
            suspected=self._counter_total(client, cluster, "swim.suspected")
            - suspected_before,
            evicted=0,
            repair_copies=0,
            members=len(client.members),
        )

    def _partition_wave(
        self, cluster, client, tiles, bootstrap: str
    ) -> LiveChurnWave:
        live = sorted(self._live(cluster))
        minority = [a for a in live if a != bootstrap][: self.partition_size]
        majority = [a for a in live if a not in minority]
        cluster.partition(minority, majority)

        def split_detected() -> bool:
            seen = self._hello_members(client, cluster, bootstrap)
            return seen is not None and seen == set(majority)

        detect_ms = self._wait_for(
            lambda: split_detected(), "the majority side to evict the minority"
        )
        time.sleep(max(0.0, self.partition_hold_s - detect_ms / 1000.0))
        cluster.heal()
        repair_ms = self._wait_for(
            lambda: self._converged(client, cluster)
            and self._replication_met(client, cluster),
            "post-heal reconvergence",
        )
        client.refresh()
        recall = self._recall(client, tiles)
        return LiveChurnWave(
            wave="partition",
            recall=recall,
            detect_ms=detect_ms,
            repair_ms=repair_ms,
            failovers=0,
            suspected=0,
            evicted=self._counter_total(client, cluster, "swim.dead"),
            repair_copies=self._counter_total(
                client, cluster, "repair.push.copies"
            ),
            members=len(client.members),
        )
