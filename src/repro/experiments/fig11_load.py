"""Figure 11: load balance — partitions stored per node.

Setup from Section 5.3: the system stores 5 x 10^4 partitions — 10^4
unique ranges, "each stored with five different identifiers computed by
five different sets of hash functions" — and the figure reports the mean
and the 1st/99th percentiles of partitions per node, (a) sweeping the
number of peers with placements fixed, and (b) sweeping stored partitions
in a 1000-node system.

Placement only depends on identifiers and ring membership, so this
experiment computes ownership directly (vectorized successor-of), which is
exactly what the paper's modified Chord simulator measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lsh import DomainMinHashIndex, LSHIdentifierScheme, family_for_domain
from repro.chord.hashing import rehash_for_placement
from repro.chord.ring import ChordRing
from repro.metrics.report import format_table
from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange
from repro.util.rng import derive_rng
from repro.util.stats import SummaryStats, summarize

__all__ = ["LoadBalanceExperiment", "LoadOutcome"]

PAPER_PEER_COUNTS = (100, 250, 500, 1000, 2500, 5000)
PAPER_UNIQUE_PARTITIONS = 10_000
PAPER_PARTITION_SWEEP = (35_000, 70_000, 105_000, 140_000, 180_000)
PAPER_SWEEP_PEERS = 1000


def unique_uniform_ranges(
    count: int, domain: Domain, seed: int
) -> list[IntRange]:
    """``count`` distinct uniform ranges (the paper stores unique ranges)."""
    rng = derive_rng(seed, "load/unique-ranges")
    seen: set[IntRange] = set()
    out: list[IntRange] = []
    while len(out) < count:
        a = int(rng.integers(domain.low, domain.high + 1))
        b = int(rng.integers(domain.low, domain.high + 1))
        r = IntRange(min(a, b), max(a, b))
        if r not in seen:
            seen.add(r)
            out.append(r)
    return out


def placements_per_node(ring: ChordRing, identifiers: np.ndarray) -> np.ndarray:
    """Partitions owned by each node, via vectorized successor mapping."""
    node_ids = np.asarray(ring.node_ids, dtype=np.uint64)
    positions = np.searchsorted(node_ids, identifiers.astype(np.uint64))
    positions[positions == len(node_ids)] = 0  # wrap to the lowest node
    return np.bincount(positions, minlength=len(node_ids))


@dataclass
class LoadOutcome:
    """Both panels of Figure 11."""

    by_peers: list[tuple[int, SummaryStats]]
    by_partitions: list[tuple[int, SummaryStats]]
    sweep_peers: int

    def report(self) -> str:
        rows_a = [
            [n, f"{s.p01:.0f}", f"{s.mean:.1f}", f"{s.p99:.0f}"]
            for n, s in self.by_peers
        ]
        total_fixed = int(
            round(self.by_peers[0][1].mean * self.by_peers[0][1].count)
        )
        table_a = format_table(
            ["peers", "p1", "mean", "p99"],
            rows_a,
            title=(
                f"Figure 11a — partitions per node, {total_fixed} placements"
            ),
        )
        rows_b = [
            [total, f"{s.p01:.0f}", f"{s.mean:.1f}", f"{s.p99:.0f}"]
            for total, s in self.by_partitions
        ]
        table_b = format_table(
            ["partitions", "p1", "mean", "p99"],
            rows_b,
            title=f"Figure 11b — partitions per node in a {self.sweep_peers}-node system",
        )
        return f"{table_a}\n\n{table_b}"


@dataclass
class LoadBalanceExperiment:
    """Compute both Figure 11 panels."""

    peer_counts: tuple[int, ...] = PAPER_PEER_COUNTS
    unique_partitions: int = PAPER_UNIQUE_PARTITIONS
    partition_sweep: tuple[int, ...] = PAPER_PARTITION_SWEEP
    sweep_peers: int = PAPER_SWEEP_PEERS
    family: str = "approx-min-wise"
    l: int = 5
    k: int = 20
    seed: int = 2003
    domain: Domain = field(default_factory=lambda: Domain("value", 0, 1000))
    #: "rehash" (default) places buckets via SHA-1 of the identifier, the
    #: standard DHT discipline that reproduces the paper's reported balance;
    #: "direct" uses raw LSH identifiers and exhibits severe concentration
    #: (see the placement ablation benchmark).
    placement: str = "rehash"

    @classmethod
    def paper(cls) -> "LoadBalanceExperiment":
        return cls()

    @classmethod
    def quick(cls) -> "LoadBalanceExperiment":
        return cls(
            peer_counts=(50, 100, 200),
            unique_partitions=800,
            partition_sweep=(2_000, 4_000, 8_000),
            sweep_peers=100,
        )

    def _identifier_matrix(self, n_unique: int) -> np.ndarray:
        """Identifiers for the first ``n_unique`` unique ranges, flattened
        (l placements per range)."""
        scheme = LSHIdentifierScheme.from_family(
            family_for_domain(self.family, self.domain),
            l=self.l,
            k=self.k,
            seed=self.seed,
        )
        index = DomainMinHashIndex(scheme, self.domain)
        ranges = unique_uniform_ranges(n_unique, self.domain, self.seed)
        rows = [index.identifiers(r) for r in ranges]
        flat = np.asarray(rows, dtype=np.uint64).reshape(-1)
        if self.placement == "rehash":
            flat = np.asarray(
                [rehash_for_placement(int(i)) for i in flat], dtype=np.uint64
            )
        return flat

    def run(self) -> LoadOutcome:
        """Both sweeps; ring membership is rebuilt per point, placements
        are computed once per identifier set."""
        max_unique = max(
            self.unique_partitions,
            max(self.partition_sweep) // self.l,
        )
        all_identifiers = self._identifier_matrix(max_unique)

        fixed = all_identifiers[: self.unique_partitions * self.l]
        by_peers: list[tuple[int, SummaryStats]] = []
        for n_peers in self.peer_counts:
            ring = ChordRing(m=32)
            ring.add_nodes(n_peers)
            loads = placements_per_node(ring, fixed)
            by_peers.append((n_peers, summarize(loads)))

        ring = ChordRing(m=32)
        ring.add_nodes(self.sweep_peers)
        by_partitions: list[tuple[int, SummaryStats]] = []
        for total in self.partition_sweep:
            subset = all_identifiers[:total]
            loads = placements_per_node(ring, subset)
            by_partitions.append((total, summarize(loads)))
        return LoadOutcome(
            by_peers=by_peers,
            by_partitions=by_partitions,
            sweep_peers=self.sweep_peers,
        )
