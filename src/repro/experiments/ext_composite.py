"""Extension (Section 5.2) — composite answers from all located partitions.

Quantifies how much recall the querying peer gains by combining every
candidate partition it receives (one per contacted owner) instead of
keeping only the best single match, and how often the residual-range
message ("go to the source for the rest") would be empty.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.composite import query_composite
from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.experiments.fig6_7_quality import PAPER_DOMAIN, WARMUP_FRACTION
from repro.metrics.recall import fraction_fully_answered
from repro.metrics.report import format_table
from repro.workloads.generators import UniformRangeWorkload
from repro.workloads.trace import WorkloadTrace

__all__ = ["CompositeAnswerExperiment", "CompositeOutcome"]


@dataclass
class CompositeOutcome:
    """Best-single vs composite recall over one workload."""

    single_recalls: list[float]
    composite_recalls: list[float]
    gained_query_pct: float
    mean_gain: float

    def report(self) -> str:
        table = format_table(
            ["scheme", "fully answered", "mean recall"],
            [
                [
                    "best single",
                    f"{fraction_fully_answered(self.single_recalls):.1f}%",
                    f"{_mean(self.single_recalls):.3f}",
                ],
                [
                    "composite",
                    f"{fraction_fully_answered(self.composite_recalls):.1f}%",
                    f"{_mean(self.composite_recalls):.3f}",
                ],
            ],
            title="Extension — composing all located partitions (Sec 5.2)",
        )
        return (
            f"{table}\n"
            f"composition improves {self.gained_query_pct:.1f}% of queries "
            f"(mean gain {self.mean_gain:.4f} recall)"
        )


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


@dataclass
class CompositeAnswerExperiment:
    """One system, one workload, both answer-composition policies."""

    family: str = "approx-min-wise"
    matcher: str = "containment"
    n_queries: int = 10_000
    n_peers: int = 1000
    seed: int = 2003
    workload_seed: int = 77

    @classmethod
    def paper(cls) -> "CompositeAnswerExperiment":
        return cls()

    @classmethod
    def quick(cls) -> "CompositeAnswerExperiment":
        return cls(n_queries=600, n_peers=120)

    def run(self) -> CompositeOutcome:
        system = RangeSelectionSystem(
            SystemConfig(
                n_peers=self.n_peers,
                family=self.family,
                matcher=self.matcher,
                domain=PAPER_DOMAIN,
                seed=self.seed,
            )
        )
        trace = WorkloadTrace(
            UniformRangeWorkload(
                PAPER_DOMAIN, count=self.n_queries, seed=self.workload_seed
            )
        )
        singles: list[float] = []
        composites: list[float] = []
        for query in trace:
            answer = query_composite(system, query)
            singles.append(answer.best_single_recall)
            composites.append(answer.recall)
        cut = int(len(trace) * WARMUP_FRACTION)
        singles, composites = singles[cut:], composites[cut:]
        gains = [c - s for s, c in zip(singles, composites)]
        gained = sum(1 for g in gains if g > 1e-12)
        return CompositeOutcome(
            single_recalls=singles,
            composite_recalls=composites,
            gained_query_pct=100.0 * gained / len(gains),
            mean_gain=sum(gains) / len(gains),
        )
