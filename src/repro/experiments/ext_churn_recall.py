"""Extension — recall under churn: replication factor x crash rate.

The paper's evaluation assumes every peer that stored a bucket entry is
still there to answer (Section 6 lists "node joining and leaving the
system" as future work).  This experiment measures what crashes actually
cost, and what successor-list replication plus anti-entropy repair buys
back.

The workload is chosen so redundancy *within* the LSH scheme does not mask
the loss.  Warm partitions are disjoint width-``tile_width`` tiles of the
domain; timed queries are the same tiles jittered by one unit, giving a
query/partition similarity of ``(w-1)/(w+1)`` (~0.94 for w=30).  At
``k = 20`` a group matches with probability ``~0.94**20 ~ 0.26``, so a
typical query reaches its stored tile through only one or two of its ``l``
identifiers — losing that identifier's owner loses the answer, unlike a
resubmit-the-same-range workload where all ``l`` groups match and recall
barely moves (see ``ext_event_latency``, where 10% crashes cost under two
recall points).

Churn arrives in waves: each wave crashes a slice of the doomed peers and,
in the repaired configuration, the anti-entropy task runs between waves —
data survives as long as one of an identifier's ``r`` replicas lives past
each repair round.  Expected shapes: ``r = 1`` loses recall roughly in
proportion to the per-identifier owner-death rate; ``r = 3`` without
repair recovers most of it (all three replicas must die); ``r = 3`` with
repair stays within a few points of fault-free, with failover lookups
doing the serving.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.metrics.latency import LatencyCollector
from repro.metrics.report import format_table
from repro.net.latency import SeededLatency
from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange
from repro.sim.network import RetryPolicy
from repro.sim.query import AsyncQueryEngine
from repro.sim.repair import ReplicaRepairer
from repro.util.rng import derive_rng

__all__ = ["ChurnRecallExperiment", "ChurnRecallOutcome", "ChurnCell", "ReplicationMode"]

PAPER_DOMAIN = Domain("value", 0, 1000)


@dataclass(frozen=True)
class ReplicationMode:
    """One replication configuration under test."""

    replicas: int
    repair: bool

    @property
    def label(self) -> str:
        suffix = "+repair" if self.repair else ""
        return f"r={self.replicas}{suffix}"


@dataclass(frozen=True)
class ChurnCell:
    """Measured outcome of one (mode, crash fraction) setting."""

    mode: ReplicationMode
    crash_fraction: float
    crashed_peers: int
    mean_recall: float
    matched_fraction: float
    failovers: int
    chain_timeouts: int
    degraded_queries: int
    misses: int
    repairs: int
    p95_ms: float
    queries: int

    def as_row(self) -> list[str]:
        return [
            self.mode.label,
            f"{self.crash_fraction:.0%}",
            f"{self.mean_recall:.3f}",
            f"{self.matched_fraction:.3f}",
            str(self.failovers),
            str(self.chain_timeouts),
            str(self.degraded_queries),
            str(self.misses),
            str(self.repairs),
            f"{self.p95_ms:.0f}",
        ]


@dataclass
class ChurnRecallOutcome:
    """All cells of the replication x churn sweep."""

    cells: list[ChurnCell]
    n_peers: int
    tile_width: int
    policy: RetryPolicy

    def cell(self, mode_label: str, crash_fraction: float) -> ChurnCell:
        """The measured cell for one sweep setting."""
        for cell in self.cells:
            if (
                cell.mode.label == mode_label
                and cell.crash_fraction == crash_fraction
            ):
                return cell
        raise KeyError((mode_label, crash_fraction))

    def recall_drop(self, mode_label: str, crash_fraction: float) -> float:
        """Recall lost versus the same mode's fault-free cell."""
        baseline = self.cell(mode_label, 0.0).mean_recall
        return baseline - self.cell(mode_label, crash_fraction).mean_recall

    def report(self) -> str:
        return format_table(
            [
                "mode",
                "crashed",
                "recall",
                "matched",
                "failovers",
                "timeouts",
                "degraded",
                "misses",
                "repairs",
                "p95 ms",
            ],
            [cell.as_row() for cell in self.cells],
            title=(
                "Extension — recall under churn, replication x crash rate "
                f"({self.n_peers} peers, width-{self.tile_width} tiles, "
                "jitter-1 queries)"
            ),
        )


@dataclass
class ChurnRecallExperiment:
    """Sweep replication mode x crashed-peer fraction against recall.

    Each cell builds a fresh system, stores one partition per domain tile
    (replicated per the mode), crashes peers in ``churn_waves`` waves —
    running an anti-entropy round between waves when the mode repairs —
    and then runs jittered tile queries on the event-driven engine with
    failover.  Stores are disabled during the timed phase so recall
    measures surviving data, not re-insertion.
    """

    n_peers: int = 400
    tile_width: int = 30
    timed_queries: int = 300
    modes: tuple[ReplicationMode, ...] = (
        ReplicationMode(1, False),
        ReplicationMode(3, False),
        ReplicationMode(3, True),
    )
    crash_fractions: tuple[float, ...] = (0.0, 0.10, 0.20)
    churn_waves: int = 4
    latency_low_ms: float = 10.0
    latency_high_ms: float = 100.0
    policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(timeout_ms=400.0, max_retries=1)
    )
    repair_interval_ms: float = 5_000.0
    domain: Domain = field(default_factory=lambda: PAPER_DOMAIN)
    seed: int = 2003

    @classmethod
    def paper(cls) -> "ChurnRecallExperiment":
        return cls()

    @classmethod
    def quick(cls) -> "ChurnRecallExperiment":
        return cls(
            n_peers=100,
            timed_queries=120,
            crash_fractions=(0.0, 0.20),
            churn_waves=2,
        )

    def _tiles(self) -> list[IntRange]:
        width = self.tile_width
        low, high = self.domain.low, self.domain.high
        return [
            IntRange(start, start + width - 1)
            for start in range(low, high - width + 2, width)
        ]

    def _run_cell(
        self, mode: ReplicationMode, crash_fraction: float
    ) -> ChurnCell:
        system = RangeSelectionSystem(
            SystemConfig(
                n_peers=self.n_peers,
                domain=self.domain,
                replicas=mode.replicas,
                store_on_miss=False,
                seed=self.seed,
            )
        )
        tiles = self._tiles()
        for tile in tiles:
            system.store_partition(tile)
        engine = AsyncQueryEngine(
            system,
            latency=SeededLatency(
                self.latency_low_ms, self.latency_high_ms, seed=self.seed
            ),
            policy=self.policy,
            seed=self.seed,
        )
        repairer = ReplicaRepairer(
            engine, interval_ms=self.repair_interval_ms, policy=self.policy
        )

        crash_rng = derive_rng(self.seed, "churn-recall/crashes")
        node_ids = system.router.node_ids
        n_crashed = int(round(crash_fraction * len(node_ids)))
        doomed = [
            node_ids[int(index)]
            for index in crash_rng.choice(
                len(node_ids), size=n_crashed, replace=False
            )
        ]
        waves = max(1, self.churn_waves)
        for wave in range(waves):
            for peer_id in doomed[wave::waves]:
                engine.crash_peer(peer_id)
            if mode.repair:
                engine.sim.run_until_complete(repairer.run_round())

        collector = LatencyCollector(registry=system.metrics)
        jitter_rng = derive_rng(self.seed, "churn-recall/jitter")
        low, high = self.domain.low, self.domain.high
        for _ in range(self.timed_queries):
            tile = tiles[int(jitter_rng.integers(len(tiles)))]
            shift = 1 if jitter_rng.integers(2) else -1
            if tile.start + shift < low or tile.end + shift > high:
                shift = -shift
            query = IntRange(tile.start + shift, tile.end + shift)
            collector.add(engine.run(query))
        summary = collector.phase_summary()["total"]
        return ChurnCell(
            mode=mode,
            crash_fraction=crash_fraction,
            crashed_peers=n_crashed,
            mean_recall=collector.mean_recall(),
            matched_fraction=1.0 - collector.misses / max(1, collector.queries),
            failovers=collector.failovers,
            chain_timeouts=collector.chain_timeouts,
            degraded_queries=collector.degraded_queries,
            misses=collector.misses,
            repairs=repairer.stats.copies_created,
            p95_ms=summary.p95,
            queries=collector.queries,
        )

    def run(self) -> ChurnRecallOutcome:
        cells = [
            self._run_cell(mode, fraction)
            for mode in self.modes
            for fraction in self.crash_fractions
        ]
        return ChurnRecallOutcome(
            cells=cells,
            n_peers=self.n_peers,
            tile_width=self.tile_width,
            policy=self.policy,
        )
