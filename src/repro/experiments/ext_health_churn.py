"""Extension — health telemetry under churn: deficits, audits, skew.

Figure 11 takes one static look at load balance.  This experiment runs
the health subsystem while the system is actually being damaged: peers
crash in waves under an event-driven workload, the
:class:`~repro.obs.TelemetrySampler` records the replica-deficit and
load time series on the virtual clock, and the
:class:`~repro.obs.RingAuditor` grades the final state.

Expected shapes: ``r = 1`` accumulates unrepairable losses (critical
findings) because a crashed owner takes the only copy with it; ``r = 3``
without repair reports a persistent deficit (warnings) that grows with
each wave; ``r = 3`` with repair shows the deficit spike at each wave and
decay back toward zero after the next anti-entropy round — the
self-healing signature, now visible as a time series rather than
inferred from recall.  Load skew (Gini, max/mean) stays in the Fig 11
band throughout, since crashes remove servers, not placements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SystemConfig
from repro.core.system import RangeSelectionSystem
from repro.metrics.report import format_table, sparkline
from repro.net.latency import SeededLatency
from repro.obs.health import RingAuditor, TelemetrySampler, skew_stats
from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange
from repro.sim.network import RetryPolicy
from repro.sim.query import AsyncQueryEngine
from repro.sim.repair import ReplicaRepairer
from repro.util.rng import derive_rng

from repro.experiments.ext_churn_recall import ReplicationMode

__all__ = ["HealthChurnExperiment", "HealthChurnOutcome", "HealthCell"]

PAPER_DOMAIN = Domain("value", 0, 1000)


@dataclass(frozen=True)
class HealthCell:
    """Measured health trajectory of one replication mode."""

    mode: ReplicationMode
    crashed_peers: int
    samples: int
    #: The sampled ``health.replica_deficit`` series, oldest first.
    deficit_series: tuple[float, ...]
    peak_deficit: float
    final_deficit: float
    critical_findings: int
    warning_findings: int
    gini: float
    max_mean: float
    failovers: int
    queries: int

    def as_row(self) -> list[str]:
        return [
            self.mode.label,
            str(self.crashed_peers),
            str(self.samples),
            f"{self.peak_deficit:.0f}",
            f"{self.final_deficit:.0f}",
            str(self.critical_findings),
            str(self.warning_findings),
            f"{self.gini:.3f}",
            f"{self.max_mean:.2f}",
            str(self.failovers),
            sparkline(list(self.deficit_series), width=24),
        ]


@dataclass
class HealthChurnOutcome:
    """All modes of the health-under-churn sweep."""

    cells: list[HealthCell]
    n_peers: int
    crash_fraction: float
    sample_interval_ms: float

    def cell(self, mode_label: str) -> HealthCell:
        """The measured cell for one replication mode."""
        for cell in self.cells:
            if cell.mode.label == mode_label:
                return cell
        raise KeyError(mode_label)

    def report(self) -> str:
        return format_table(
            [
                "mode",
                "crashed",
                "samples",
                "peak def",
                "final def",
                "critical",
                "warning",
                "gini",
                "max/mean",
                "failovers",
                "deficit trend",
            ],
            [cell.as_row() for cell in self.cells],
            title=(
                "Extension — ring health under churn "
                f"({self.n_peers} peers, {self.crash_fraction:.0%} crashed "
                f"in waves, sampled every {self.sample_interval_ms:g} ms)"
            ),
        )


@dataclass
class HealthChurnExperiment:
    """Track replica deficits, audit findings and load skew under churn.

    Each mode builds a fresh replicated system, stores one partition per
    domain tile, starts a periodic :class:`TelemetrySampler` on the
    event-driven clock, then alternates crash waves with timed jittered
    queries (which drive the virtual clock, firing sampler and repair
    ticks).  The final audit and skew statistics summarize where each
    configuration ends up.
    """

    n_peers: int = 300
    tile_width: int = 30
    queries_per_phase: int = 40
    modes: tuple[ReplicationMode, ...] = (
        ReplicationMode(1, False),
        ReplicationMode(3, False),
        ReplicationMode(3, True),
    )
    crash_fraction: float = 0.20
    churn_waves: int = 4
    sample_interval_ms: float = 500.0
    latency_low_ms: float = 10.0
    latency_high_ms: float = 100.0
    policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(timeout_ms=400.0, max_retries=1)
    )
    repair_interval_ms: float = 5_000.0
    domain: Domain = field(default_factory=lambda: PAPER_DOMAIN)
    seed: int = 2003

    @classmethod
    def paper(cls) -> "HealthChurnExperiment":
        return cls()

    @classmethod
    def quick(cls) -> "HealthChurnExperiment":
        return cls(n_peers=80, queries_per_phase=15, churn_waves=2)

    def _tiles(self) -> list[IntRange]:
        width = self.tile_width
        low, high = self.domain.low, self.domain.high
        return [
            IntRange(start, start + width - 1)
            for start in range(low, high - width + 2, width)
        ]

    def _run_cell(self, mode: ReplicationMode) -> HealthCell:
        system = RangeSelectionSystem(
            SystemConfig(
                n_peers=self.n_peers,
                domain=self.domain,
                replicas=mode.replicas,
                store_on_miss=False,
                seed=self.seed,
            )
        )
        tiles = self._tiles()
        for tile in tiles:
            system.store_partition(tile)
        engine = AsyncQueryEngine(
            system,
            latency=SeededLatency(
                self.latency_low_ms, self.latency_high_ms, seed=self.seed
            ),
            policy=self.policy,
            seed=self.seed,
        )
        repairer = ReplicaRepairer(
            engine, interval_ms=self.repair_interval_ms, policy=self.policy
        )
        sampler = TelemetrySampler(
            system,
            sim=engine.sim,
            is_alive=engine.net.is_alive,
            interval_ms=self.sample_interval_ms,
        )
        sampler.sample_once()
        sampler.start()
        if mode.repair:
            repairer.start()

        crash_rng = derive_rng(self.seed, "health-churn/crashes")
        node_ids = system.router.node_ids
        n_crashed = int(round(self.crash_fraction * len(node_ids)))
        doomed = [
            node_ids[int(index)]
            for index in crash_rng.choice(
                len(node_ids), size=n_crashed, replace=False
            )
        ]
        jitter_rng = derive_rng(self.seed, "health-churn/jitter")
        low, high = self.domain.low, self.domain.high
        queries = 0

        def run_phase() -> None:
            nonlocal queries
            for _ in range(self.queries_per_phase):
                tile = tiles[int(jitter_rng.integers(len(tiles)))]
                shift = 1 if jitter_rng.integers(2) else -1
                if tile.start + shift < low or tile.end + shift > high:
                    shift = -shift
                engine.run(IntRange(tile.start + shift, tile.end + shift))
                queries += 1

        waves = max(1, self.churn_waves)
        run_phase()
        for wave in range(waves):
            for peer_id in doomed[wave::waves]:
                engine.crash_peer(peer_id)
            run_phase()
        if mode.repair:
            # One final deterministic round so the end state reflects a
            # completed repair, not wherever the periodic tick happened
            # to be.
            engine.sim.run_until_complete(repairer.run_round())
            repairer.stop()
        sampler.stop()
        sampler.sample_once()

        audit = RingAuditor(system, is_alive=engine.net.is_alive).audit()
        deficit_metric = system.metrics.timeseries("health.replica_deficit")
        deficit_series = tuple(deficit_metric.values())
        alive_loads = [
            system.stores[nid].partition_count
            for nid in node_ids
            if engine.net.is_alive(nid)
        ]
        skew = skew_stats(alive_loads)
        counts = audit.counts
        return HealthCell(
            mode=mode,
            crashed_peers=n_crashed,
            samples=sampler.samples_taken,
            deficit_series=deficit_series,
            peak_deficit=max(deficit_series, default=0.0),
            final_deficit=deficit_series[-1] if deficit_series else 0.0,
            critical_findings=counts["critical"],
            warning_findings=counts["warning"],
            gini=skew.gini,
            max_mean=skew.max_mean,
            failovers=int(system.counters.failovers),
            queries=queries,
        )

    def run(self) -> HealthChurnOutcome:
        cells = [self._run_cell(mode) for mode in self.modes]
        return HealthChurnOutcome(
            cells=cells,
            n_peers=self.n_peers,
            crash_fraction=self.crash_fraction,
            sample_interval_ms=self.sample_interval_ms,
        )
