"""Figure 9: containment matching versus Jaccard matching.

Both schemes hash with approximate min-wise permutations; they differ only
in how the owning peer ranks candidates *within a bucket*.  The paper:
"Using the containment similarity measure the percentage of queries
completely answered improves from approximately 35% to almost 60% ... and
for approximately 85% of the queries the recall is better."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.fig6_7_quality import MatchQualityExperiment, QualityOutcome
from repro.metrics.recall import recall_cdf, recall_comparison
from repro.metrics.report import format_recall_cdf

__all__ = ["ContainmentMatchingExperiment", "ContainmentOutcome"]


@dataclass
class ContainmentOutcome:
    """Paired results of the two matchers over one trace."""

    jaccard: QualityOutcome
    containment: QualityOutcome

    def comparison(self) -> dict[str, float]:
        """Paired per-query comparison statistics."""
        return recall_comparison(self.jaccard.recalls, self.containment.recalls)

    def report(self) -> str:
        """Figure 9 as side-by-side recall CDFs plus the paired summary."""
        series = {
            "containment": recall_cdf(self.containment.recalls),
            "jaccard": recall_cdf(self.jaccard.recalls),
        }
        table = format_recall_cdf(
            series, title="Figure 9 — recall with containment-similarity matching"
        )
        stats = self.comparison()
        summary = (
            f"fully answered: jaccard {stats['baseline_full_pct']:.0f}% -> "
            f"containment {stats['variant_full_pct']:.0f}%; "
            f"recall better for {stats['improved_pct']:.0f}% of queries, "
            f"worse for {stats['worsened_pct']:.0f}%"
        )
        return f"{table}\n{summary}"


@dataclass
class ContainmentMatchingExperiment:
    """Same family + trace, two in-bucket matchers."""

    family: str = "approx-min-wise"
    scale: str = "paper"

    @classmethod
    def paper(cls) -> "ContainmentMatchingExperiment":
        return cls(scale="paper")

    @classmethod
    def quick(cls) -> "ContainmentMatchingExperiment":
        return cls(scale="quick")

    def run(self) -> ContainmentOutcome:
        make = (
            MatchQualityExperiment.paper
            if self.scale == "paper"
            else MatchQualityExperiment.quick
        )
        jaccard_exp = make(self.family, matcher="jaccard")
        trace = jaccard_exp.workload()
        jaccard_exp.trace = trace
        containment_exp = make(self.family, matcher="containment")
        containment_exp.trace = trace
        return ContainmentOutcome(
            jaccard=jaccard_exp.run(),
            containment=containment_exp.run(),
        )
