"""Extension (Section 6) — statistics-based query planning.

Compares three per-leaf routing policies on the same workloads:

- **always probe**: the paper's procedure — hash, route to l owners, fall
  back to the source on a miss;
- **always direct**: ignore the cache, go to the source;
- **adaptive**: :class:`AdaptiveRoutingProvider`, which learns per
  (relation, attribute) hit rates and picks the cheaper action.

Two workload regimes make the trade-off visible: a *scattered* stream of
mostly-unrelated ranges (the cache rarely helps, probing wastes hops) and a
*clustered* stream of similar ranges (the cache almost always helps).  The
adaptive planner should track the better fixed policy in both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SystemConfig
from repro.core.p2pdb import CachePartitionProvider
from repro.core.stats_planner import AdaptiveRoutingProvider, CostModel
from repro.core.system import RangeSelectionSystem
from repro.db.plan.executor import PartitionProvider, SourceProvider
from repro.db.plan.nodes import LeafSelection
from repro.db.predicates import RangePredicate
from repro.db.relation import Relation
from repro.db.catalog import Catalog
from repro.db.schema import Attribute, AttrType, GlobalSchema, RelationSchema
from repro.metrics.report import format_table
from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange
from repro.workloads.generators import ClusteredRangeWorkload, UniformRangeWorkload

__all__ = ["StatsPlanningExperiment", "PlanningOutcome"]

VALUE_DOMAIN = Domain("value", 0, 1000)


def synthetic_catalog() -> Catalog:
    """One relation R(value) holding every domain value once."""
    schema = GlobalSchema(
        (
            RelationSchema(
                "R", (Attribute("value", AttrType.INT, VALUE_DOMAIN),)
            ),
        )
    )
    catalog = Catalog(schema)
    relation: Relation = catalog.relation("R")
    for value in VALUE_DOMAIN.full_range():
        relation.insert_encoded((value,))
    return catalog


@dataclass
class PolicyCost:
    """Accumulated cost of one policy over one workload."""

    hops: int = 0
    source_accesses: int = 0

    def total(self, model: CostModel) -> float:
        return self.hops * model.hop_cost + self.source_accesses * model.source_cost


@dataclass
class PlanningOutcome:
    """Cost per policy per workload regime."""

    costs: dict[str, dict[str, PolicyCost]]  # regime -> policy -> cost
    model: CostModel

    def total(self, regime: str, policy: str) -> float:
        return self.costs[regime][policy].total(self.model)

    def report(self) -> str:
        regimes = sorted(self.costs)
        policies = ["always-probe", "always-direct", "adaptive"]
        rows = []
        for regime in regimes:
            for policy in policies:
                cost = self.costs[regime][policy]
                rows.append(
                    [
                        regime,
                        policy,
                        cost.hops,
                        cost.source_accesses,
                        f"{cost.total(self.model):.0f}",
                    ]
                )
        return format_table(
            ["workload", "policy", "hops", "source accesses", "cost"],
            rows,
            title=(
                "Extension — statistics-based routing "
                f"(hop={self.model.hop_cost:g}, source={self.model.source_cost:g})"
            ),
        )


@dataclass
class StatsPlanningExperiment:
    """Run the three policies over scattered and clustered workloads."""

    n_queries: int = 4000
    n_peers: int = 300
    seed: int = 2003
    model: CostModel = CostModel(hop_cost=1.0, source_cost=50.0)

    @classmethod
    def paper(cls) -> "StatsPlanningExperiment":
        return cls()

    @classmethod
    def quick(cls) -> "StatsPlanningExperiment":
        return cls(n_queries=500, n_peers=80)

    # ------------------------------------------------------------------

    def _workloads(self) -> dict[str, list[IntRange]]:
        scattered = UniformRangeWorkload(
            VALUE_DOMAIN, self.n_queries, seed=self.seed
        ).ranges()
        clustered = ClusteredRangeWorkload(
            VALUE_DOMAIN,
            self.n_queries,
            seed=self.seed,
            n_clusters=6,
            base_width=80,
            jitter=4,
        ).ranges()
        return {"scattered": scattered, "clustered": clustered}

    def _fresh_provider(self, policy: str) -> tuple[PartitionProvider, Catalog]:
        catalog = synthetic_catalog()
        if policy == "always-direct":
            return SourceProvider(catalog), catalog
        system = RangeSelectionSystem(
            SystemConfig(
                n_peers=self.n_peers,
                matcher="containment",
                domain=VALUE_DOMAIN,
                seed=self.seed,
            )
        )
        if policy == "always-probe":
            return CachePartitionProvider(catalog, system), catalog
        return AdaptiveRoutingProvider(catalog, system, cost_model=self.model), catalog

    def run(self) -> PlanningOutcome:
        workloads = self._workloads()
        costs: dict[str, dict[str, PolicyCost]] = {}
        for regime, queries in workloads.items():
            costs[regime] = {}
            for policy in ("always-probe", "always-direct", "adaptive"):
                provider, catalog = self._fresh_provider(policy)
                tally = PolicyCost()
                for query in queries:
                    leaf = LeafSelection(
                        relation="R",
                        primary=RangePredicate("R", "value", query),
                    )
                    result = provider.fetch(leaf)
                    tally.hops += result.overlay_hops
                tally.source_accesses = catalog.source_accesses
                costs[regime][policy] = tally
        return PlanningOutcome(costs=costs, model=self.model)
