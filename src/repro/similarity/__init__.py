"""Set-similarity measures and their LSH admissibility (paper Section 3.2).

The paper's key theoretical observation: a similarity measure admits a
locality sensitive hash family only if its distance ``1 - sim`` satisfies
the triangle inequality (Charikar 2002).  Jaccard similarity does;
containment does not — which is why the system *hashes* with Jaccard
(min-wise permutations) and only *matches within a bucket* with containment.
"""

from repro.similarity.distance import (
    distance,
    find_triangle_violation,
    satisfies_triangle_inequality,
)
from repro.similarity.measures import (
    MEASURES,
    containment,
    dice,
    jaccard,
    overlap_coefficient,
    recall_of_match,
    similarity_measure,
)

__all__ = [
    "jaccard",
    "containment",
    "dice",
    "overlap_coefficient",
    "recall_of_match",
    "similarity_measure",
    "MEASURES",
    "distance",
    "satisfies_triangle_inequality",
    "find_triangle_violation",
]
