"""Distance functions and the triangle-inequality admissibility test.

Charikar (2002): if ``sim`` admits a locality sensitive hash family then
``Δ(Q, R) = 1 - sim(Q, R)`` must satisfy the triangle inequality.  The
helpers here let tests *demonstrate* the paper's claim: Jaccard passes on
every probe, and an explicit witness triple shows containment failing.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

from repro.ranges.interval import IntRange
from repro.similarity.measures import SimilarityFn

__all__ = ["distance", "satisfies_triangle_inequality", "find_triangle_violation"]

_EPS = 1e-12


def distance(sim: SimilarityFn, q: IntRange, r: IntRange) -> float:
    """The distance ``1 - sim(q, r)`` induced by a similarity measure."""
    return 1.0 - sim(q, r)


def _violates(sim: SimilarityFn, a: IntRange, b: IntRange, c: IntRange) -> bool:
    """True when Δ(a,b) + Δ(b,c) < Δ(a,c) for the given measure."""
    return (
        distance(sim, a, b) + distance(sim, b, c)
        < distance(sim, a, c) - _EPS
    )


def satisfies_triangle_inequality(
    sim: SimilarityFn, ranges: Sequence[IntRange]
) -> bool:
    """Check Δ = 1 - sim over every ordered triple drawn from ``ranges``.

    Exhaustive over the probe set (all 3-permutations), so a ``True`` result
    certifies the inequality *for those ranges*, not universally.
    """
    for a, b, c in combinations(ranges, 3):
        for x, y, z in ((a, b, c), (a, c, b), (b, a, c)):
            if _violates(sim, x, y, z):
                return False
    return True


def find_triangle_violation(
    sim: SimilarityFn, ranges: Iterable[IntRange]
) -> tuple[IntRange, IntRange, IntRange] | None:
    """Return a witness triple ``(a, b, c)`` with Δ(a,b)+Δ(b,c) < Δ(a,c).

    For the containment measure a classic witness is a small range, a large
    range containing it, and a disjoint range — mirroring the paper's remark
    that containment admits no LSH family.
    """
    pool = list(ranges)
    for a, b, c in combinations(pool, 3):
        for x, y, z in ((a, b, c), (a, c, b), (b, a, c)):
            if _violates(sim, x, y, z):
                return (x, y, z)
    return None
