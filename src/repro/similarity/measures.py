"""Similarity measures over integer ranges.

All measures accept :class:`~repro.ranges.IntRange` operands and use the
closed-form intersection/union sizes, so no value set is ever materialized.
"""

from __future__ import annotations

from typing import Callable

from repro.ranges.interval import IntRange

__all__ = [
    "jaccard",
    "containment",
    "dice",
    "overlap_coefficient",
    "recall_of_match",
    "similarity_measure",
    "MEASURES",
]

SimilarityFn = Callable[[IntRange, IntRange], float]


def jaccard(q: IntRange, r: IntRange) -> float:
    """Jaccard similarity ``|Q ∩ R| / |Q ∪ R|`` — the measure the LSH family
    is defined for (paper Section 3.2)."""
    return q.jaccard(r)


def containment(q: IntRange, r: IntRange) -> float:
    """Containment ``|Q ∩ R| / |Q|``: how much of query ``q`` the cached
    partition ``r`` covers.  Asymmetric; equals the recall of ``r`` for
    ``q``.  Admits no LSH family (its distance violates the triangle
    inequality), so it is used only for in-bucket matching (Section 5.2)."""
    return q.containment(r)


def dice(q: IntRange, r: IntRange) -> float:
    """Dice coefficient ``2|Q ∩ R| / (|Q| + |R|)`` (extra measure for
    comparison; monotone in Jaccard)."""
    inter = q.intersection_size(r)
    return 2.0 * inter / (len(q) + len(r))


def overlap_coefficient(q: IntRange, r: IntRange) -> float:
    """Szymkiewicz–Simpson overlap ``|Q ∩ R| / min(|Q|, |R|)``."""
    return q.intersection_size(r) / min(len(q), len(r))


def recall_of_match(query: IntRange, match: IntRange | None) -> float:
    """Recall of a matched partition: 0.0 when nothing matched.

    This is the y-quantity behind Figures 8-10 ("part of query answered").
    """
    if match is None:
        return 0.0
    return containment(query, match)


MEASURES: dict[str, SimilarityFn] = {
    "jaccard": jaccard,
    "containment": containment,
    "dice": dice,
    "overlap": overlap_coefficient,
}


def similarity_measure(name: str) -> SimilarityFn:
    """Look up a measure by name; raises ``KeyError`` with choices listed."""
    try:
        return MEASURES[name]
    except KeyError:
        raise KeyError(
            f"unknown similarity measure {name!r}; choose from {sorted(MEASURES)}"
        ) from None
