"""The CAN overlay: membership, zone bookkeeping, greedy routing."""

from __future__ import annotations

from repro.can.node import CanNode
from repro.can.space import RESOLUTION, Point, Zone, point_for_key
from repro.chord.hashing import node_id_for_address
from repro.errors import ChordError, DuplicateNodeError, EmptyRingError
from repro.util.rng import derive_rng

__all__ = ["CanOverlay"]


class CanOverlay:
    """A simulated CAN: zones tile a ``d``-dimensional torus.

    Joins follow the CAN protocol: the joiner picks a random point, the
    node owning that point splits the containing zone in half and hands one
    half over.  Departures hand the zone to a neighbour (merging when the
    union is rectangular, otherwise the neighbour holds multiple zones).
    Routing is greedy: forward to the neighbour whose zone is closest to
    the target point, counting overlay hops.
    """

    def __init__(self, dimensions: int = 2) -> None:
        if dimensions < 1:
            raise ChordError("CAN needs at least one dimension")
        self.dimensions = dimensions
        self._nodes: dict[int, CanNode] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def node_ids(self) -> list[int]:
        """All node ids, ascending."""
        return sorted(self._nodes)

    def node(self, node_id: int) -> CanNode:
        """The node with the given id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ChordError(f"no CAN node {node_id}") from None

    def bootstrap(self, address: str) -> CanNode:
        """First node: owns the whole space."""
        if self._nodes:
            raise ChordError("bootstrap is only for an empty overlay")
        node = CanNode(
            node_id=node_id_for_address(address),
            address=address,
            zones=[Zone.whole_space(self.dimensions)],
        )
        self._nodes[node.node_id] = node
        return node

    def join(self, address: str, at_point: Point | None = None) -> CanNode:
        """Join by splitting the zone that owns ``at_point``.

        Without an explicit point, one is derived from the address hash
        (deterministic builds).
        """
        if not self._nodes:
            return self.bootstrap(address)
        node_id = node_id_for_address(address)
        if node_id in self._nodes:
            raise DuplicateNodeError(f"node id {node_id} already present")
        if at_point is None:
            at_point = point_for_key(node_id, self.dimensions)
        owner = self._owner_node(at_point)
        zone_index, zone = next(
            (i, z) for i, z in enumerate(owner.zones) if z.contains(at_point)
        )
        lower, upper = zone.split()
        keep, give = (lower, upper) if lower.contains(at_point) else (upper, lower)
        # The joiner takes the half containing its point; CAN's convention
        # is the opposite (the owner keeps its half) — either works as long
        # as both halves end up owned; we give the joiner the half with its
        # point so repeated joins spread deterministically.
        owner.zones[zone_index] = give
        joiner = CanNode(node_id=node_id, address=address, zones=[keep])
        self._nodes[node_id] = joiner
        self._update_neighbors_after_change({owner.node_id, node_id})
        return joiner

    def build(self, n_peers: int, address_prefix: str = "can-peer", seed: int = 0) -> None:
        """Construct an overlay of ``n_peers`` nodes at random points."""
        if n_peers <= 0:
            raise ChordError("need at least one peer")
        rng = derive_rng(seed, "can/build")
        suffix = 0
        while len(self._nodes) < n_peers:
            address = f"{address_prefix}-{suffix}"
            suffix += 1
            point = tuple(
                int(rng.integers(0, RESOLUTION)) for _ in range(self.dimensions)
            )
            try:
                self.join(address, at_point=point)
            except (DuplicateNodeError, ChordError):
                continue

    def leave(self, node_id: int) -> None:
        """Graceful departure: every zone is handed to a neighbour."""
        if len(self._nodes) <= 1:
            raise ChordError("cannot remove the last CAN node")
        departing = self.node(node_id)
        affected = set(departing.neighbor_ids)
        del self._nodes[node_id]
        takers: set[int] = set()
        for zone in departing.zones:
            taker = self._takeover_target(zone, affected)
            takers.add(taker.node_id)
            merged = False
            for index, existing in enumerate(taker.zones):
                if existing.is_mergeable_with(zone):
                    taker.zones[index] = existing.merge(zone)
                    merged = True
                    break
            if not merged:
                taker.zones.append(zone)
        self._update_neighbors_after_change(affected | takers)

    def _takeover_target(self, zone: Zone, candidate_ids: set[int]) -> CanNode:
        """Prefer a neighbour that can merge; else the smallest neighbour."""
        candidates = [
            self._nodes[nid] for nid in candidate_ids if nid in self._nodes
        ]
        if not candidates:
            candidates = list(self._nodes.values())
        for node in sorted(candidates, key=lambda n: n.node_id):
            if any(z.is_mergeable_with(zone) for z in node.zones):
                return node
        return min(candidates, key=lambda n: (n.total_volume(), n.node_id))

    # ------------------------------------------------------------------
    # Neighbour bookkeeping
    # ------------------------------------------------------------------

    def _zones_abut(self, a: CanNode, b: CanNode) -> bool:
        return any(
            za.abuts(zb) or za.is_mergeable_with(zb)
            for za in a.zones
            for zb in b.zones
        )

    def _update_neighbors_after_change(self, changed_ids: set[int]) -> None:
        """Recompute neighbour sets for changed nodes and their vicinity."""
        vicinity = set()
        for nid in changed_ids:
            if nid not in self._nodes:
                continue
            vicinity.add(nid)
            vicinity |= self._nodes[nid].neighbor_ids
            # A changed node's new neighbours come from the vicinity of its
            # previous neighbours too.
            for other in list(self._nodes[nid].neighbor_ids):
                if other in self._nodes:
                    vicinity |= self._nodes[other].neighbor_ids
        vicinity = {nid for nid in vicinity if nid in self._nodes}
        # Small overlays: a global recompute is cheaper and always correct.
        if len(self._nodes) <= 64 or not vicinity:
            self._recompute_all_neighbors()
            return
        for nid in vicinity:
            node = self._nodes[nid]
            node.neighbor_ids = {
                other
                for other in vicinity
                if other != nid and self._zones_abut(node, self._nodes[other])
            } | {
                other
                for other in node.neighbor_ids
                if other in self._nodes
                and other not in vicinity
                and self._zones_abut(node, self._nodes[other])
            }
        # Enforce symmetry.
        for nid in vicinity:
            for other in self._nodes[nid].neighbor_ids:
                self._nodes[other].neighbor_ids.add(nid)

    def _recompute_all_neighbors(self) -> None:
        ids = list(self._nodes)
        for nid in ids:
            self._nodes[nid].neighbor_ids = set()
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                if self._zones_abut(self._nodes[a], self._nodes[b]):
                    self._nodes[a].neighbor_ids.add(b)
                    self._nodes[b].neighbor_ids.add(a)

    # ------------------------------------------------------------------
    # Ownership and routing
    # ------------------------------------------------------------------

    def _owner_node(self, point: Point) -> CanNode:
        if not self._nodes:
            raise EmptyRingError("CAN overlay has no nodes")
        for node in self._nodes.values():
            if node.owns_point(point):
                return node
        raise ChordError(f"no zone contains point {point}; space is torn")

    def owner_of(self, key: int) -> int:
        """Node id owning a 32-bit bucket identifier."""
        return self._owner_node(point_for_key(key, self.dimensions)).node_id

    def lookup(self, key: int, start_id: int | None = None) -> tuple[int, int]:
        """Greedy-route a key from ``start_id``; returns (owner_id, hops)."""
        point = point_for_key(key, self.dimensions)
        return self.route_to_point(point, start_id)

    def lookup_path(
        self, key: int, start_id: int | None = None
    ) -> tuple[int, ...]:
        """Greedy-route a key and return the full node-id path traversed
        (first element is the start node, last is the owner)."""
        point = point_for_key(key, self.dimensions)
        return self._route(point, start_id)

    def route_to_point(
        self, point: Point, start_id: int | None = None
    ) -> tuple[int, int]:
        """Greedy coordinate routing; returns (owner_id, hops)."""
        path = self._route(point, start_id)
        return (path[-1], len(path) - 1)

    def _route(self, point: Point, start_id: int | None = None) -> tuple[int, ...]:
        if not self._nodes:
            raise EmptyRingError("CAN overlay has no nodes")
        if start_id is None:
            start_id = self.node_ids[0]
        current = self.node(start_id)
        path = [current.node_id]
        visited = {current.node_id}
        max_hops = 4 * len(self._nodes) + 16
        while not current.owns_point(point):
            candidates = [
                self._nodes[nid]
                for nid in current.neighbor_ids
                if nid in self._nodes
            ]
            if not candidates:
                raise ChordError(
                    f"node {current.node_id} has no neighbours; routing stuck"
                )
            unvisited = [c for c in candidates if c.node_id not in visited]
            pool = unvisited if unvisited else candidates
            current = min(
                pool, key=lambda n: (n.distance_to_point(point), n.node_id)
            )
            visited.add(current.node_id)
            path.append(current.node_id)
            if len(path) - 1 > max_hops:
                raise ChordError("CAN routing exceeded hop bound")
        return tuple(path)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------

    def audit(self) -> list[tuple[str, int, str]]:
        """Walk the zone tiling and neighbour sets, collecting violations.

        Returns ``(check, node_id, message)`` tuples — empty when zones
        tile the space exactly and neighbour sets are symmetric and
        current.  This is the walk the health auditor runs;
        :meth:`check_invariants` raises on the first finding instead.
        """
        findings: list[tuple[str, int, str]] = []
        total = sum(node.total_volume() for node in self._nodes.values())
        space = RESOLUTION**self.dimensions
        if total != space:
            findings.append(
                ("zone-coverage", -1, f"zones cover volume {total}, space has {space}")
            )
        zones = [
            (nid, zone)
            for nid, node in self._nodes.items()
            for zone in node.zones
        ]
        for i, (nid_a, a) in enumerate(zones):
            for nid_b, b in zones[i + 1 :]:
                overlap = all(
                    min(a.highs[ax], b.highs[ax]) > max(a.lows[ax], b.lows[ax])
                    for ax in range(self.dimensions)
                )
                if overlap:
                    findings.append(
                        (
                            "zone-overlap",
                            nid_a,
                            f"zones of {nid_a} and {nid_b} overlap: {a} vs {b}",
                        )
                    )
        for nid, node in self._nodes.items():
            for other in node.neighbor_ids:
                if other not in self._nodes:
                    findings.append(
                        ("neighbor-liveness", nid, f"lists departed neighbour {other}")
                    )
                elif nid not in self._nodes[other].neighbor_ids:
                    findings.append(
                        (
                            "neighbor-symmetry",
                            nid,
                            f"neighbour sets asymmetric: {nid}/{other}",
                        )
                    )
        return findings

    def check_invariants(self) -> None:
        """Raise when zones fail to tile the space or neighbours are wrong."""
        findings = self.audit()
        if findings:
            _check, _node_id, message = findings[0]
            raise ChordError(message)
