"""A CAN node: the zones it owns and its neighbour set."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.can.space import Point, Zone

__all__ = ["CanNode"]


@dataclass
class CanNode:
    """One peer in the coordinate space.

    A node normally owns one zone; after taking over a departed
    neighbour's zone it may temporarily own several (the CAN paper's
    "a node may hold more than one zone" state).
    """

    node_id: int
    address: str
    zones: list[Zone] = field(default_factory=list)
    neighbor_ids: set[int] = field(default_factory=set)

    def owns_point(self, point: Point) -> bool:
        """Whether any of this node's zones contains the point."""
        return any(zone.contains(point) for zone in self.zones)

    def total_volume(self) -> int:
        """Combined volume of the node's zones (its keyspace share)."""
        return sum(zone.volume() for zone in self.zones)

    def distance_to_point(self, point: Point) -> float:
        """Distance from the node's closest zone to a point."""
        return min(zone.distance_to_point(point) for zone in self.zones)

    def __str__(self) -> str:
        return f"CanNode({self.node_id}, zones={len(self.zones)})"
