"""A CAN (Content-Addressable Network) simulator (Ratnasamy et al. 2001).

The paper names CAN alongside Chord as an equally valid DHT substrate:
"Any of the distributed hash tables (DHT), e.g., CAN [13] or Chord [14],
can be used for this purpose" (Section 3.1).  This subpackage implements
the parts the range-selection system needs: a ``d``-dimensional toroidal
coordinate space split into per-node zones, greedy coordinate routing with
hop counting (``O(d * N^(1/d))`` hops), node join by zone splitting, and
graceful departure by zone takeover.

Keys map to points by hashing the key once per dimension, so any 32-bit
bucket identifier — including the LSH identifiers — owns a deterministic
point in the space.
"""

from repro.can.network import CanOverlay
from repro.can.node import CanNode
from repro.can.space import Point, Zone, point_for_key

__all__ = ["CanOverlay", "CanNode", "Zone", "Point", "point_for_key"]
