"""CAN coordinate space: points, zones, torus geometry.

The space is the ``d``-dimensional torus with integer coordinates in
``[0, RESOLUTION)`` per dimension (integer arithmetic keeps zone splits
exact and tests deterministic).  A zone is a half-open hyperrectangle
``[lo_i, hi_i)`` per dimension; the set of zones always tiles the space.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ChordError

__all__ = ["RESOLUTION", "Point", "Zone", "point_for_key", "torus_distance"]

#: Coordinates live in [0, 2^20) per dimension.
RESOLUTION = 1 << 20

Point = tuple[int, ...]


def point_for_key(key: int, dimensions: int) -> Point:
    """Deterministic point for a bucket identifier: one SHA-1 per axis."""
    if dimensions < 1:
        raise ChordError("CAN needs at least one dimension")
    coords = []
    for axis in range(dimensions):
        digest = hashlib.sha1(
            b"can-axis:%d:%d" % (axis, key)
        ).digest()
        coords.append(int.from_bytes(digest[:4], "big") % RESOLUTION)
    return tuple(coords)


def torus_distance(a: int, b: int, size: int = RESOLUTION) -> int:
    """Shortest wrap-around distance between two coordinates."""
    diff = abs(a - b) % size
    return min(diff, size - diff)


@dataclass(frozen=True)
class Zone:
    """A half-open hyperrectangle ``[lows[i], highs[i])`` per dimension."""

    lows: tuple[int, ...]
    highs: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.lows) != len(self.highs):
            raise ChordError("zone bounds must have equal dimensionality")
        for lo, hi in zip(self.lows, self.highs):
            if not 0 <= lo < hi <= RESOLUTION:
                raise ChordError(f"invalid zone extent [{lo}, {hi})")

    @classmethod
    def whole_space(cls, dimensions: int) -> "Zone":
        """The zone covering everything (the bootstrap node's zone)."""
        return cls((0,) * dimensions, (RESOLUTION,) * dimensions)

    @property
    def dimensions(self) -> int:
        return len(self.lows)

    def side(self, axis: int) -> int:
        """Extent along one axis."""
        return self.highs[axis] - self.lows[axis]

    def volume(self) -> int:
        """Product of the sides."""
        out = 1
        for axis in range(self.dimensions):
            out *= self.side(axis)
        return out

    def contains(self, point: Point) -> bool:
        """Whether the point lies inside the zone."""
        return all(
            lo <= c < hi for c, lo, hi in zip(point, self.lows, self.highs)
        )

    def center(self) -> Point:
        """The zone's center point (used as a routing target proxy)."""
        return tuple(
            (lo + hi) // 2 for lo, hi in zip(self.lows, self.highs)
        )

    def widest_axis(self) -> int:
        """The axis with the largest extent (ties: lowest axis).

        CAN splits along dimensions in a fixed cycling order; splitting the
        widest axis is the standard variant that keeps zones square-ish.
        """
        sides = [self.side(a) for a in range(self.dimensions)]
        return sides.index(max(sides))

    def split(self) -> tuple["Zone", "Zone"]:
        """Halve the zone along its widest axis."""
        axis = self.widest_axis()
        if self.side(axis) < 2:
            raise ChordError("zone too small to split")
        mid = (self.lows[axis] + self.highs[axis]) // 2
        lower = Zone(
            self.lows,
            tuple(
                mid if a == axis else hi for a, hi in enumerate(self.highs)
            ),
        )
        upper = Zone(
            tuple(
                mid if a == axis else lo for a, lo in enumerate(self.lows)
            ),
            self.highs,
        )
        return lower, upper

    def is_mergeable_with(self, other: "Zone") -> bool:
        """Whether the union of the two zones is again a hyperrectangle."""
        differing = [
            a
            for a in range(self.dimensions)
            if (self.lows[a], self.highs[a]) != (other.lows[a], other.highs[a])
        ]
        if len(differing) != 1:
            return False
        axis = differing[0]
        return (
            self.highs[axis] == other.lows[axis]
            or other.highs[axis] == self.lows[axis]
        )

    def merge(self, other: "Zone") -> "Zone":
        """The rectangular union of two mergeable zones."""
        if not self.is_mergeable_with(other):
            raise ChordError(f"zones {self} and {other} cannot merge")
        return Zone(
            tuple(min(a, b) for a, b in zip(self.lows, other.lows)),
            tuple(max(a, b) for a, b in zip(self.highs, other.highs)),
        )

    def abuts(self, other: "Zone") -> bool:
        """Whether the zones are neighbours on the torus: they touch along
        exactly one axis and overlap in every other axis."""
        touching = 0
        for axis in range(self.dimensions):
            lo1, hi1 = self.lows[axis], self.highs[axis]
            lo2, hi2 = other.lows[axis], other.highs[axis]
            overlap = min(hi1, hi2) - max(lo1, lo2)
            if overlap > 0:
                continue
            wraps = (hi1 % RESOLUTION == lo2 % RESOLUTION) or (
                hi2 % RESOLUTION == lo1 % RESOLUTION
            )
            touches = hi1 == lo2 or hi2 == lo1 or wraps
            if touches:
                touching += 1
            else:
                return False
        return touching == 1

    def distance_to_point(self, point: Point) -> float:
        """Euclidean torus distance from the zone (its nearest face) to a
        point; 0 when the point is inside."""
        total = 0.0
        for axis, coordinate in enumerate(point):
            lo, hi = self.lows[axis], self.highs[axis]
            if lo <= coordinate < hi:
                continue
            gap = min(
                torus_distance(coordinate, lo),
                torus_distance(coordinate, hi - 1),
            )
            total += float(gap) ** 2
        return total**0.5

    def __str__(self) -> str:
        spans = " x ".join(
            f"[{lo},{hi})" for lo, hi in zip(self.lows, self.highs)
        )
        return f"Zone({spans})"
