"""Messages exchanged between simulated peers."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message"]

_sequence = itertools.count()


@dataclass(frozen=True)
class Message:
    """One overlay message.

    ``kind`` is a short routing tag ("lookup", "partition-request",
    "partition-reply", "store", ...); ``payload`` is arbitrary and
    ``size_bytes`` is the *modelled* wire size used for traffic accounting
    (payloads are Python objects, so real serialized size is substituted by
    the caller's estimate).
    """

    sender: int
    recipient: int
    kind: str
    payload: Any = None
    size_bytes: int = 64
    seq: int = field(default_factory=lambda: next(_sequence))

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("message size cannot be negative")
