"""In-memory network simulation.

The paper's peers talk over TCP/IP; its experiments, however, measure
overlay-level quantities (hops, partition placements), not wire time.  This
subpackage substitutes a deterministic in-memory transport that delivers
messages synchronously while *accounting* for them: per-peer and global
message counters, byte estimates, and a pluggable latency model, so example
programs and extension experiments can report network cost.
"""

from repro.net.latency import ConstantLatency, LatencyModel, UniformLatency
from repro.net.message import Message
from repro.net.transport import SimulatedNetwork, TrafficStats

__all__ = [
    "Message",
    "SimulatedNetwork",
    "TrafficStats",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
]
