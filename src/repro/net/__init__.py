"""In-memory network simulation.

The paper's peers talk over TCP/IP; its experiments, however, measure
overlay-level quantities (hops, partition placements), not wire time.  This
subpackage substitutes a deterministic in-memory transport that delivers
messages synchronously while *accounting* for them: per-peer and global
message counters, byte estimates, and a pluggable latency model, so example
programs and extension experiments can report network cost.

For experiments that need *time* rather than counts — delivery delay,
loss, crashes, timeouts — the event-driven transport lives in
:mod:`repro.sim`, layered on the same latency models.
"""

from repro.net.latency import (
    ConstantLatency,
    LatencyModel,
    SeededLatency,
    UniformLatency,
)
from repro.net.message import Message
from repro.net.transport import SimulatedNetwork, TrafficStats

__all__ = [
    "Message",
    "SimulatedNetwork",
    "TrafficStats",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "SeededLatency",
]
