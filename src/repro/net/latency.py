"""Latency models for the simulated transport."""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod

import numpy as np

__all__ = ["LatencyModel", "ConstantLatency", "UniformLatency", "SeededLatency"]


class LatencyModel(ABC):
    """Samples a one-way delivery delay (milliseconds) per message."""

    @abstractmethod
    def sample_ms(self, sender: int, recipient: int) -> float:
        """Delay for one message from ``sender`` to ``recipient``."""


class ConstantLatency(LatencyModel):
    """Every message takes the same time; the default (and the value used
    when only hop *counts* matter) is zero."""

    def __init__(self, ms: float = 0.0) -> None:
        if ms < 0:
            raise ValueError("latency cannot be negative")
        self.ms = ms

    def sample_ms(self, sender: int, recipient: int) -> float:
        return self.ms


class UniformLatency(LatencyModel):
    """Uniform random delay in ``[low_ms, high_ms]`` — a crude wide-area
    model for example programs that want nonzero, varied timings."""

    def __init__(self, low_ms: float, high_ms: float, rng: np.random.Generator) -> None:
        if not 0 <= low_ms <= high_ms:
            raise ValueError("need 0 <= low_ms <= high_ms")
        self.low_ms = low_ms
        self.high_ms = high_ms
        self._rng = rng

    def sample_ms(self, sender: int, recipient: int) -> float:
        return float(self._rng.uniform(self.low_ms, self.high_ms))


class SeededLatency(LatencyModel):
    """Pairwise-deterministic wide-area delay.

    The delay of the directed link ``sender -> recipient`` is a pure
    function of ``(seed, sender, recipient)``: the pair is hashed with
    SHA-256 and the digest picks a point in ``[low_ms, high_ms]``.  Unlike
    :class:`UniformLatency` there is no generator state, so two runs with
    the same seed see identical link delays regardless of how many samples
    were drawn in between — which keeps event orderings in the
    discrete-event simulator reproducible.  Links are asymmetric
    (``a -> b`` and ``b -> a`` hash differently), as real paths are.
    """

    def __init__(self, low_ms: float = 10.0, high_ms: float = 100.0, seed: int = 0) -> None:
        if not 0 <= low_ms <= high_ms:
            raise ValueError("need 0 <= low_ms <= high_ms")
        self.low_ms = low_ms
        self.high_ms = high_ms
        self.seed = int(seed)
        self._cache: dict[tuple[int, int], float] = {}

    def sample_ms(self, sender: int, recipient: int) -> float:
        pair = (sender, recipient)
        cached = self._cache.get(pair)
        if cached is not None:
            return cached
        digest = hashlib.sha256(
            f"{self.seed}:{sender}->{recipient}".encode("ascii")
        ).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        delay = self.low_ms + fraction * (self.high_ms - self.low_ms)
        self._cache[pair] = delay
        return delay
