"""Latency models for the simulated transport."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["LatencyModel", "ConstantLatency", "UniformLatency"]


class LatencyModel(ABC):
    """Samples a one-way delivery delay (milliseconds) per message."""

    @abstractmethod
    def sample_ms(self, sender: int, recipient: int) -> float:
        """Delay for one message from ``sender`` to ``recipient``."""


class ConstantLatency(LatencyModel):
    """Every message takes the same time; the default (and the value used
    when only hop *counts* matter) is zero."""

    def __init__(self, ms: float = 0.0) -> None:
        if ms < 0:
            raise ValueError("latency cannot be negative")
        self.ms = ms

    def sample_ms(self, sender: int, recipient: int) -> float:
        return self.ms


class UniformLatency(LatencyModel):
    """Uniform random delay in ``[low_ms, high_ms]`` — a crude wide-area
    model for example programs that want nonzero, varied timings."""

    def __init__(self, low_ms: float, high_ms: float, rng: np.random.Generator) -> None:
        if not 0 <= low_ms <= high_ms:
            raise ValueError("need 0 <= low_ms <= high_ms")
        self.low_ms = low_ms
        self.high_ms = high_ms
        self._rng = rng

    def sample_ms(self, sender: int, recipient: int) -> float:
        return float(self._rng.uniform(self.low_ms, self.high_ms))
