"""The simulated transport: synchronous delivery with full accounting."""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.errors import PeerUnavailableError, UnknownPeerError
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import Message
from repro.obs.registry import (
    MetricsRegistry,
    RegistryBackedCounters,
    registry_field,
)

__all__ = ["SimulatedNetwork", "TrafficStats"]

Handler = Callable[[Message], Any]


class TrafficStats(RegistryBackedCounters):
    """Counters the transport maintains as messages flow.

    The attribute API is unchanged from the old dataclass, but every
    field is now served from a :class:`~repro.obs.MetricsRegistry`
    counter (``<namespace>.<field>``), so the transport's accounting
    shows up in the system's unified metric exports.  A standalone
    ``TrafficStats()`` binds a private registry.
    """

    SCALAR_FIELDS = (
        "messages",
        "bytes",
        "latency_ms",
        "drops",
        "timeouts",
        "retries",
        "failovers",
        "failover_exhausted",
        "replica_stores",
        "busy_shed",
        "hedges",
        "hedge_wins",
        "replies_to_dead",
    )

    messages = registry_field("messages")
    bytes = registry_field("bytes")
    latency_ms = registry_field("latency_ms")
    #: Messages lost in flight (event-driven transport only).
    drops = registry_field("drops")
    #: Requests whose retry budget was exhausted (event-driven transport only).
    timeouts = registry_field("timeouts")
    #: Re-sends after an unanswered attempt (event-driven transport only).
    retries = registry_field("retries")
    #: Lookups answered by a successor-list replica after the identifier's
    #: owner was unreachable.
    failovers = registry_field("failovers")
    #: Lookups that exhausted every replica without an answer.
    failover_exhausted = registry_field("failover_exhausted")
    #: Store placements addressed to non-primary replicas.
    replica_stores = registry_field("replica_stores")
    #: Requests shed by a peer whose bounded service queue was full
    #: (event-driven transport only) — explicit back-pressure, counted
    #: apart from silent timeouts.
    busy_shed = registry_field("busy_shed")
    #: Backup lookups launched for straggling chains (event-driven only).
    hedges = registry_field("hedges")
    #: Hedged lookups whose backup answered first.
    hedge_wins = registry_field("hedge_wins")
    #: Replies dropped because the requester crashed while its request
    #: was in flight (event-driven transport only).
    replies_to_dead = registry_field("replies_to_dead")

    def __init__(
        self, registry: MetricsRegistry | None = None, namespace: str = "net"
    ) -> None:
        self._bind(registry, namespace)
        self.by_kind = self._labeled("messages_by_kind", "kind")
        self.sent_by_peer = self._labeled("sent_by_peer", "peer")
        self.received_by_peer = self._labeled("received_by_peer", "peer")

    def record(self, message: Message, latency_ms: float) -> None:
        """Account for one delivered message."""
        self.messages += 1
        self.bytes += message.size_bytes
        self.latency_ms += latency_ms
        self.by_kind[message.kind] += 1
        self.sent_by_peer[message.sender] += 1
        self.received_by_peer[message.recipient] += 1

    def record_routing_hops(
        self, hops: int, size_bytes: int = 32, latency_ms: float = 0.0
    ) -> None:
        """Account for overlay routing traffic (one small message per hop).

        The DHT simulators compute lookups structurally for speed; this
        keeps the traffic totals honest by charging each traversed edge as
        a routing message.  ``latency_ms`` is the *total* wire time of the
        hop sequence (each traversed edge costs real latency, so leaving it
        at zero understates ``latency_ms`` whenever a latency model is in
        play — prefer :meth:`SimulatedNetwork.charge_route`).
        """
        if hops < 0:
            raise ValueError("hops cannot be negative")
        if latency_ms < 0:
            raise ValueError("latency cannot be negative")
        self.messages += hops
        self.bytes += hops * size_bytes
        self.latency_ms += latency_ms
        self.by_kind["route-hop"] += hops

    def reset(self) -> None:
        """Zero every counter (e.g. after a warmup phase)."""
        self.messages = 0
        self.bytes = 0
        self.latency_ms = 0.0
        self.drops = 0
        self.timeouts = 0
        self.retries = 0
        self.failovers = 0
        self.failover_exhausted = 0
        self.replica_stores = 0
        self.busy_shed = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.replies_to_dead = 0
        self.by_kind.clear()
        self.sent_by_peer.clear()
        self.received_by_peer.clear()


class SimulatedNetwork:
    """Synchronous message delivery between registered peers.

    Peers register a handler keyed by their overlay id; :meth:`send`
    delivers immediately (simulation time, not wall time) and returns the
    handler's reply, so request/response exchanges read naturally at call
    sites while every message is still counted.
    """

    def __init__(
        self,
        latency: LatencyModel | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._handlers: dict[int, Handler] = {}
        self._crashed: set[int] = set()
        self.latency = latency if latency is not None else ConstantLatency()
        self.stats = TrafficStats(registry=registry)

    def register(self, peer_id: int, handler: Handler) -> None:
        """Attach ``handler`` for messages addressed to ``peer_id``."""
        self._handlers[peer_id] = handler

    def unregister(self, peer_id: int) -> None:
        """Detach a peer (it stops receiving messages)."""
        self._handlers.pop(peer_id, None)
        self._crashed.discard(peer_id)

    def is_registered(self, peer_id: int) -> bool:
        """Whether a peer currently has a handler."""
        return peer_id in self._handlers

    # -- faults (mirrors AsyncNetwork's crash surface) -----------------

    def crash(self, peer_id: int) -> None:
        """Fail-stop ``peer_id``: sends to it raise
        :class:`~repro.errors.PeerUnavailableError` until it recovers.

        The synchronous transport cannot model a silent timeout (there is
        no clock to wait out), so unreachability is immediate and loud —
        the degraded-mode *outcome* matches the event-driven transport,
        only the waiting is elided.
        """
        self._crashed.add(peer_id)

    def recover(self, peer_id: int) -> None:
        """Un-crash ``peer_id`` (idempotent)."""
        self._crashed.discard(peer_id)

    def is_alive(self, peer_id: int) -> bool:
        """Registered and not currently crashed."""
        return peer_id in self._handlers and peer_id not in self._crashed

    def send(
        self,
        sender: int,
        recipient: int,
        kind: str,
        payload: Any = None,
        size_bytes: int = 64,
    ) -> Any:
        """Deliver one message and return the recipient handler's result."""
        handler = self._handlers.get(recipient)
        if handler is None:
            raise UnknownPeerError(recipient)
        if recipient in self._crashed:
            raise PeerUnavailableError(recipient)
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=payload,
            size_bytes=size_bytes,
        )
        delay = self.latency.sample_ms(sender, recipient)
        self.stats.record(message, delay)
        return handler(message)

    def charge_route(self, path: Sequence[int], size_bytes: int = 32) -> float:
        """Account for a routed lookup, edge by edge.

        ``path`` is the node-id sequence a lookup traversed (as reported by
        the overlay); every consecutive pair is charged one routing message
        with latency sampled from the network's model.  Returns the total
        latency of the route in milliseconds.
        """
        total = 0.0
        for hop_from, hop_to in zip(path, path[1:]):
            total += self.latency.sample_ms(hop_from, hop_to)
        self.stats.record_routing_hops(
            max(0, len(path) - 1), size_bytes=size_bytes, latency_ms=total
        )
        return total

    @property
    def peer_count(self) -> int:
        """Number of registered peers."""
        return len(self._handlers)
