"""repro — Approximate Range Selection Queries in Peer-to-Peer Systems.

A full reimplementation of Gupta, Agrawal & El Abbadi (CIDR 2003): peers
cache horizontal partitions of relations; selection ranges are hashed with
locality sensitive hashing (min-wise independent permutations) into a Chord
DHT so that *similar* ranges land on the same peers, letting broad queries
be answered approximately from previously cached partitions.

Quickstart::

    from repro import IntRange, RangeSelectionSystem, SystemConfig

    system = RangeSelectionSystem(SystemConfig(n_peers=200, seed=1))
    first = system.query(IntRange(30, 50))    # cold: caches the partition
    again = system.query(IntRange(30, 49))    # similar: approximate hit
    print(again.matched, again.similarity, again.recall)

See ``examples/`` for the SQL front end and the experiment harness, and
``DESIGN.md`` for the system inventory.
"""

from repro.core.adaptive import AdaptivePaddingController
from repro.core.composite import CompositeAnswer, query_composite
from repro.core.config import SystemConfig
from repro.core.matcher import ContainmentMatcher, JaccardMatcher, matcher_by_name
from repro.core.multiattr import (
    MultiAttributeQuery,
    MultiAttributeResult,
    query_multi_attribute,
)
from repro.core.overlays import CanRouter, ChordRouter, OverlayRouter, build_overlay
from repro.core.p2pdb import P2PDatabase, P2PQueryReport
from repro.core.stats_planner import AdaptiveRoutingProvider, CostModel
from repro.core.system import RangeQueryResult, RangeSelectionSystem
from repro.can.network import CanOverlay
from repro.chord.ring import ChordRing
from repro.db.catalog import Catalog, medical_catalog, medical_schema
from repro.db.partition import Partition, PartitionDescriptor
from repro.lsh import (
    ApproxMinWiseFamily,
    DomainMinHashIndex,
    LinearFamily,
    LSHIdentifierScheme,
    MinWiseFamily,
    family_by_name,
)
from repro.ranges.domain import Domain
from repro.ranges.interval import IntRange
from repro.ranges.rangeset import RangeSet
from repro.similarity.measures import containment, jaccard
from repro.storage.snapshot import load_system, save_system
from repro.workloads.generators import (
    ClusteredRangeWorkload,
    UniformRangeWorkload,
    ZipfRangeWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # ranges & similarity
    "IntRange",
    "RangeSet",
    "Domain",
    "jaccard",
    "containment",
    # hashing
    "MinWiseFamily",
    "ApproxMinWiseFamily",
    "LinearFamily",
    "LSHIdentifierScheme",
    "DomainMinHashIndex",
    "family_by_name",
    # overlays
    "ChordRing",
    "CanOverlay",
    "OverlayRouter",
    "ChordRouter",
    "CanRouter",
    "build_overlay",
    # system
    "SystemConfig",
    "RangeSelectionSystem",
    "RangeQueryResult",
    "JaccardMatcher",
    "ContainmentMatcher",
    "matcher_by_name",
    "AdaptivePaddingController",
    "AdaptiveRoutingProvider",
    "CostModel",
    "CompositeAnswer",
    "query_composite",
    "MultiAttributeQuery",
    "MultiAttributeResult",
    "query_multi_attribute",
    # database front end
    "Catalog",
    "medical_schema",
    "medical_catalog",
    "Partition",
    "PartitionDescriptor",
    "P2PDatabase",
    "P2PQueryReport",
    # persistence
    "save_system",
    "load_system",
    # workloads
    "UniformRangeWorkload",
    "ZipfRangeWorkload",
    "ClusteredRangeWorkload",
]
