"""Spawn and manage a localhost cluster of ``repro serve`` processes.

:class:`LocalCluster` is the process-level harness behind
``repro cluster``, the CI live-cluster smoke job and
``examples/live_cluster.py``: it starts one OS process per peer
(``python -m repro serve``), waits for each peer's ready line before
starting the next (so joins — and the data hand-offs they trigger — are
strictly ordered), and can remove peers both ways the paper's fault model
distinguishes: a graceful ``leave`` (RPC; the peer hands its data off
first) and an abrupt :meth:`kill` (SIGKILL; recovery is entirely the
replica chain's and anti-entropy repair's problem).

Every wait is bounded, so a wedged peer fails the harness instead of
hanging it (the CI job adds its own outer ``timeout`` as a backstop).
"""

from __future__ import annotations

import json
import os
import select
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core.config import SystemConfig
from repro.errors import ReproError
from repro.obs.log import get_logger
from repro.rpc import wire
from repro.rpc.client import ClusterClient
from repro.rpc.server import READY_PREFIX

__all__ = ["LocalCluster", "ClusterError"]

logger = get_logger("rpc.cluster")


class ClusterError(ReproError):
    """A peer process failed to start, answer, or stop in time."""


def _src_path() -> str:
    """The import root of this package, for child PYTHONPATHs."""
    import repro

    return str(Path(repro.__file__).resolve().parent.parent)


class LocalCluster:
    """``peers`` live peer processes on 127.0.0.1, ports picked by the OS."""

    def __init__(
        self,
        peers: int,
        config: SystemConfig | None = None,
        *,
        host: str = "127.0.0.1",
        startup_timeout_s: float = 30.0,
        swim_interval_ms: float = 1_000.0,
        suspect_timeout_ms: float | None = None,
        repair_interval_ms: float = 1_000.0,
        spawn_attempts: int = 3,
        flight_dir: str | None = None,
        durable: bool = False,
        data_root: str | None = None,
        compact_every: int | None = None,
    ) -> None:
        if peers < 1:
            raise ClusterError("a cluster needs at least one peer")
        self.n_peers = peers
        # n_peers is meaningless for a live cluster's config (membership
        # is discovered, not declared), but keep it consistent anyway.
        self.config = (
            config if config is not None else SystemConfig(n_peers=peers)
        )
        self.host = host
        self.startup_timeout_s = startup_timeout_s
        self.swim_interval_ms = swim_interval_ms
        self.suspect_timeout_ms = suspect_timeout_ms
        self.repair_interval_ms = repair_interval_ms
        self.spawn_attempts = max(1, spawn_attempts)
        #: Directory every peer dumps its flight recorder into on an
        #: incident (breaker open, SWIM eviction); ``None`` disables.
        self.flight_dir = flight_dir
        #: With durability on, every peer gets ``<data_root>/<address>``
        #: as its ``--data-dir``.  A root this harness created itself
        #: (durable=True with no explicit data_root) is deleted again on
        #: :meth:`shutdown` — drills must not leak per-node state.
        self.compact_every = compact_every
        self._owns_data_root = False
        if data_root is None and durable:
            data_root = tempfile.mkdtemp(prefix="repro-cluster-")
            self._owns_data_root = True
        self.data_root = data_root
        self.processes: dict[str, subprocess.Popen] = {}
        self.endpoints: dict[str, tuple[str, int]] = {}
        #: Peers currently SIGSTOP'd (for teardown: a stopped process
        #: never handles SIGTERM, so shutdown SIGCONTs them first).
        self.paused: set[str] = set()

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "LocalCluster":
        """Spawn all peers; the first is the bootstrap."""
        for index in range(self.n_peers):
            self.spawn(f"peer-{index}")
        return self

    def spawn(self, address: str) -> tuple[str, int]:
        """Start one peer process and wait for its ready line.

        A child that dies before its ready line — the classic cause being
        an ``EADDRINUSE`` race on the ephemeral port it was handed — is
        retried with a fresh OS-picked port up to ``spawn_attempts``
        times, so one unlucky bind does not fail the whole cluster start.
        """
        if address in self.processes:
            raise ClusterError(f"peer {address!r} already running")
        command = [
            sys.executable, "-m", "repro", "serve",
            "--address", address,
            "--host", self.host,
            "--port", "0",
            "--config-json", json.dumps(wire.config_to_wire(self.config)),
            "--swim-interval", str(self.swim_interval_ms),
            "--repair-interval", str(self.repair_interval_ms),
        ]
        if self.suspect_timeout_ms is not None:
            command += ["--suspect-timeout", str(self.suspect_timeout_ms)]
        if self.flight_dir is not None:
            command += ["--flight-dir", self.flight_dir]
        if self.data_root is not None:
            command += ["--data-dir", os.path.join(self.data_root, address)]
            if self.compact_every is not None:
                command += ["--compact-every", str(self.compact_every)]
        if self.endpoints:
            try:
                boot_host, boot_port = self.bootstrap_endpoint()
            except ClusterError:
                # Every known peer is dead — a cold full-cluster restart.
                # The first peer back rebuilds the ring from its disk
                # state and becomes the new bootstrap for the rest.
                pass
            else:
                command += ["--bootstrap", f"{boot_host}:{boot_port}"]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            path
            for path in (_src_path(), env.get("PYTHONPATH", ""))
            if path
        )
        failure: ClusterError | None = None
        for attempt in range(self.spawn_attempts):
            process = subprocess.Popen(
                command,
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                env=env,
                text=True,
            )
            try:
                endpoint = self._await_ready(address, process)
            except ClusterError as exc:
                process.kill()
                process.wait()
                if process.stdout is not None:
                    process.stdout.close()
                failure = exc
                # Only an early exit is worth retrying (a bind race); a
                # peer that is running but silent stays broken.
                if "exited with" not in str(exc):
                    raise
                logger.warning(
                    "peer %s spawn attempt %d failed (%s); retrying",
                    address, attempt + 1, exc,
                )
                continue
            self.processes[address] = process
            self.endpoints[address] = endpoint
            logger.info("peer %s up at %s:%d", address, *endpoint)
            return endpoint
        assert failure is not None
        raise failure

    def _await_ready(
        self, address: str, process: subprocess.Popen
    ) -> tuple[str, int]:
        assert process.stdout is not None
        deadline = time.monotonic() + self.startup_timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ClusterError(f"peer {address!r} not ready in time")
            if process.poll() is not None:
                raise ClusterError(
                    f"peer {address!r} exited with {process.returncode} "
                    "before becoming ready"
                )
            readable, _, _ = select.select([process.stdout], [], [], remaining)
            if not readable:
                continue
            line = process.stdout.readline()
            if not line:
                raise ClusterError(f"peer {address!r} closed stdout early")
            if not line.startswith(READY_PREFIX):
                continue
            fields = dict(
                token.split("=", 1)
                for token in line.strip().split()
                if "=" in token
            )
            return (fields["host"], int(fields["port"]))

    def bootstrap_endpoint(self) -> tuple[str, int]:
        """The endpoint of the longest-lived peer still running."""
        for address, endpoint in self.endpoints.items():
            process = self.processes.get(address)
            if process is not None and process.poll() is None:
                return endpoint
        raise ClusterError("no live peer to bootstrap from")

    def client(self, **kwargs) -> ClusterClient:
        """A :class:`~repro.rpc.client.ClusterClient` on this cluster."""
        return ClusterClient(self.bootstrap_endpoint(), **kwargs)

    # -- faults ------------------------------------------------------------

    def kill(self, address: str) -> None:
        """Abrupt fail-stop: SIGKILL, no hand-off, no goodbye."""
        process = self.processes[address]
        process.send_signal(signal.SIGKILL)
        process.wait(timeout=10)
        self.paused.discard(address)
        logger.info("peer %s killed", address)

    def restart(self, address: str) -> tuple[str, int]:
        """Bring a killed peer back under its old address.

        The process record is recycled and :meth:`spawn` runs again with
        the same ``--data-dir`` (when the cluster is durable), so the
        peer recovers its store from disk, resumes its persisted SWIM
        incarnation, and rejoins the ring — under a fresh OS-picked port,
        which the rejoin gossips to every mirror.
        """
        process = self.processes.get(address)
        if process is not None and process.poll() is None:
            raise ClusterError(f"peer {address!r} is still running")
        if process is not None:
            if process.stdout is not None:
                process.stdout.close()
            del self.processes[address]
        self.endpoints.pop(address, None)
        endpoint = self.spawn(address)
        logger.info("peer %s restarted at %s:%d", address, *endpoint)
        return endpoint

    def pause(self, address: str) -> None:
        """Freeze a peer with SIGSTOP — alive but unresponsive, the
        classic GC-pause/overload look that SWIM must *suspect* without
        evicting too eagerly."""
        process = self.processes[address]
        process.send_signal(signal.SIGSTOP)
        self.paused.add(address)
        logger.info("peer %s paused (SIGSTOP)", address)

    def resume(self, address: str) -> None:
        """Thaw a SIGSTOP'd peer; it refutes any suspicion and rejoins."""
        process = self.processes[address]
        process.send_signal(signal.SIGCONT)
        self.paused.discard(address)
        logger.info("peer %s resumed (SIGCONT)", address)

    def chaos_set(self, address: str, **settings) -> dict:
        """Install fault-injection settings on one peer (``chaos-set``).

        Recognised keys: ``delay_ms`` (added service delay), ``drop``
        (probability a request is dropped without a reply), ``blocked``
        (peer addresses whose requests are silently discarded) and
        ``seed`` (reseeds the peer's drop RNG for determinism).
        """
        import asyncio

        host, port = self.endpoints[address]
        return asyncio.run(
            wire.call(host, port, "chaos-set", settings, timeout_ms=10_000.0)
        )

    def partition(self, group_a: list[str], group_b: list[str]) -> None:
        """Install a two-sided network partition between peer groups.

        Each side blocks the other's addresses, so requests die in both
        directions — exactly the symmetric split SWIM must resolve by
        each side evicting the other (and healing on :meth:`heal`).
        """
        for address in group_a:
            if self.alive(address):
                self.chaos_set(address, blocked=list(group_b))
        for address in group_b:
            if self.alive(address):
                self.chaos_set(address, blocked=list(group_a))
        logger.info(
            "partition installed: %s | %s",
            ",".join(group_a), ",".join(group_b),
        )

    def heal(self) -> None:
        """Lift every chaos setting on every live peer."""
        for address in list(self.endpoints):
            if self.alive(address) and address not in self.paused:
                try:
                    self.chaos_set(
                        address, delay_ms=0.0, drop=0.0, blocked=[]
                    )
                except ReproError:
                    logger.warning("heal: peer %s unreachable", address)
        logger.info("chaos settings cleared")

    def leave(self, address: str) -> int:
        """Graceful departure via the ``leave`` RPC; waits for exit."""
        import asyncio

        host, port = self.endpoints[address]
        moved = asyncio.run(
            wire.call(host, port, "leave", timeout_ms=30_000.0)
        )
        self.processes[address].wait(timeout=10)
        logger.info("peer %s left, handed off %d copie(s)", address, moved)
        return int(moved)

    def alive(self, address: str) -> bool:
        process = self.processes.get(address)
        return process is not None and process.poll() is None

    # -- teardown ----------------------------------------------------------

    def shutdown(self) -> None:
        """Stop every remaining peer; escalate to SIGKILL if needed.

        A data root this harness created itself is removed afterwards —
        even when stopping a peer fails — so chaos and restart drills
        never leak per-node state into the temp directory.
        """
        try:
            # A SIGSTOP'd process queues SIGTERM until continued — thaw
            # everything first so termination can actually be delivered.
            for address in list(self.paused):
                process = self.processes.get(address)
                if process is not None and process.poll() is None:
                    process.send_signal(signal.SIGCONT)
            self.paused.clear()
            for address, process in self.processes.items():
                if process.poll() is None:
                    process.terminate()
            deadline = time.monotonic() + 10.0
            for process in self.processes.values():
                remaining = max(0.1, deadline - time.monotonic())
                try:
                    process.wait(timeout=remaining)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait()
            for process in self.processes.values():
                if process.stdout is not None:
                    process.stdout.close()
        finally:
            if self._owns_data_root and self.data_root is not None:
                shutil.rmtree(self.data_root, ignore_errors=True)

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
