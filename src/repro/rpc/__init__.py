"""One query engine, many transports.

The paper's query procedure — hash to ``l`` identifiers, route each to its
owner, ask the replica chain, store on miss — used to live twice: once
synchronously in :mod:`repro.core.system` and once on the discrete-event
kernel in :mod:`repro.sim.query`.  This package extracts it into a single
transport-agnostic :class:`~repro.rpc.engine.QueryEngine` and expresses the
ways of *running* it as :class:`~repro.rpc.transports.Transport`
implementations:

- :class:`~repro.rpc.transports.SyncTransport` — the in-process
  message-counting transport (``repro.net.SimulatedNetwork``); requests
  settle immediately, so the engine degenerates to the sequential
  synchronous path;
- :class:`~repro.rpc.transports.SimTransport` — the discrete-event
  transport (``repro.sim.AsyncNetwork`` on a ``Simulator``); the ``l``
  chains progress concurrently in virtual time;
- :class:`~repro.rpc.client.SocketTransport` — real asyncio TCP sockets
  speaking the length-prefixed JSON frames of :mod:`repro.rpc.wire` to
  :class:`~repro.rpc.server.PeerServer` processes.

The server, client, and cluster-management layers (``repro.rpc.server``,
``repro.rpc.client``, ``repro.rpc.cluster``) are imported directly by the
CLI; importing this package pulls in only the engine and the two in-process
transports.
"""

from repro.rpc.engine import (
    ChainOutcome,
    LocatePhase,
    MatchReply,
    QueryEngine,
    StoreOutcome,
    TimedQueryResult,
)
from repro.rpc.transports import SimTransport, SyncTransport, Transport

__all__ = [
    "QueryEngine",
    "Transport",
    "SyncTransport",
    "SimTransport",
    "MatchReply",
    "ChainOutcome",
    "LocatePhase",
    "StoreOutcome",
    "TimedQueryResult",
]
