"""SWIM-style membership: alive/suspect/dead states with incarnations.

The socket cluster of :mod:`repro.rpc.server` mirrors a full member map on
every peer.  Before this module the map only ever *grew* through joins and
shrank through graceful leaves — an abruptly killed peer stayed in every
mirror forever, and only a client tripping over its refused connections
ever noticed.  :class:`MembershipTable` gives the map the three-state
lifecycle of the SWIM failure detector (Das et al., DSN 2002):

- **alive** — the peer answers pings (directly or through a proxy);
- **suspect** — a ping *and* the indirect ping-req probes all failed;
  the peer stays in the ring (lookups still try it and fail over), but
  the suspicion gossips so the accused can refute it;
- **dead** — the suspicion aged out un-refuted; the peer is evicted from
  the ring and kept as a *tombstone* so a lagging gossip cannot
  resurrect it by accident.

Every record carries an **incarnation number** that only the member it
describes may increment.  Records merge by the classic SWIM precedence:

- a higher incarnation always wins;
- at equal incarnations, ``dead`` overrides ``suspect`` overrides
  ``alive``.

So a suspected peer refutes by re-announcing itself alive at a *higher*
incarnation — and nothing else can.  A tombstoned peer that was merely
paused (``SIGSTOP``) rejoins the same way after ``SIGCONT``: it learns of
its own death from any ping exchange and re-announces at ``dead
incarnation + 1``.

The table is transport-free and uses a caller-supplied clock, so the
state machine is deterministic and unit-testable without sockets.  The
epoch counter of the original design survives as a *freshness hint* for
broadcasts (merging keeps ``max(local, remote)`` and bumps on local
change); correctness no longer depends on it, the per-member merge rules
converge regardless of delivery order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "ALIVE",
    "SUSPECT",
    "DEAD",
    "Member",
    "MergeOutcome",
    "MembershipTable",
]

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"

#: State precedence at equal incarnations: dead > suspect > alive.
_RANK = {ALIVE: 0, SUSPECT: 1, DEAD: 2}


@dataclass
class Member:
    """One membership record as gossiped between peers."""

    host: str
    port: int
    state: str = ALIVE
    incarnation: int = 0
    #: Local wall-clock (ms) when *this* table first saw the member
    #: suspect — never gossiped, each peer ages suspicions on its own
    #: clock so the detector converges even if the original suspector
    #: dies before confirming.
    suspected_at: float | None = None

    def record(self) -> list:
        """The gossip form: ``[host, port, state, incarnation]``."""
        return [self.host, self.port, self.state, self.incarnation]


@dataclass
class MergeOutcome:
    """What one :meth:`MembershipTable.merge` changed."""

    #: Any record changed (worth re-gossiping / re-deriving state from).
    changed: bool = False
    #: Addresses newly alive that were previously unknown or dead — the
    #: ring gained nodes (a join or a resurrection).
    joined: list[str] = field(default_factory=list)
    #: Addresses newly dead that were previously in the ring.
    evicted: list[str] = field(default_factory=list)
    #: The remote view called *us* suspect or dead; the caller must
    #: refute (we already bumped our incarnation past the accusation).
    refuted: bool = False

    @property
    def ring_changed(self) -> bool:
        return bool(self.joined or self.evicted)


class MembershipTable:
    """The SWIM member map one peer mirrors: records, epoch, merge rules."""

    def __init__(self, self_address: str, host: str, port: int) -> None:
        self.self_address = self_address
        self.epoch = 0
        self._members: dict[str, Member] = {
            self_address: Member(host, port)
        }

    # -- views -----------------------------------------------------------

    @property
    def members(self) -> dict[str, Member]:
        """Every record, tombstones included (do not mutate)."""
        return self._members

    @property
    def incarnation(self) -> int:
        """This peer's own incarnation number."""
        return self._members[self.self_address].incarnation

    def get(self, address: str) -> Member | None:
        return self._members.get(address)

    def state_of(self, address: str) -> str | None:
        member = self._members.get(address)
        return member.state if member is not None else None

    def endpoints(self) -> dict[str, tuple[str, int]]:
        """``address -> (host, port)`` for every non-dead member — the
        view the ring is built from (suspects stay routable)."""
        return {
            address: (member.host, member.port)
            for address, member in self._members.items()
            if member.state != DEAD
        }

    def addresses(self, *states: str) -> list[str]:
        """Member addresses in the given states (all states if none)."""
        wanted = set(states) if states else set(_RANK)
        return [
            address
            for address, member in self._members.items()
            if member.state in wanted
        ]

    def peers(self, *states: str) -> list[str]:
        """Like :meth:`addresses` but never includes this peer itself."""
        return [
            address
            for address in self.addresses(*states)
            if address != self.self_address
        ]

    # -- local transitions ----------------------------------------------

    def set_endpoint(self, host: str, port: int) -> None:
        """Record this peer's bound endpoint (port 0 until bound)."""
        me = self._members[self.self_address]
        me.host = host
        me.port = port

    def add(self, address: str, host: str, port: int) -> bool:
        """Admit a joiner as alive (used by the ``join`` RPC).

        A re-join of a tombstoned address comes back at an incarnation
        past its death, so stale dead records cannot shadow it.
        """
        existing = self._members.get(address)
        incarnation = 0
        if existing is not None:
            if existing.state != DEAD:
                # Already a live member: refresh the endpoint only.
                existing.host, existing.port = host, port
                return False
            incarnation = existing.incarnation + 1
        self._members[address] = Member(
            host, port, state=ALIVE, incarnation=incarnation
        )
        self.epoch += 1
        return True

    def remove(self, address: str) -> None:
        """Forget a member entirely (graceful leave; no tombstone)."""
        if address in self._members and address != self.self_address:
            del self._members[address]
            self.epoch += 1

    def suspect(self, address: str, now_ms: float) -> bool:
        """Mark a member suspect at its current incarnation."""
        member = self._members.get(address)
        if member is None or address == self.self_address:
            return False
        if member.state != ALIVE:
            return False
        member.state = SUSPECT
        member.suspected_at = now_ms
        self.epoch += 1
        return True

    def confirm_alive(self, address: str) -> bool:
        """A direct or proxied ping answered: clear a local suspicion.

        Only honoured for suspicions this table raised itself — gossiped
        refutations must come from the accused at a higher incarnation.
        """
        member = self._members.get(address)
        if member is None or member.state != SUSPECT:
            return False
        member.state = ALIVE
        member.suspected_at = None
        self.epoch += 1
        return True

    def confirm_dead(self, address: str) -> bool:
        """Evict a member (tombstoned at its current incarnation)."""
        member = self._members.get(address)
        if member is None or address == self.self_address:
            return False
        if member.state == DEAD:
            return False
        member.state = DEAD
        member.suspected_at = None
        self.epoch += 1
        return True

    def expired_suspects(self, now_ms: float, timeout_ms: float) -> list[str]:
        """Suspects whose suspicion has aged past ``timeout_ms``."""
        return [
            address
            for address, member in self._members.items()
            if member.state == SUSPECT
            and member.suspected_at is not None
            and now_ms - member.suspected_at >= timeout_ms
        ]

    def depart(self) -> None:
        """Declare *this* peer dead (graceful leave).

        A leave is a self-announced death: the record gossips as dead at
        our current incarnation, every mirror tombstones us, and — since
        we are gone on purpose — nobody ever refutes it.
        """
        me = self._members[self.self_address]
        me.state = DEAD
        me.suspected_at = None
        self.epoch += 1

    def set_incarnation(self, incarnation: int) -> None:
        """Resume this peer's incarnation from persisted state.

        A durable peer restarting from its ``--data-dir`` comes back at
        ``persisted + 1`` — past any tombstone the cluster holds for its
        previous life, since only the member itself ever bumps its
        incarnation and death freezes it.  Called before the rejoin.
        """
        me = self._members[self.self_address]
        if incarnation > me.incarnation:
            me.incarnation = incarnation
            self.epoch += 1

    def reassert_self(self, incarnation: int) -> bool:
        """Force our own record alive at (at least) ``incarnation``.

        :meth:`replace` adopts a bootstrap peer's map wholesale, and that
        map may carry this address as a tombstone from a previous life —
        or at a stale, lower incarnation.  Restore the record the rejoin
        announced; returns True when anything changed.
        """
        me = self._members[self.self_address]
        if me.state == ALIVE and me.incarnation >= incarnation:
            return False
        if me.state != ALIVE:
            # Beat the adopted tombstone/suspicion outright.
            incarnation = max(incarnation, me.incarnation + 1)
        me.incarnation = max(me.incarnation, incarnation)
        me.state = ALIVE
        me.suspected_at = None
        self.epoch += 1
        return True

    def refute(self) -> int:
        """Re-announce this peer alive past any accusation it has seen.

        Returns the new incarnation (gossip it; only we may bump it).
        """
        me = self._members[self.self_address]
        me.incarnation += 1
        me.state = ALIVE
        me.suspected_at = None
        self.epoch += 1
        return me.incarnation

    # -- gossip ----------------------------------------------------------

    def payload(self) -> dict:
        """The peer-to-peer gossip form of the whole table."""
        return {
            "epoch": self.epoch,
            "members": {
                address: member.record()
                for address, member in self._members.items()
            },
        }

    def replace(self, payload: dict) -> None:
        """Adopt a full remote table (a joiner bootstrapping its mirror).

        Keeps our own record if the remote view lacks it (it cannot: the
        join reply includes the joiner), otherwise trusts the remote map
        wholesale.
        """
        me = self._members[self.self_address]
        self._members = {}
        for address, record in payload["members"].items():
            host, port, state, incarnation = record
            self._members[address] = Member(
                str(host), int(port), state=str(state),
                incarnation=int(incarnation),
            )
        if self.self_address not in self._members:
            self._members[self.self_address] = me
        self.epoch = max(self.epoch, int(payload["epoch"]))

    def merge(self, payload: dict, now_ms: float) -> MergeOutcome:
        """Fold a remote table (or piggybacked gossip) into this one."""
        outcome = MergeOutcome()
        for address, record in payload.get("members", {}).items():
            host, port, state, incarnation = record
            state = str(state)
            incarnation = int(incarnation)
            if state not in _RANK:
                continue  # unknown state from a future version; skip
            if address == self.self_address:
                if state != ALIVE and incarnation >= self.incarnation:
                    # Someone thinks we are suspect/dead: refute with an
                    # incarnation past the accusation.
                    me = self._members[self.self_address]
                    me.incarnation = incarnation
                    self.refute()
                    outcome.refuted = True
                    outcome.changed = True
                continue
            local = self._members.get(address)
            if local is None:
                self._members[address] = Member(
                    str(host), int(port), state=state,
                    incarnation=incarnation,
                    suspected_at=now_ms if state == SUSPECT else None,
                )
                outcome.changed = True
                if state != DEAD:
                    outcome.joined.append(address)
                continue
            if (incarnation, _RANK[state]) <= (
                local.incarnation, _RANK[local.state]
            ):
                continue  # stale or identical news
            was_dead = local.state == DEAD
            local.host, local.port = str(host), int(port)
            local.incarnation = incarnation
            if state == SUSPECT and local.state != SUSPECT:
                # Age gossiped suspicions on our own clock, so we too
                # will confirm death if the refutation never comes.
                local.suspected_at = now_ms
            elif state != SUSPECT:
                local.suspected_at = None
            if state == DEAD and not was_dead:
                outcome.evicted.append(address)
            elif state != DEAD and was_dead:
                outcome.joined.append(address)
            local.state = state
            outcome.changed = True
        if outcome.changed:
            self.epoch += 1
        self.epoch = max(self.epoch, int(payload.get("epoch", 0)))
        return outcome
