"""A deterministic chaos harness for the live cluster.

The self-healing machinery of :mod:`repro.rpc.server` is only credible
if it survives faults it did not choose.  This module injects them in a
*reproducible* way: a :class:`ChaosSchedule` is a seeded, pre-computed
list of :class:`ChaosEvent` — kill, pause/resume, delay, drop, two-sided
partition/heal — and a :class:`ChaosRunner` applies it to a
:class:`~repro.rpc.cluster.LocalCluster` at the scheduled offsets.  The
same ``(seed, peers, spec)`` triple always yields the same schedule, so a
failing chaos run replays exactly.

Faults come in two flavours mirroring the harness primitives:

- **process faults** (``kill``, ``pause``/``resume``) are delivered as
  signals by the cluster manager;
- **network faults** (``delay``, ``drop``, ``partition``/``heal``) are
  installed *inside* the target servers via the ``chaos-set`` RPC — no
  ``tc``, no root, works anywhere the cluster runs.

The CLI spec grammar (``repro cluster --chaos``) is a comma list of
``action=count`` terms, e.g. ``kill=1,pause=1,partition=1``; counts say
how many fault events of that kind to schedule, targets and timing come
from the seed.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.obs.log import get_logger
from repro.rpc.cluster import LocalCluster

__all__ = ["ChaosEvent", "ChaosSchedule", "ChaosRunner", "ACTIONS"]

logger = get_logger("rpc.chaos")

#: Fault kinds a schedule may contain, in the order waves play out.
ACTIONS = (
    "kill", "pause", "resume", "delay", "drop", "partition", "heal", "restart",
)


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault: when, what, to whom."""

    at_s: float
    action: str
    #: Target peer addresses.  kill/pause/resume/delay/drop target one
    #: peer (``targets[0]``); partition splits ``targets`` off from the
    #: rest of the cluster; heal ignores targets.
    targets: tuple[str, ...] = ()
    #: Action parameter: added ms for ``delay``, probability for ``drop``.
    amount: float = 0.0

    def describe(self) -> str:
        body = f"t+{self.at_s:.1f}s {self.action}"
        if self.targets:
            body += " " + ",".join(self.targets)
        if self.action in ("delay", "drop"):
            body += f" ({self.amount:g})"
        return body


@dataclass
class ChaosSchedule:
    """A seeded, ordered fault plan over a named set of peers."""

    seed: int
    events: list[ChaosEvent] = field(default_factory=list)

    @staticmethod
    def parse_spec(spec: str) -> dict[str, int]:
        """Parse a ``--chaos`` spec (``kill=1,pause=1``) into counts."""
        counts: dict[str, int] = {}
        for term in spec.split(","):
            term = term.strip()
            if not term:
                continue
            action, _, count = term.partition("=")
            action = action.strip()
            if action not in (
                "kill", "pause", "delay", "drop", "partition", "restart"
            ):
                raise ReproError(
                    f"unknown chaos action {action!r} "
                    "(use kill/pause/delay/drop/partition/restart)"
                )
            try:
                counts[action] = counts.get(action, 0) + (
                    int(count) if count.strip() else 1
                )
            except ValueError as exc:
                raise ReproError(
                    f"chaos count for {action!r} must be an integer"
                ) from exc
        if not counts:
            raise ReproError("empty chaos spec")
        return counts

    @classmethod
    def generate(
        cls,
        seed: int,
        peers: list[str],
        counts: dict[str, int],
        *,
        start_s: float = 0.0,
        wave_gap_s: float = 4.0,
        pause_hold_s: float = 3.0,
        partition_hold_s: float = 6.0,
        restart_hold_s: float = 3.0,
        protect: tuple[str, ...] = (),
    ) -> "ChaosSchedule":
        """Lay the requested faults out as seeded, ordered waves.

        Each action kind becomes one wave, waves are ``wave_gap_s``
        apart; paired actions (pause→resume, partition→heal) schedule
        their own recovery.  ``protect`` names peers (typically the
        bootstrap) that process faults must not target.  Every choice —
        victims, split sides, amounts — comes from ``random.Random(seed)``
        so the schedule is a pure function of its arguments.
        """
        rng = random.Random(seed)
        victims = [address for address in peers if address not in protect]
        if not victims:
            raise ReproError("chaos needs at least one unprotected peer")
        events: list[ChaosEvent] = []
        at = start_s
        killed: set[str] = set()
        for action in ("delay", "drop", "pause", "kill", "restart", "partition"):
            for _ in range(counts.get(action, 0)):
                pool = [a for a in victims if a not in killed]
                if not pool:
                    break
                if action == "kill":
                    target = rng.choice(pool)
                    killed.add(target)
                    events.append(ChaosEvent(at, "kill", (target,)))
                elif action == "pause":
                    target = rng.choice(pool)
                    events.append(ChaosEvent(at, "pause", (target,)))
                    events.append(
                        ChaosEvent(at + pause_hold_s, "resume", (target,))
                    )
                elif action == "delay":
                    target = rng.choice(pool)
                    amount = float(rng.randrange(50, 250))
                    events.append(
                        ChaosEvent(at, "delay", (target,), amount=amount)
                    )
                elif action == "drop":
                    target = rng.choice(pool)
                    amount = 0.1 + 0.2 * rng.random()
                    events.append(
                        ChaosEvent(at, "drop", (target,), amount=amount)
                    )
                elif action == "restart":
                    # A crash-restart pair: SIGKILL now, bring the same
                    # address back from its data dir after a hold.  The
                    # target is *not* marked killed — it returns.
                    target = rng.choice(pool)
                    events.append(ChaosEvent(at, "kill", (target,)))
                    events.append(
                        ChaosEvent(at + restart_hold_s, "restart", (target,))
                    )
                elif action == "partition":
                    # Split off a minority side (1..n//2 peers).
                    side_size = max(1, min(len(pool) // 2, 2))
                    side = tuple(sorted(rng.sample(pool, side_size)))
                    events.append(ChaosEvent(at, "partition", side))
                    events.append(ChaosEvent(at + partition_hold_s, "heal"))
                at += wave_gap_s
        events.sort(key=lambda event: (event.at_s, event.action))
        return cls(seed=seed, events=events)

    def describe(self) -> str:
        return "; ".join(event.describe() for event in self.events)


class ChaosRunner:
    """Applies a :class:`ChaosSchedule` to a live :class:`LocalCluster`."""

    def __init__(self, cluster: LocalCluster, schedule: ChaosSchedule) -> None:
        self.cluster = cluster
        self.schedule = schedule
        self.applied: list[ChaosEvent] = []

    def run(self, on_event=None) -> list[ChaosEvent]:
        """Play the whole schedule in real time, sleeping between events.

        ``on_event(event)``, when given, fires after each fault lands —
        the experiment uses it to interleave measurements with faults.
        """
        started = time.monotonic()
        for event in self.schedule.events:
            delay = event.at_s - (time.monotonic() - started)
            if delay > 0:
                time.sleep(delay)
            self.apply(event)
            if on_event is not None:
                on_event(event)
        return self.applied

    def apply(self, event: ChaosEvent) -> None:
        """Deliver one fault to the cluster (skips already-dead targets)."""
        cluster = self.cluster
        try:
            if event.action == "kill":
                if cluster.alive(event.targets[0]):
                    cluster.kill(event.targets[0])
            elif event.action == "pause":
                if cluster.alive(event.targets[0]):
                    cluster.pause(event.targets[0])
            elif event.action == "resume":
                if cluster.alive(event.targets[0]):
                    cluster.resume(event.targets[0])
            elif event.action == "delay":
                if cluster.alive(event.targets[0]):
                    cluster.chaos_set(
                        event.targets[0],
                        delay_ms=event.amount,
                        seed=self.schedule.seed,
                    )
            elif event.action == "drop":
                if cluster.alive(event.targets[0]):
                    cluster.chaos_set(
                        event.targets[0],
                        drop=event.amount,
                        seed=self.schedule.seed,
                    )
            elif event.action == "partition":
                side = [a for a in event.targets if cluster.alive(a)]
                rest = [
                    a
                    for a in cluster.endpoints
                    if a not in event.targets and cluster.alive(a)
                ]
                if side and rest:
                    cluster.partition(side, rest)
            elif event.action == "restart":
                if not cluster.alive(event.targets[0]):
                    cluster.restart(event.targets[0])
            elif event.action == "heal":
                cluster.heal()
            else:  # pragma: no cover - schedule generation guards this
                raise ReproError(f"unknown chaos action {event.action!r}")
        except ReproError as exc:
            # A fault that cannot land (target just died on its own, say)
            # must not abort the run — chaos is best-effort by nature.
            logger.warning("chaos event %s failed: %s", event.describe(), exc)
            return
        logger.info("chaos: %s", event.describe())
        self.applied.append(event)
