"""A peer as a process: asyncio TCP server owning one node's partitions.

``repro serve`` runs one :class:`PeerServer`.  The server speaks the
length-prefixed JSON protocol of :mod:`repro.rpc.wire` and serves three
planes on the same port:

- the **data plane** — ``match-request`` / ``store-request`` /
  ``fetch-partition`` — dispatched through the same
  :class:`~repro.rpc.peer.PeerLogic` the in-process transports use;
- the **control plane** — ``hello``, ``join``, ``member-update``,
  ``leave``, ``entries``, ``ping``, ``metrics``, ``shutdown`` — the node
  lifecycle;
- the **health plane** — ``swim-ping``, ``ping-req``, ``suspect``,
  ``has-entries``, ``repair-push``, ``chaos-set`` — the ring keeping
  itself alive.

Membership is a full member map mirrored on every peer, now carried by
the SWIM state machine of :mod:`repro.rpc.swim`: each record is
``address -> (host, port, state, incarnation)`` and merges by incarnation
precedence, with the original epoch counter kept as a freshness hint.
Node ids are SHA-1 of addresses, so every mirror and every client places
identifiers identically.

**Self-healing.**  With ``swim_interval_ms > 0`` every peer runs the SWIM
failure detector: each tick it pings one member directly and, on silence,
indirectly through ``swim_proxies`` randomly chosen proxies
(``ping-req``).  A peer that answers neither route is marked *suspect*
and the suspicion is broadcast; the accused — if merely slow or paused —
refutes it by re-announcing itself at a higher incarnation.  A suspicion
that ages past ``suspect_timeout_ms`` un-refuted is confirmed *dead*: the
peer is evicted from the mirrored ring by the ring itself — no client
involved — and an anti-entropy repair round is triggered.  With
``repair_interval_ms > 0`` every peer also periodically computes its own
replication deficits from the mirrored ring (which entries it holds whose
current replica set is missing copies), asks each target which keys it
already has (``has-entries``), and pushes only the missing ones
(``repair-push``) — so a SIGKILL'd replica's partitions are back at ``r``
copies within a couple of rounds, again with no client involved.

**Chaos.**  ``chaos-set`` injects faults for the deterministic chaos
harness: an added per-request service delay, a seeded drop probability,
and a *blocked* sender list — requests from blocked peers are dropped
without a reply and calls to them refused locally, which is how the
harness builds two-sided network partitions without touching ``tc``.
Clients never set a sender address and are never blocked: chaos partitions
the overlay, not the observer.
"""

from __future__ import annotations

import asyncio
import os
import random
import time
from typing import Any

from repro.chord.hashing import node_id_for_address, rehash_for_placement
from repro.chord.ring import ChordRing
from repro.core.config import SystemConfig
from repro.core.matcher import matcher_by_name
from repro.core.overlays import ChordRouter
from repro.errors import PeerUnavailableError, ReproError
from repro.obs.distributed import FlightRecorder, SpanFragment, TraceContext
from repro.obs.log import get_logger
from repro.obs.registry import MetricsRegistry
from repro.rpc import wire
from repro.rpc.peer import DATA_KINDS, PeerLogic
from repro.rpc.swim import ALIVE, DEAD, SUSPECT, MembershipTable, MergeOutcome
from repro.storage.store import LRUEviction, NoEviction, PeerStore
from repro.storage.wal import PeerDurability

__all__ = ["PeerServer", "READY_PREFIX"]

logger = get_logger("rpc.server")

#: First token of the line a server prints once it accepts connections;
#: cluster managers (and the CI smoke job) wait for it.
READY_PREFIX = "REPRO-SERVE ready"

#: Budget for one control-plane RPC between servers (member-update
#: broadcasts, hand-off store pushes).  Generous for loopback; bounded so
#: a hung peer cannot wedge a join or leave forever.
CONTROL_TIMEOUT_MS = 5_000.0

#: Version tag of the ``telemetry`` RPC reply.  Scrapers check it before
#: interpreting the body; bumping it is the contract for shape changes.
TELEMETRY_VERSION = 1

#: Page size of the chunked ``entries`` bulk-transfer RPC.  Chosen so a
#: page of row-bearing partitions stays far under the 32 MiB wire frame
#: cap; clients iterate pages, so the store size itself is unbounded.
ENTRIES_PAGE_SIZE = 512

#: Every this-many SWIM ticks, probe a tombstoned member instead of a
#: live one.  A dead peer that was merely paused (SIGSTOP) answers the
#: probe after SIGCONT, learns of its own death from the piggybacked
#: table, refutes, and rejoins — the same path heals a two-sided
#: partition after both sides evicted each other.
RESURRECTION_PROBE_PERIOD = 4


class PeerServer:
    """One node of the live cluster: store, ring mirror, TCP endpoint."""

    def __init__(
        self,
        address: str,
        config: SystemConfig,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        bootstrap: tuple[str, int] | None = None,
        swim_interval_ms: float = 0.0,
        suspect_timeout_ms: float | None = None,
        swim_proxies: int = 2,
        ping_timeout_ms: float | None = None,
        repair_interval_ms: float = 0.0,
        flight_dir: str | None = None,
        flight_capacity: int = FlightRecorder.DEFAULT_CAPACITY,
        data_dir: str | None = None,
        wal_fsync: bool = True,
        compact_every: int = 512,
    ) -> None:
        if config.overlay != "chord":
            raise ReproError("the socket transport requires the chord overlay")
        if swim_interval_ms < 0:
            raise ReproError("swim_interval_ms cannot be negative")
        if repair_interval_ms < 0:
            raise ReproError("repair_interval_ms cannot be negative")
        if swim_proxies < 0:
            raise ReproError("swim_proxies cannot be negative")
        self.address = address
        self.config = config
        self.host = host
        self.port = port  # 0 until bound; then the real port
        self.bootstrap = bootstrap
        self.node_id = node_id_for_address(address, config.id_bits)
        if config.max_partitions_per_peer:
            eviction: LRUEviction | NoEviction = LRUEviction(
                config.max_partitions_per_peer
            )
        else:
            eviction = NoEviction()
        self.store = PeerStore(self.node_id, eviction)
        self.logic = PeerLogic(
            self.node_id,
            self.store,
            matcher_by_name(config.matcher),
            local_index=config.local_index,
        )
        #: SWIM membership mirror (records, states, incarnations, epoch).
        self.table = MembershipTable(address, host, port)
        self.router: ChordRouter | None = None
        self.metrics = MetricsRegistry()
        # Failure-detector knobs.  swim_interval_ms == 0 disables the
        # detector (PR 6 behaviour: membership only changes on join/leave);
        # repair_interval_ms == 0 leaves repair to clients.
        self.swim_interval_ms = swim_interval_ms
        self.suspect_timeout_ms = (
            suspect_timeout_ms
            if suspect_timeout_ms is not None
            else 3.0 * swim_interval_ms
        )
        self.swim_proxies = swim_proxies
        self.ping_timeout_ms = (
            ping_timeout_ms
            if ping_timeout_ms is not None
            else max(200.0, min(swim_interval_ms, 1_000.0))
        )
        self.repair_interval_ms = repair_interval_ms
        #: Peers whose last member-update delivery failed; the SWIM loop
        #: prioritises pinging them (the ping piggybacks the full table,
        #: which *is* the re-delivery) and every later broadcast retries.
        self._retry_updates: set[str] = set()
        # Chaos-injection state, driven by the ``chaos-set`` RPC.
        self.chaos_delay_ms = 0.0
        self.chaos_drop = 0.0
        self.chaos_blocked: set[str] = set()
        self._chaos_rng = random.Random(0)
        self._swim_rng = random.Random(node_id_for_address(address, 32))
        self._ping_queue: list[str] = []
        self._swim_tick_count = 0
        #: Wall-clock ms of the first un-healed eviction this peer knows
        #: of; cleared (into ``repair.heal_ms``) by the first repair round
        #: that finds nothing missing.
        self._evicted_at: float | None = None
        #: Always-on black box of recent server-side spans and events;
        #: dumped to ``flight_dir`` on SWIM evictions when configured.
        self.flight = FlightRecorder(address, capacity=flight_capacity)
        self.flight_dir = flight_dir
        #: Durable store under ``--data-dir`` (WAL + snapshot + meta);
        #: None keeps the pre-durability, purely in-memory behavior.
        self.durability = (
            PeerDurability(data_dir, fsync=wal_fsync, compact_every=compact_every)
            if data_dir
            else None
        )
        #: Concurrently-executing requests right now (all kinds).
        self._inflight = 0
        #: Replica copies the last repair round found missing; the
        #: telemetry RPC and SWIM health piggyback both report it.
        self._pending_repair = 0
        self._server: asyncio.AbstractServer | None = None
        self._stopped = asyncio.Event()
        self._repair_now = asyncio.Event()
        self._tasks: set[asyncio.Task] = set()

    # -- clocks and views ------------------------------------------------

    @staticmethod
    def _now_ms() -> float:
        return time.monotonic() * 1000.0

    def _health_payload(self) -> dict:
        """The cheap health sample piggybacked on SWIM ping replies."""
        return {
            "queue_depth": self._inflight,
            "pending_repair": self._pending_repair,
            "entries": sum(1 for _ in self.store.entries()),
        }

    @property
    def members(self) -> dict[str, tuple[str, int]]:
        """``address -> (host, port)`` of every non-dead member."""
        return self.table.endpoints()

    @property
    def epoch(self) -> int:
        return self.table.epoch

    # -- ring mirror -----------------------------------------------------

    def _rebuild_ring(self) -> None:
        ring = ChordRing(
            m=self.config.id_bits,
            successor_list_size=max(4, self.config.replicas),
        )
        for address in self.table.endpoints():
            ring.add_node(address)
        ring.build()
        self.router = ChordRouter(ring)

    def _place(self, identifier: int) -> int:
        if self.config.placement == "rehash":
            return rehash_for_placement(identifier, self.config.id_bits)
        return identifier

    def replica_owners(self, identifier: int) -> list[int]:
        """The identifier's current replica set on the mirrored ring."""
        assert self.router is not None
        return self.router.replica_set(
            self._place(identifier), self.config.replicas
        )

    def _address_of(self, node_id: int) -> str:
        assert self.router is not None
        return self.router.ring.node(node_id).address

    def _endpoint_of(self, node_id: int) -> tuple[str, int]:
        return self.table.endpoints()[self._address_of(node_id)]

    # -- outgoing calls (all server-to-server traffic funnels here) ------

    async def _call_member(
        self,
        address: str,
        kind: str,
        payload: Any = None,
        *,
        timeout_ms: float = CONTROL_TIMEOUT_MS,
        peer_id: int = -1,
    ) -> Any:
        """One RPC to a member by address, honouring the chaos partition
        (calls to blocked peers are refused locally, without a socket)."""
        if address in self.chaos_blocked:
            raise PeerUnavailableError(peer_id)
        member = self.table.get(address)
        if member is None:
            raise PeerUnavailableError(peer_id)
        return await wire.call(
            member.host,
            member.port,
            kind,
            payload,
            sender=self.node_id,
            sender_address=self.address,
            peer_id=peer_id,
            timeout_ms=timeout_ms,
        )

    def _spawn(self, coroutine) -> None:
        """Run a coroutine in the background, tracked for teardown."""
        task = asyncio.get_running_loop().create_task(coroutine)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind the port, join via the bootstrap peer (if any), go live.

        With a ``data_dir``, the store is rebuilt from snapshot + WAL
        *before* the port binds (no request can observe a half-recovered
        store), the SWIM incarnation resumes past the persisted one (so
        the rejoin beats any tombstone from the previous life), and a
        reconciliation round runs once the ring mirror is adopted.
        """
        restored = None
        if self.durability is not None:
            restored = self.durability.recover(self.store)
            persisted = self.durability.load_incarnation()
            if persisted is not None:
                self.table.set_incarnation(persisted + 1)
            self._persist_incarnation()
            self.durability.attach(self.store)
            self.metrics.counter(
                "restore.entries",
                help="entries rebuilt from disk at startup",
            ).inc(restored["entries"])
            self.metrics.counter(
                "restore.wal_records",
                help="WAL records replayed at startup",
            ).inc(restored["wal_records"])
            self.metrics.counter(
                "restore.torn_records",
                help="torn WAL tail records skipped at startup",
            ).inc(restored["torn_records"])
            if restored["entries"] or restored["wal_records"]:
                logger.info(
                    "peer %s: restored %d entrie(s) from disk "
                    "(%d snapshot, %d WAL record(s), %d torn)",
                    self.address, restored["entries"],
                    restored["snapshot_entries"], restored["wal_records"],
                    restored["torn_records"],
                )
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.table.set_endpoint(self.host, self.port)
        if self.bootstrap is None:
            self.table.epoch = 1
        else:
            boot_host, boot_port = self.bootstrap
            my_incarnation = self.table.incarnation
            reply = await wire.call(
                boot_host,
                boot_port,
                "join",
                {
                    "address": self.address,
                    "host": self.host,
                    "port": self.port,
                },
                sender_address=self.address,
                timeout_ms=CONTROL_TIMEOUT_MS,
            )
            self.table.replace(reply)
            # The adopted map may carry this address as a tombstone (or
            # at a stale incarnation) from a previous life; restore the
            # identity the restart resumed before anything gossips.
            self.table.reassert_self(my_incarnation)
            self._persist_incarnation()
        self._rebuild_ring()
        if self.durability is not None and self.table.peers(ALIVE, SUSPECT):
            self._spawn(self._reconcile_after_restart())
        if self.swim_interval_ms > 0:
            self._spawn(self._swim_loop())
        if self.repair_interval_ms > 0:
            self._spawn(self._repair_loop())
        print(
            f"{READY_PREFIX} address={self.address} node_id={self.node_id} "
            f"host={self.host} port={self.port}",
            flush=True,
        )
        logger.info(
            "peer %s (id %d) serving on %s:%d, %d member(s), swim=%s repair=%s",
            self.address, self.node_id, self.host, self.port,
            len(self.table.endpoints()),
            f"{self.swim_interval_ms:g}ms" if self.swim_interval_ms else "off",
            f"{self.repair_interval_ms:g}ms" if self.repair_interval_ms else "off",
        )

    async def serve_forever(self) -> None:
        """Run until a ``shutdown`` or ``leave`` request stops the server."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()
        await self.close()

    async def close(self) -> None:
        """Stop accepting connections (in-process embedders call this)."""
        self._stopped.set()
        for task in list(self._tasks):
            task.cancel()
        self._tasks.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.durability is not None:
            self.durability.close()

    # -- durability ------------------------------------------------------

    def _persist_incarnation(self) -> None:
        """Write the current SWIM incarnation to the data dir (if any).

        Called on the initial restore bump and on every refutation —
        every path that increments our own incarnation — so a future
        restart always resumes past the last value the cluster saw.
        """
        if self.durability is not None:
            self.durability.store_incarnation(self.table.incarnation)

    async def _reconcile_after_restart(self) -> None:
        """One recovery reconciliation against the adopted ring.

        The restored store reflects the ring as it was before the crash:
        entries may have moved off this peer (shed them) and writes may
        have landed elsewhere while it was down (pull them).  Shedding
        and promotion reuse :meth:`rebalance`; the pull pages every live
        member's chunked ``entries`` feed and keeps what the current
        replica sets say belongs here.
        """
        try:
            shed_before = self.store.partition_count
            await self.rebalance()
            shed = max(0, shed_before - self.store.partition_count)
            pulled = await self._pull_owned_entries()
            self.metrics.counter(
                "reconcile.shed",
                help="restored entries shed because ownership moved away",
            ).inc(shed)
            self.metrics.counter(
                "reconcile.pulled",
                help="entries pulled from the ring after a restart",
            ).inc(pulled)
            self.metrics.counter(
                "reconcile.rounds", help="restart reconciliation rounds run"
            ).inc()
            if shed or pulled:
                logger.info(
                    "peer %s: reconciled after restart (shed %d, pulled %d)",
                    self.address, shed, pulled,
                )
            self._repair_now.set()
        except asyncio.CancelledError:
            raise
        except Exception:  # noqa: BLE001 - reconciliation is best-effort
            logger.exception("restart reconciliation failed on %s", self.address)

    async def _pull_owned_entries(self) -> int:
        """Fetch entries whose current replica set includes this peer."""
        pulled = 0
        for address in self.table.peers(ALIVE, SUSPECT):
            offset = 0
            while True:
                try:
                    page = await self._call_member(
                        address, "entries",
                        {"offset": offset, "limit": ENTRIES_PAGE_SIZE},
                        timeout_ms=CONTROL_TIMEOUT_MS,
                    )
                except ReproError:
                    break  # unreachable peer; repair owns convergence
                if not isinstance(page, dict):
                    break
                records = page.get("entries", [])
                for identifier, descriptor, partition, _primary in records:
                    identifier = int(identifier)
                    targets = self.replica_owners(identifier)
                    if self.node_id not in targets:
                        continue
                    if self.logic.holds(identifier, descriptor):
                        continue
                    self.store.store(
                        identifier, descriptor, partition,
                        primary=targets[0] == self.node_id,
                        via="reconcile",
                    )
                    pulled += 1
                offset += len(records)
                if not records or offset >= int(page.get("total", 0)):
                    break
        return pulled

    # -- membership gossip -----------------------------------------------

    def _membership_payload(self) -> dict:
        return self.table.payload()

    async def _broadcast_membership(self, exclude: set[str]) -> None:
        """Push the current member map to every live peer, concurrently.

        A failed delivery no longer drops the update forever: the peer is
        queued for re-delivery (the SWIM loop pings it next, piggybacking
        the full table) and counted as ``member.update_failed``.
        """
        payload = self._membership_payload()
        targets = [
            address
            for address in self.table.peers(ALIVE, SUSPECT)
            if address not in exclude
        ]

        async def push(address: str) -> None:
            try:
                await self._call_member(
                    address, "member-update", payload,
                    timeout_ms=CONTROL_TIMEOUT_MS,
                )
            except ReproError:
                self._retry_updates.add(address)
                self.metrics.counter(
                    "member.update_failed",
                    help="member-update deliveries that failed and were "
                    "queued for re-delivery",
                ).inc()
                logger.warning(
                    "member-update to %s failed; queued for re-delivery",
                    address,
                )
            else:
                self._retry_updates.discard(address)

        if targets:
            await asyncio.gather(*(push(address) for address in targets))

    def _after_merge(self, outcome: MergeOutcome) -> None:
        """React to membership news learned from any gossip exchange."""
        if outcome.ring_changed:
            self._rebuild_ring()
        if outcome.evicted:
            for address in outcome.evicted:
                logger.info(
                    "peer %s: learned %s is dead (gossip)",
                    self.address, address,
                )
            self.metrics.counter(
                "swim.evicted",
                help="members learned dead via gossip",
            ).inc(len(outcome.evicted))
            if self._evicted_at is None:
                self._evicted_at = self._now_ms()
            self._flight_dump(f"gossip-evicted:{','.join(outcome.evicted)}")
            self._repair_now.set()
        if outcome.joined:
            # A member we did not know (or thought dead) is alive — make
            # sure its share of the data reaches it.
            self._repair_now.set()
        if outcome.refuted:
            self.metrics.counter(
                "swim.refuted",
                help="times this peer refuted an accusation against it",
            ).inc()
            logger.info(
                "peer %s: refuted suspicion, incarnation now %d",
                self.address, self.table.incarnation,
            )
            self._persist_incarnation()
            self._spawn(self._broadcast_membership(exclude=set()))

    # -- the flight recorder ---------------------------------------------

    def _flight_dump(self, reason: str) -> None:
        """Mark an incident in the black box and dump it when configured.

        Called on every eviction this peer learns of; with ``flight_dir``
        set the whole ring buffer is appended to
        ``flight-<address>.jsonl`` so the moments *before* the failure
        survive the failure.  Dump errors are counted, never raised — the
        recorder must not take down the ring it is documenting.
        """
        self.flight.record_event("incident", reason=reason)
        if not self.flight_dir:
            return
        safe = self.address.replace("/", "_").replace(":", "_")
        path = os.path.join(self.flight_dir, f"flight-{safe}.jsonl")
        try:
            self.flight.dump(path, reason=reason)
            self.metrics.counter(
                "flight.dumps", help="flight-recorder dumps written"
            ).inc()
        except OSError:
            self.metrics.counter(
                "flight.dump_failures",
                help="flight-recorder dumps that could not be written",
            ).inc()
            logger.warning("flight dump to %s failed", path)

    # -- the SWIM failure detector ---------------------------------------

    async def _swim_loop(self) -> None:
        while not self._stopped.is_set():
            await asyncio.sleep(self.swim_interval_ms / 1000.0)
            if self._stopped.is_set():
                return
            try:
                await self._swim_tick()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - detector must survive
                logger.exception("swim tick failed on %s", self.address)

    def _next_ping_target(self) -> str | None:
        """Round-robin over a shuffled member list, SWIM-style.

        Peers with a pending member-update re-delivery go first; every
        :data:`RESURRECTION_PROBE_PERIOD`-th tick probes a tombstone
        instead, so paused peers and healed partitions can rejoin.
        """
        self._swim_tick_count += 1
        for address in list(self._retry_updates):
            if self.table.state_of(address) in (ALIVE, SUSPECT):
                return address
        if self._swim_tick_count % RESURRECTION_PROBE_PERIOD == 0:
            dead = self.table.peers(DEAD)
            if dead:
                return dead[self._swim_rng.randrange(len(dead))]
        candidates = set(self.table.peers(ALIVE, SUSPECT))
        self._ping_queue = [a for a in self._ping_queue if a in candidates]
        if not self._ping_queue:
            self._ping_queue = sorted(candidates)
            self._swim_rng.shuffle(self._ping_queue)
        return self._ping_queue.pop() if self._ping_queue else None

    async def _direct_ping(self, address: str) -> dict | None:
        """Ping a member, piggybacking our table; returns its table."""
        try:
            reply = await self._call_member(
                address, "swim-ping", self._membership_payload(),
                timeout_ms=self.ping_timeout_ms,
            )
        except ReproError:
            self.metrics.counter(
                "swim.ping_failures", help="direct pings that went unanswered"
            ).inc()
            return None
        self.metrics.counter(
            "swim.pings", help="direct pings answered"
        ).inc()
        self._retry_updates.discard(address)
        if isinstance(reply, dict):
            self._absorb_health(address, reply.get("health"))
            return reply
        return None

    def _absorb_health(self, address: str, health: Any) -> None:
        """Record a peer's piggybacked health sample as local gauges."""
        if not isinstance(health, dict):
            return
        self.metrics.counter(
            "swim.health_piggybacked",
            help="health samples received on SWIM ping replies",
        ).inc()
        for field in ("queue_depth", "pending_repair", "entries"):
            value = health.get(field)
            if isinstance(value, (int, float)):
                self.metrics.gauge(
                    f"swim.peer_{field}",
                    help=f"last piggybacked {field} per pinged peer",
                ).set(float(value), peer=address)

    async def _indirect_ping(self, address: str) -> dict | None:
        """Ask ``swim_proxies`` other members to ping ``address`` for us."""
        member = self.table.get(address)
        if member is None or self.swim_proxies == 0:
            return None
        candidates = [
            proxy for proxy in self.table.peers(ALIVE) if proxy != address
        ]
        if not candidates:
            return None
        self._swim_rng.shuffle(candidates)
        proxies = candidates[: self.swim_proxies]
        request = {
            "address": address,
            "host": member.host,
            "port": member.port,
            "timeout_ms": self.ping_timeout_ms,
        }

        async def ask(proxy: str) -> Any:
            try:
                return await self._call_member(
                    proxy, "ping-req", request,
                    timeout_ms=2.0 * self.ping_timeout_ms,
                )
            except ReproError:
                return None

        self.metrics.counter(
            "swim.ping_reqs", help="indirect ping-req probes issued"
        ).inc(len(proxies))
        replies = await asyncio.gather(*(ask(proxy) for proxy in proxies))
        for reply in replies:
            if isinstance(reply, dict):
                return reply
        return None

    async def _swim_tick(self) -> None:
        now = self._now_ms()
        # 1. Age out suspicions that were never refuted.
        evicted = []
        for address in self.table.expired_suspects(now, self.suspect_timeout_ms):
            member = self.table.get(address)
            suspected_at = member.suspected_at or now
            if self.table.confirm_dead(address):
                evicted.append(address)
                self.metrics.counter(
                    "swim.dead", help="members this peer confirmed dead"
                ).inc()
                self.metrics.histogram(
                    "swim.detect_ms",
                    help="suspicion-to-eviction latency",
                ).observe(now - suspected_at)
                logger.info(
                    "peer %s: %s is dead (suspect for %.0f ms), evicting",
                    self.address, address, now - suspected_at,
                )
        if evicted:
            self._rebuild_ring()
            if self._evicted_at is None:
                self._evicted_at = now
            self._flight_dump(f"confirmed-dead:{','.join(evicted)}")
            self._repair_now.set()
            await self._broadcast_membership(exclude=set(evicted))
        # 2. Probe one member: direct ping, then through proxies.
        target = self._next_ping_target()
        if target is None:
            return
        reply = await self._direct_ping(target)
        if reply is None and self.table.state_of(target) != DEAD:
            reply = await self._indirect_ping(target)
        if reply is not None:
            self._after_merge(self.table.merge(reply, self._now_ms()))
            return
        # 3. Unreachable both ways: suspect and tell the ring (including
        # the accused, so an alive-but-slow peer can refute).
        if self.table.state_of(target) == DEAD:
            return  # a failed resurrection probe changes nothing
        if self.table.suspect(target, self._now_ms()):
            self.metrics.counter(
                "swim.suspected", help="members this peer marked suspect"
            ).inc()
            self.flight.record_event("swim-suspect", target=target)
            logger.info("peer %s: suspecting %s", self.address, target)
            await self._broadcast_suspect(target)

    async def _broadcast_suspect(self, target: str) -> None:
        """Best-effort fan-out of one suspicion record."""
        member = self.table.get(target)
        if member is None:
            return
        accusation = {
            "address": target,
            "host": member.host,
            "port": member.port,
            "incarnation": member.incarnation,
        }

        async def push(address: str) -> None:
            try:
                await self._call_member(
                    address, "suspect", accusation,
                    timeout_ms=self.ping_timeout_ms,
                )
            except ReproError:
                pass  # gossip is redundant; the next ping re-delivers

        recipients = self.table.peers(ALIVE, SUSPECT)
        if recipients:
            await asyncio.gather(*(push(address) for address in recipients))

    # -- server-driven anti-entropy repair -------------------------------

    async def _repair_loop(self) -> None:
        while not self._stopped.is_set():
            try:
                await asyncio.wait_for(
                    self._repair_now.wait(),
                    timeout=self.repair_interval_ms / 1000.0,
                )
            except asyncio.TimeoutError:
                pass
            self._repair_now.clear()
            if self._stopped.is_set():
                return
            try:
                created = await self.repair_round()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - repair must survive
                logger.exception("repair round failed on %s", self.address)
                continue
            if created:
                # Converge fast: re-run immediately until nothing is
                # missing (the digest makes repeat rounds cheap).
                self._repair_now.set()

    async def repair_round(self) -> int:
        """One anti-entropy pass from this peer's entries outward.

        For every held entry, computes the replica set over the current
        (non-dead) ring, digests each remote target for the keys it
        should hold (``has-entries``), and pushes only the missing copies
        (``repair-push``).  Entries whose ownership moved onto this peer
        are promoted in place.  Returns the copies created.
        """
        started = self._now_ms()
        wanted: dict[str, list[tuple[int, Any, bool]]] = {}
        for identifier, entry in list(self.store.entries()):
            targets = self.replica_owners(identifier)
            if targets and targets[0] == self.node_id and not entry.primary:
                self.store.store(
                    identifier, entry.descriptor, entry.partition, primary=True
                )
            for rank, target in enumerate(targets):
                if target == self.node_id:
                    continue
                address = self._address_of(target)
                wanted.setdefault(address, []).append(
                    (identifier, entry, rank == 0)
                )
        created = 0
        missing = 0
        for address, items in wanted.items():
            digest = [
                (identifier, entry.descriptor)
                for identifier, entry, _ in items
            ]
            try:
                held = await self._call_member(
                    address, "has-entries", digest,
                    timeout_ms=CONTROL_TIMEOUT_MS,
                )
            except ReproError:
                self.metrics.counter(
                    "repair.push.peer_failures",
                    help="repair digests whose target never answered",
                ).inc()
                continue
            for (identifier, entry, primary), has in zip(items, held):
                if has:
                    self.metrics.counter(
                        "repair.push.skipped",
                        help="copies the digest showed already in place",
                    ).inc()
                    continue
                missing += 1
                try:
                    stored = await self._call_member(
                        address,
                        "repair-push",
                        (identifier, entry.descriptor, entry.partition,
                         primary),
                        timeout_ms=CONTROL_TIMEOUT_MS,
                    )
                except ReproError:
                    self.metrics.counter(
                        "repair.push.failures",
                        help="repair pushes whose target never answered",
                    ).inc()
                    continue
                if stored:
                    created += 1
                    self.metrics.counter(
                        "repair.push.copies",
                        help="missing copies re-replicated by this peer",
                    ).inc()
        self.metrics.counter(
            "repair.push.rounds", help="anti-entropy rounds run"
        ).inc()
        self.metrics.histogram(
            "repair.push.round_ms", help="wall time of one repair round"
        ).observe(self._now_ms() - started)
        #: Replica debt after this round: copies found missing minus
        #: copies successfully pushed — what telemetry and the SWIM
        #: health piggyback report as ``pending_repair``.
        self._pending_repair = max(0, missing - created)
        self.metrics.gauge(
            "repair.pending", help="missing copies left after the last round"
        ).set(self._pending_repair)
        if created or missing:
            self.flight.record_event(
                "repair-round", created=created, missing=missing
            )
        if missing == 0 and self._evicted_at is not None:
            self.metrics.histogram(
                "repair.heal_ms",
                help="eviction-to-fully-replicated latency",
            ).observe(self._now_ms() - self._evicted_at)
            self._evicted_at = None
        if created or missing:
            logger.info(
                "peer %s: repair round pushed %d/%d missing copies",
                self.address, created, missing,
            )
        return created

    # -- data hand-off ---------------------------------------------------

    async def rebalance(self) -> int:
        """Re-place local entries against the current ring.

        Pushes each held entry to every peer of its replica set (the
        newcomer after a join, the new successor after a leave) and drops
        the local copy when this peer is no longer in the set.  Returns
        the number of copies pushed.  Unreachable targets are skipped —
        anti-entropy repair owns eventual convergence.
        """
        pushed = 0
        for identifier, entry in list(self.store.entries()):
            targets = self.replica_owners(identifier)
            for rank, target in enumerate(targets):
                if target == self.node_id:
                    continue
                try:
                    stored = await self._call_member(
                        self._address_of(target),
                        "store-request",
                        (identifier, entry.descriptor, entry.partition,
                         rank == 0),
                        peer_id=target,
                        timeout_ms=CONTROL_TIMEOUT_MS,
                    )
                except ReproError:
                    logger.warning(
                        "rebalance push of id %d to peer %d failed",
                        identifier, target,
                    )
                    continue
                if stored:
                    pushed += 1
            if self.node_id not in targets:
                self.store.remove(identifier, entry.descriptor, via="handoff")
            elif targets[0] == self.node_id and not entry.primary:
                # Ownership moved onto this replica: promote in place.
                self.store.store(
                    identifier, entry.descriptor, entry.partition, primary=True
                )
        return pushed

    async def _hand_off_and_leave(self) -> int:
        """Graceful departure: push every entry to its post-leave replica
        set, announce the departure, then stop serving."""
        self.table.depart()
        self._rebuild_ring()
        moved = await self.rebalance()
        await self._broadcast_membership(exclude=set())
        logger.info(
            "peer %s leaving: moved %d copie(s) to %d member(s)",
            self.address, moved, len(self.table.endpoints()),
        )
        self._stopped.set()
        return moved

    # -- request dispatch --------------------------------------------------

    async def _handle(self, kind: str, payload: Any) -> Any:
        if kind in DATA_KINDS:
            return self.logic.handle(kind, payload)
        if kind == "hello":
            endpoints = self.table.endpoints()
            return {
                "address": self.address,
                "node_id": self.node_id,
                "config": wire.config_to_wire(self.config),
                "epoch": self.table.epoch,
                "members": {
                    address: [host, port]
                    for address, (host, port) in endpoints.items()
                },
                "states": {
                    address: [member.state, member.incarnation]
                    for address, member in self.table.members.items()
                },
            }
        if kind == "join":
            address = str(payload["address"])
            self.table.add(
                address, str(payload["host"]), int(payload["port"])
            )
            self._rebuild_ring()
            reply = self._membership_payload()
            await self._broadcast_membership(exclude={address})
            await self.rebalance()
            return reply
        if kind == "member-update":
            outcome = self.table.merge(payload, self._now_ms())
            if outcome.joined:
                # A genuinely new member must receive its share of the
                # data; re-place our entries against the new ring.
                self._rebuild_ring()
                await self.rebalance()
            self._after_merge(outcome)
            return outcome.changed
        if kind == "swim-ping":
            if isinstance(payload, dict):
                self._after_merge(self.table.merge(payload, self._now_ms()))
            # The failure detector doubles as a health sampler: the reply
            # piggybacks queue depth and repair debt.  ``merge()`` only
            # reads "epoch"/"members", so peers that predate the field
            # (and the chaos connection filter) ignore it — bit-compatible
            # by construction.
            return {**self._membership_payload(), "health": self._health_payload()}
        if kind == "ping-req":
            return await self._serve_ping_req(payload)
        if kind == "suspect":
            return self._serve_suspect(payload)
        if kind == "has-entries":
            return [
                self.logic.holds(int(identifier), descriptor)
                for identifier, descriptor in payload
            ]
        if kind == "repair-push":
            identifier, descriptor, partition, primary = payload
            self.metrics.counter(
                "repair.push.received", help="repair pushes served"
            ).inc()
            return self.store.store(
                identifier, descriptor, partition, primary=primary,
                via="repair-push",
            )
        if kind == "chaos-set":
            return self._serve_chaos_set(payload)
        if kind == "entries":
            records = [
                (identifier, entry.descriptor, entry.partition, entry.primary)
                for identifier, entry in self.store.entries()
            ]
            if isinstance(payload, dict):
                # Chunked form: {"offset", "limit"} -> {"total", "entries"}.
                # Pages bound the reply frame; the legacy None payload
                # keeps the full list for small stores and old callers.
                offset = max(0, int(payload.get("offset", 0)))
                limit = max(1, int(payload.get("limit", ENTRIES_PAGE_SIZE)))
                return {
                    "total": len(records),
                    "entries": records[offset : offset + limit],
                }
            return records
        if kind == "metrics":
            return self.metrics.snapshot()
        if kind == "telemetry":
            return self._serve_telemetry(payload)
        if kind == "leave":
            return await self._hand_off_and_leave()
        if kind == "ping":
            return True
        if kind == "shutdown":
            self._stopped.set()
            return True
        # Unknown kinds surface the same ConfigError the in-process
        # handler raises, reported over the wire as an error reply.
        return self.logic.handle(kind, payload)

    async def _serve_ping_req(self, payload: Any) -> Any:
        """Probe a third peer on a requester's behalf (SWIM ping-req)."""
        target = str(payload["address"])
        host, port = str(payload["host"]), int(payload["port"])
        timeout_ms = float(payload.get("timeout_ms", self.ping_timeout_ms))
        if target in self.chaos_blocked:
            return False
        self.metrics.counter(
            "swim.ping_reqs_served", help="ping-req probes served as proxy"
        ).inc()
        try:
            reply = await wire.call(
                host, port, "swim-ping", self._membership_payload(),
                sender=self.node_id, sender_address=self.address,
                timeout_ms=timeout_ms,
            )
        except ReproError:
            return False
        if isinstance(reply, dict):
            self._after_merge(self.table.merge(reply, self._now_ms()))
            return reply
        return False

    def _serve_suspect(self, payload: Any) -> Any:
        """Apply one gossiped suspicion record (possibly about us)."""
        address = str(payload["address"])
        incarnation = int(payload["incarnation"])
        if address == self.address:
            if incarnation >= self.table.incarnation:
                # Someone suspects us and we are obviously alive: refute.
                me = self.table.get(self.address)
                me.incarnation = incarnation
                self.table.refute()
                self.metrics.counter(
                    "swim.refuted",
                    help="times this peer refuted an accusation against it",
                ).inc()
                logger.info(
                    "peer %s: refuting suspicion, incarnation now %d",
                    self.address, self.table.incarnation,
                )
                self._persist_incarnation()
                self._spawn(self._broadcast_membership(exclude=set()))
            return self._membership_payload()
        outcome = self.table.merge(
            {
                "epoch": 0,
                "members": {
                    address: [
                        str(payload.get("host", "")),
                        int(payload.get("port", 0)),
                        SUSPECT,
                        incarnation,
                    ]
                },
            },
            self._now_ms(),
        )
        self._after_merge(outcome)
        return outcome.changed

    def _serve_telemetry(self, payload: Any) -> dict:
        """One node's full observability surface, in one reply.

        With ``{"spans_for": <trace id>}`` in the payload, returns only
        the retained span fragments of that distributed trace (what
        :meth:`ClusterClient.query_traced` collects for stitching).
        Otherwise returns the versioned snapshot the
        :class:`~repro.rpc.client.ClusterScraper` merges: registry
        metrics, queue depth, SWIM state, a partition/replica census, and
        the newest span fragments.  Both capture timestamps travel —
        monotonic for in-process deltas, wall for cross-node skew checks.
        """
        body = payload if isinstance(payload, dict) else {}
        if body.get("spans_for"):
            return {
                "version": TELEMETRY_VERSION,
                "node": self.address,
                "spans": self.flight.spans_for(str(body["spans_for"])),
            }
        entries = 0
        primaries = 0
        for _identifier, entry in self.store.entries():
            entries += 1
            if entry.primary:
                primaries += 1
        return {
            "version": TELEMETRY_VERSION,
            "node": self.address,
            "node_id": self.node_id,
            "captured_mono_ms": self._now_ms(),
            "captured_wall_ms": time.time() * 1000.0,
            "queue_depth": self._inflight,
            "pending_repair": self._pending_repair,
            "swim": {
                "epoch": self.table.epoch,
                "incarnation": self.table.incarnation,
                "states": {
                    address: [member.state, member.incarnation]
                    for address, member in self.table.members.items()
                },
            },
            "census": {
                "entries": entries,
                "primaries": primaries,
                "replicas": entries - primaries,
            },
            "metrics": self.metrics.snapshot(),
            "spans": self.flight.recent(int(body.get("spans", 32))),
            "flight": {
                "recorded": self.flight.recorded,
                "retained": len(self.flight),
                "dumps": self.flight.dumps,
            },
        }

    def _serve_chaos_set(self, payload: Any) -> dict:
        """Install fault-injection settings (the chaos harness hook)."""
        body = payload if isinstance(payload, dict) else {}
        if "delay_ms" in body:
            self.chaos_delay_ms = max(0.0, float(body["delay_ms"]))
        if "drop" in body:
            drop = float(body["drop"])
            if not 0.0 <= drop < 1.0:
                raise ReproError("chaos drop probability must be in [0, 1)")
            self.chaos_drop = drop
        if "blocked" in body:
            self.chaos_blocked = {str(a) for a in body["blocked"]}
        if "seed" in body:
            self._chaos_rng = random.Random(int(body["seed"]))
        return {
            "delay_ms": self.chaos_delay_ms,
            "drop": self.chaos_drop,
            "blocked": sorted(self.chaos_blocked),
        }

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await wire.read_frame(reader)
                if request is None:
                    return
                sender_address = request.get("from")
                if sender_address and sender_address in self.chaos_blocked:
                    return  # partitioned: drop silently, like a dead link
                if self.chaos_delay_ms > 0:
                    await asyncio.sleep(self.chaos_delay_ms / 1000.0)
                if (
                    self.chaos_drop > 0.0
                    and self._chaos_rng.random() < self.chaos_drop
                ):
                    return  # injected loss: hang up without a reply
                kind = str(request.get("kind"))
                # A garbled or missing trace envelope degrades the request
                # to untraced (``from_wire`` returns None) — propagation
                # can add observability but never fail a request.
                ctx = TraceContext.from_wire(request.get("trace"))
                self._inflight += 1
                self.metrics.counter(
                    "server.requests", help="requests served, by kind"
                ).inc(kind=kind)
                self.metrics.gauge(
                    "server.inflight", help="requests executing right now"
                ).set(self._inflight)
                started = self._now_ms()
                fragment: SpanFragment | None = None
                if (ctx is not None and ctx.sampled) or kind in DATA_KINDS:
                    fragment = SpanFragment(
                        f"serve:{kind}",
                        self.address,
                        trace_id=ctx.trace_id if ctx is not None else None,
                        parent_span_id=(
                            ctx.parent_span_id if ctx is not None else None
                        ),
                        attrs={"kind": kind, "inflight": self._inflight},
                    )
                try:
                    value = await self._handle(
                        kind,
                        wire.decode_value(request.get("payload")),
                    )
                    reply = {
                        "id": request.get("id", 0),
                        "ok": True,
                        "value": wire.encode_value(value),
                    }
                    if fragment is not None:
                        fragment.end(outcome="ok")
                except Exception as exc:  # noqa: BLE001 - reported to caller
                    reply = {
                        "id": request.get("id", 0),
                        "ok": False,
                        "error": str(exc),
                        "error_type": type(exc).__name__,
                    }
                    if fragment is not None:
                        fragment.end(
                            outcome="error", error=type(exc).__name__
                        )
                finally:
                    self._inflight -= 1
                    self.metrics.gauge("server.inflight").set(self._inflight)
                    self.metrics.histogram(
                        "server.service_ms",
                        help="request service time, by kind",
                    ).observe(self._now_ms() - started, kind=kind)
                    if fragment is not None:
                        self.flight.record_span(fragment)
                await wire.write_frame(writer, reply)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            return  # client hung up mid-exchange; nothing to answer
        except wire.WireError:
            return  # torn or corrupt frame; drop the connection
        finally:
            writer.close()


async def run_server(
    address: str,
    config: SystemConfig,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    bootstrap: tuple[str, int] | None = None,
    swim_interval_ms: float = 0.0,
    suspect_timeout_ms: float | None = None,
    swim_proxies: int = 2,
    repair_interval_ms: float = 0.0,
    flight_dir: str | None = None,
    data_dir: str | None = None,
    wal_fsync: bool = True,
    compact_every: int = 512,
) -> None:
    """Start one peer and serve until asked to stop (``repro serve``)."""
    server = PeerServer(
        address,
        config,
        host=host,
        port=port,
        bootstrap=bootstrap,
        swim_interval_ms=swim_interval_ms,
        suspect_timeout_ms=suspect_timeout_ms,
        swim_proxies=swim_proxies,
        repair_interval_ms=repair_interval_ms,
        flight_dir=flight_dir,
        data_dir=data_dir,
        wal_fsync=wal_fsync,
        compact_every=compact_every,
    )
    await server.serve_forever()
