"""A peer as a process: asyncio TCP server owning one node's partitions.

``repro serve`` runs one :class:`PeerServer`.  The server speaks the
length-prefixed JSON protocol of :mod:`repro.rpc.wire` and serves two
planes on the same port:

- the **data plane** — ``match-request`` / ``store-request`` /
  ``fetch-partition`` — dispatched through the same
  :class:`~repro.rpc.peer.PeerLogic` the in-process transports use;
- the **control plane** — ``hello``, ``join``, ``member-update``,
  ``leave``, ``entries``, ``ping``, ``shutdown`` — the node lifecycle.

Membership is a full member map ``address -> (host, port)`` carried on an
epoch counter.  Every server mirrors the whole map and derives the Chord
ring locally (node ids are SHA-1 of the address, so every mirror and
every client places identifiers identically).  Joins go through the
bootstrap peer, which admits the newcomer and broadcasts the new epoch;
each member then re-places its entries against the new ring
(:meth:`PeerServer.rebalance`), which is what hands data to the newcomer.
A graceful ``leave`` pushes the departing peer's entries to their current
replica sets first, so nothing is lost; an abrupt kill loses nothing
either as long as ``replicas > 1`` — lookups fail over down the successor
list and anti-entropy repair re-establishes the replication factor.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.chord.hashing import node_id_for_address, rehash_for_placement
from repro.chord.ring import ChordRing
from repro.core.config import SystemConfig
from repro.core.matcher import matcher_by_name
from repro.core.overlays import ChordRouter
from repro.errors import ReproError
from repro.obs.log import get_logger
from repro.rpc import wire
from repro.rpc.peer import DATA_KINDS, PeerLogic
from repro.storage.store import LRUEviction, NoEviction, PeerStore

__all__ = ["PeerServer", "READY_PREFIX"]

logger = get_logger("rpc.server")

#: First token of the line a server prints once it accepts connections;
#: cluster managers (and the CI smoke job) wait for it.
READY_PREFIX = "REPRO-SERVE ready"

#: Budget for one control-plane RPC between servers (member-update
#: broadcasts, hand-off store pushes).  Generous for loopback; bounded so
#: a hung peer cannot wedge a join or leave forever.
CONTROL_TIMEOUT_MS = 5_000.0


class PeerServer:
    """One node of the live cluster: store, ring mirror, TCP endpoint."""

    def __init__(
        self,
        address: str,
        config: SystemConfig,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        bootstrap: tuple[str, int] | None = None,
    ) -> None:
        if config.overlay != "chord":
            raise ReproError("the socket transport requires the chord overlay")
        self.address = address
        self.config = config
        self.host = host
        self.port = port  # 0 until bound; then the real port
        self.bootstrap = bootstrap
        self.node_id = node_id_for_address(address, config.id_bits)
        if config.max_partitions_per_peer:
            eviction: LRUEviction | NoEviction = LRUEviction(
                config.max_partitions_per_peer
            )
        else:
            eviction = NoEviction()
        self.store = PeerStore(self.node_id, eviction)
        self.logic = PeerLogic(
            self.node_id,
            self.store,
            matcher_by_name(config.matcher),
            local_index=config.local_index,
        )
        #: Membership mirror: address -> (host, port), on an epoch counter.
        self.members: dict[str, tuple[str, int]] = {}
        self.epoch = 0
        self.router: ChordRouter | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stopped = asyncio.Event()

    # -- ring mirror -----------------------------------------------------

    def _rebuild_ring(self) -> None:
        ring = ChordRing(
            m=self.config.id_bits,
            successor_list_size=max(4, self.config.replicas),
        )
        for address in self.members:
            ring.add_node(address)
        ring.build()
        self.router = ChordRouter(ring)

    def _place(self, identifier: int) -> int:
        if self.config.placement == "rehash":
            return rehash_for_placement(identifier, self.config.id_bits)
        return identifier

    def replica_owners(self, identifier: int) -> list[int]:
        """The identifier's current replica set on the mirrored ring."""
        assert self.router is not None
        return self.router.replica_set(
            self._place(identifier), self.config.replicas
        )

    def _endpoint_of(self, node_id: int) -> tuple[str, int]:
        assert self.router is not None
        address = self.router.ring.node(node_id).address
        return self.members[address]

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind the port, join via the bootstrap peer (if any), go live."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.bootstrap is None:
            self.epoch = 1
            self.members = {self.address: (self.host, self.port)}
        else:
            boot_host, boot_port = self.bootstrap
            reply = await wire.call(
                boot_host,
                boot_port,
                "join",
                {
                    "address": self.address,
                    "host": self.host,
                    "port": self.port,
                },
                timeout_ms=CONTROL_TIMEOUT_MS,
            )
            self._adopt_members(reply["epoch"], reply["members"])
        self._rebuild_ring()
        print(
            f"{READY_PREFIX} address={self.address} node_id={self.node_id} "
            f"host={self.host} port={self.port}",
            flush=True,
        )
        logger.info(
            "peer %s (id %d) serving on %s:%d, %d member(s)",
            self.address, self.node_id, self.host, self.port, len(self.members),
        )

    async def serve_forever(self) -> None:
        """Run until a ``shutdown`` or ``leave`` request stops the server."""
        if self._server is None:
            await self.start()
        await self._stopped.wait()
        await self.close()

    async def close(self) -> None:
        """Stop accepting connections (in-process embedders call this)."""
        self._stopped.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def _adopt_members(self, epoch: int, members: dict) -> None:
        self.epoch = int(epoch)
        self.members = {
            address: (str(endpoint[0]), int(endpoint[1]))
            for address, endpoint in members.items()
        }

    def _membership_payload(self) -> dict:
        return {
            "epoch": self.epoch,
            "members": {
                address: [host, port]
                for address, (host, port) in self.members.items()
            },
        }

    async def _broadcast_membership(self, exclude: set[str]) -> None:
        """Best-effort push of the current member map to every other peer."""
        payload = self._membership_payload()
        for address, (host, port) in list(self.members.items()):
            if address == self.address or address in exclude:
                continue
            try:
                await wire.call(
                    host, port, "member-update", payload,
                    timeout_ms=CONTROL_TIMEOUT_MS,
                )
            except ReproError:
                logger.warning("member-update to %s failed; skipping", address)

    # -- data hand-off ---------------------------------------------------

    async def rebalance(self) -> int:
        """Re-place local entries against the current ring.

        Pushes each held entry to every peer of its replica set (the
        newcomer after a join, the new successor after a leave) and drops
        the local copy when this peer is no longer in the set.  Returns
        the number of copies pushed.  Unreachable targets are skipped —
        anti-entropy repair owns eventual convergence.
        """
        pushed = 0
        for identifier, entry in list(self.store.entries()):
            targets = self.replica_owners(identifier)
            for rank, target in enumerate(targets):
                if target == self.node_id:
                    continue
                host, port = self._endpoint_of(target)
                try:
                    stored = await wire.call(
                        host,
                        port,
                        "store-request",
                        (identifier, entry.descriptor, entry.partition,
                         rank == 0),
                        sender=self.node_id,
                        peer_id=target,
                        timeout_ms=CONTROL_TIMEOUT_MS,
                    )
                except ReproError:
                    logger.warning(
                        "rebalance push of id %d to peer %d failed",
                        identifier, target,
                    )
                    continue
                if stored:
                    pushed += 1
            if self.node_id not in targets:
                self.store.remove(identifier, entry.descriptor)
            elif targets[0] == self.node_id and not entry.primary:
                # Ownership moved onto this replica: promote in place.
                self.store.store(
                    identifier, entry.descriptor, entry.partition, primary=True
                )
        return pushed

    async def _hand_off_and_leave(self) -> int:
        """Graceful departure: push every entry to its post-leave replica
        set, announce the shrunken membership, then stop serving."""
        self.members.pop(self.address, None)
        self.epoch += 1
        self._rebuild_ring()
        moved = await self.rebalance()
        await self._broadcast_membership(exclude=set())
        logger.info(
            "peer %s leaving: moved %d copie(s) to %d member(s)",
            self.address, moved, len(self.members),
        )
        self._stopped.set()
        return moved

    # -- request dispatch --------------------------------------------------

    async def _handle(self, kind: str, payload: Any) -> Any:
        if kind in DATA_KINDS:
            return self.logic.handle(kind, payload)
        if kind == "hello":
            return {
                "address": self.address,
                "node_id": self.node_id,
                "config": wire.config_to_wire(self.config),
                **self._membership_payload(),
            }
        if kind == "join":
            address = str(payload["address"])
            endpoint = (str(payload["host"]), int(payload["port"]))
            self.members[address] = endpoint
            self.epoch += 1
            self._rebuild_ring()
            reply = self._membership_payload()
            await self._broadcast_membership(exclude={address})
            await self.rebalance()
            return reply
        if kind == "member-update":
            if int(payload["epoch"]) <= self.epoch:
                return False  # stale broadcast; keep the newer view
            self._adopt_members(payload["epoch"], payload["members"])
            self._rebuild_ring()
            await self.rebalance()
            return True
        if kind == "entries":
            return [
                (identifier, entry.descriptor, entry.partition, entry.primary)
                for identifier, entry in self.store.entries()
            ]
        if kind == "leave":
            return await self._hand_off_and_leave()
        if kind == "ping":
            return True
        if kind == "shutdown":
            self._stopped.set()
            return True
        # Unknown kinds surface the same ConfigError the in-process
        # handler raises, reported over the wire as an error reply.
        return self.logic.handle(kind, payload)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await wire.read_frame(reader)
                if request is None:
                    return
                try:
                    value = await self._handle(
                        str(request.get("kind")),
                        wire.decode_value(request.get("payload")),
                    )
                    reply = {
                        "id": request.get("id", 0),
                        "ok": True,
                        "value": wire.encode_value(value),
                    }
                except Exception as exc:  # noqa: BLE001 - reported to caller
                    reply = {
                        "id": request.get("id", 0),
                        "ok": False,
                        "error": str(exc),
                        "error_type": type(exc).__name__,
                    }
                await wire.write_frame(writer, reply)
        except (ConnectionResetError, asyncio.IncompleteReadError):
            return  # client hung up mid-exchange; nothing to answer
        finally:
            writer.close()


async def run_server(
    address: str,
    config: SystemConfig,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    bootstrap: tuple[str, int] | None = None,
) -> None:
    """Start one peer and serve until asked to stop (``repro serve``)."""
    server = PeerServer(
        address, config, host=host, port=port, bootstrap=bootstrap
    )
    await server.serve_forever()
